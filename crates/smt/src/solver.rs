//! Word-level solver front-end: assert 1-bit terms, check, extract models.

use std::collections::HashMap;
use std::fmt;

use crate::bitblast::BitBlaster;
use crate::bv::BvVal;
use crate::sat::{SatOutcome, SolveBudget, SolverProfile};
use crate::term::{Term, TermGraph, TermId};

/// The profiles [`Solver::check_assuming_portfolio_traced`] races.
///
/// Profile 0 is the canonical default configuration; it always runs
/// first in every rotation round, on the solver itself (so its learnt
/// clauses persist across calls). The others differ in branching seed,
/// phase polarity, and restart schedule — enough diversity to escape
/// pathological searches, while any profile's definite answer is the
/// same Sat/Unsat verdict.
pub const PORTFOLIO_PROFILES: [SolverProfile; 3] = [
    SolverProfile {
        seed: 0,
        invert_phase: false,
        restart_base: 100,
        reduce_base: 2000,
    },
    SolverProfile {
        seed: 0x9E37_79B9_7F4A_7C15,
        invert_phase: true,
        restart_base: 100,
        reduce_base: 2000,
    },
    SolverProfile {
        seed: 0xD1B5_4A32_D192_ED03,
        invert_phase: false,
        restart_base: 50,
        reduce_base: 2000,
    },
];

/// First conflict slice of the portfolio rotation. Deliberately generous:
/// any query the canonical profile finishes within this many conflicts
/// gets byte-identical answers whether the portfolio is on or off,
/// because no other profile ever runs. Slices double per rotation round,
/// so an unbudgeted race always terminates.
const PORTFOLIO_FIRST_SLICE: u64 = 4096;

/// Clause-database growth (in clauses ever added) between two bounded
/// inprocessing passes on an incremental context.
const INPROCESS_GROWTH: u64 = 512;

/// Export filter for portfolio clause sharing: only glue clauses (LBD at
/// most this) flow from clones back into the base solver.
pub const SHARE_MAX_LBD: u32 = 4;

/// Export filter for portfolio clause sharing: size cap on shared clauses.
pub const SHARE_MAX_LEN: usize = 16;

/// Reads the `SOCCAR_CLAUSE_SHARING` escape hatch: `0`/`false`/`off`
/// disable learnt-clause sharing between portfolio profiles, anything
/// else (or unset) enables it.
#[must_use]
pub fn clause_sharing_default() -> bool {
    !matches!(
        std::env::var("SOCCAR_CLAUSE_SHARING").as_deref(),
        Ok("0") | Ok("false") | Ok("off")
    )
}

/// Learnt-clause flow of one portfolio race: clauses imported into the
/// base solver from clone profiles, and clone learnts that were thrown
/// away with the clones.
#[derive(Debug, Clone, Copy, Default)]
struct SharingDelta {
    imported: u64,
    discarded: u64,
}

/// Learnt clauses the race's clones produced that never passed the
/// export filter — they die with the clones. Clones only ever learn
/// (the blast surface is fixed for the duration of a race), so the
/// `clauses_added` delta since the clone point counts learnts exactly.
fn portfolio_discarded(clones: &[Option<Solver>], births: &[u64], exported: &[u64]) -> u64 {
    clones
        .iter()
        .zip(births.iter().zip(exported))
        .filter_map(|(c, (b, e))| {
            let c = c.as_ref()?;
            let added = c.ctx.as_ref().map_or(*b, |x| x.bb.solver.clauses_added());
            Some(added.saturating_sub(*b).saturating_sub(*e))
        })
        .sum()
}

/// A satisfying assignment for the asserted formula.
///
/// Every variable term of the graph gets a value (unconstrained bits are
/// zero), so models can be replayed deterministically as concrete stimuli.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Model {
    values: HashMap<TermId, BvVal>,
}

impl Model {
    /// The value assigned to variable term `var`.
    #[must_use]
    pub fn value(&self, var: TermId) -> Option<&BvVal> {
        self.values.get(&var)
    }

    /// Iterates over `(variable term, value)` pairs (unspecified order).
    pub fn iter(&self) -> impl Iterator<Item = (TermId, &BvVal)> {
        self.values.iter().map(|(k, v)| (*k, v))
    }

    /// Number of assigned variables.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` if the model assigns no variables.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// Result of [`Solver::check`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckResult {
    /// Satisfiable, with a full model.
    Sat(Model),
    /// Unsatisfiable.
    Unsat,
    /// The solver's [`SolveBudget`] ran out before the search finished.
    /// Sound but incomplete: callers must treat this as "no answer", not
    /// as either Sat or Unsat. Only produced when a budget is configured.
    Unknown {
        /// Human-readable cause (`budget exhausted: 512 conflicts`),
        /// surfaced in degraded-health reports.
        reason: String,
    },
}

impl CheckResult {
    /// The model if satisfiable.
    #[must_use]
    pub fn model(&self) -> Option<&Model> {
        match self {
            CheckResult::Sat(m) => Some(m),
            CheckResult::Unsat | CheckResult::Unknown { .. } => None,
        }
    }

    /// `true` if satisfiable.
    #[must_use]
    pub fn is_sat(&self) -> bool {
        matches!(self, CheckResult::Sat(_))
    }

    /// `true` if the budget ran out before an answer was reached.
    #[must_use]
    pub fn is_unknown(&self) -> bool {
        matches!(self, CheckResult::Unknown { .. })
    }
}

/// Statistics from one `check` call.
///
/// For [`Solver::check_assuming`] the `conflicts`, `decisions`,
/// `propagations`, and `learnt_literals` fields are per-call deltas
/// (budgets meter per call), while `sat_vars` / `sat_clauses` report the
/// live size of the shared incremental state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// SAT variables created by bit-blasting.
    pub sat_vars: usize,
    /// CNF clauses created.
    pub sat_clauses: usize,
    /// CDCL conflicts.
    pub conflicts: u64,
    /// CDCL branching decisions.
    pub decisions: u64,
    /// Literals assigned by unit propagation.
    pub propagations: u64,
    /// Total literals across learnt clauses.
    pub learnt_literals: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Learnt clauses deleted by two-tier database reduction.
    pub learnt_deleted: u64,
    /// Learnt clauses retained, summed over reduction passes.
    pub learnt_kept: u64,
    /// Clauses removed by subsumption plus literals removed by
    /// self-subsuming resolution.
    pub subsumed: u64,
    /// Trail literals kept across `check_assuming` calls via
    /// assumption-prefix reuse instead of being re-propagated.
    pub trail_reused: u64,
}

/// Blasted solver state kept alive across [`Solver::check_assuming`]
/// calls: the CNF-level [`BitBlaster`] (term → literal cache plus the
/// incremental CDCL solver underneath) and high-water marks recording how
/// much of the word-level state has been lowered into it.
///
/// The context is only valid for the [`TermGraph`] it was built against,
/// and relies on the graph being append-only: existing `TermId`s never
/// change meaning, so cached literal vectors stay correct as the graph
/// grows. Cloning a `Solver` clones the context too — clones share no
/// state, which is how the concolic engine hands each worker a cheap
/// private copy of an already-blasted round prefix.
#[derive(Debug, Clone)]
pub struct BlastContext {
    bb: BitBlaster,
    synced_assertions: usize,
    blasted_vars: usize,
    // High-water mark for the `smt.clauses_reused` counter: clauses below
    // it were already credited by an earlier traced call, so each
    // carried-over clause is counted exactly once per context (clones
    // inherit the mark and re-count only what they inherited uncredited).
    // Measured in `SatSolver::clauses_added` units — a monotonic count
    // that learnt-DB reduction and inprocessing never lower, so deletion
    // cannot corrupt the accounting.
    counted_clauses: u64,
    // `clauses_added` at the last bounded inprocessing pass; the next
    // pass runs once the database has grown by `INPROCESS_GROWTH`.
    inprocessed_at: u64,
}

impl BlastContext {
    fn new() -> BlastContext {
        BlastContext {
            bb: BitBlaster::new(),
            synced_assertions: 0,
            blasted_vars: 0,
            counted_clauses: 0,
            inprocessed_at: 0,
        }
    }
}

/// A one-shot bit-vector solver over a [`TermGraph`].
///
/// # Examples
///
/// ```
/// use soccar_smt::{CheckResult, Solver, TermGraph};
///
/// let mut g = TermGraph::new();
/// let x = g.var("x", 8);
/// let c = g.const_u64(8, 5);
/// let sum = g.add(x, c);
/// let target = g.const_u64(8, 42);
/// let eq = g.eq(sum, target);
///
/// let mut solver = Solver::new();
/// solver.assert(eq);
/// match solver.check(&g) {
///     CheckResult::Sat(model) => {
///         assert_eq!(model.value(x).and_then(|v| v.to_u64()), Some(37));
///     }
///     other => unreachable!("{other:?}"),
/// }
/// ```
#[derive(Debug, Clone)]
pub struct Solver {
    assertions: Vec<TermId>,
    budget: SolveBudget,
    last_stats: SolveStats,
    ctx: Option<BlastContext>,
    profile: SolverProfile,
    bve: bool,
    trail_reuse: bool,
    clause_sharing: bool,
}

impl Default for Solver {
    /// An empty solver with the environment-default solver-speed knobs
    /// (`SOCCAR_BVE`, `SOCCAR_TRAIL_REUSE`, `SOCCAR_CLAUSE_SHARING`).
    fn default() -> Solver {
        Solver {
            assertions: Vec::new(),
            budget: SolveBudget::default(),
            last_stats: SolveStats::default(),
            ctx: None,
            profile: SolverProfile::default(),
            bve: crate::sat::bve_default(),
            trail_reuse: crate::sat::trail_reuse_default(),
            clause_sharing: clause_sharing_default(),
        }
    }
}

impl Solver {
    /// Creates a solver with no assertions and an unlimited budget.
    #[must_use]
    pub fn new() -> Solver {
        Solver::default()
    }

    /// Creates a solver with no assertions and the given [`SolveBudget`].
    /// An exhausted budget makes [`Solver::check`] return
    /// [`CheckResult::Unknown`] instead of searching forever.
    #[must_use]
    pub fn with_budget(budget: SolveBudget) -> Solver {
        Solver {
            budget,
            ..Solver::default()
        }
    }

    /// The configured budget.
    #[must_use]
    pub fn budget(&self) -> SolveBudget {
        self.budget
    }

    /// Replaces the budget for subsequent checks.
    pub fn set_budget(&mut self, budget: SolveBudget) {
        self.budget = budget;
    }

    /// The active [`SolverProfile`].
    #[must_use]
    pub fn profile(&self) -> SolverProfile {
        self.profile
    }

    /// Installs a [`SolverProfile`] on this solver (and on its live
    /// incremental context, if any). Profiles steer the search, never
    /// the Sat/Unsat answer.
    pub fn set_profile(&mut self, profile: SolverProfile) {
        self.profile = profile;
        if let Some(ctx) = self.ctx.as_mut() {
            ctx.bb.solver.set_profile(profile);
        }
    }

    /// Pins bounded variable elimination on or off for this solver (and
    /// its live incremental context), overriding the `SOCCAR_BVE`
    /// environment default.
    pub fn set_bve(&mut self, on: bool) {
        self.bve = on;
        if let Some(ctx) = self.ctx.as_mut() {
            ctx.bb.solver.set_bve(on);
        }
    }

    /// Pins assumption-trail reuse on or off for this solver (and its
    /// live incremental context), overriding `SOCCAR_TRAIL_REUSE`.
    pub fn set_trail_reuse(&mut self, on: bool) {
        self.trail_reuse = on;
        if let Some(ctx) = self.ctx.as_mut() {
            ctx.bb.solver.set_trail_reuse(on);
        }
    }

    /// Pins portfolio clause sharing on or off, overriding
    /// `SOCCAR_CLAUSE_SHARING`. Only
    /// [`Solver::check_assuming_portfolio_traced`] consults it.
    pub fn set_clause_sharing(&mut self, on: bool) {
        self.clause_sharing = on;
    }

    /// Adds a 1-bit assertion.
    pub fn assert(&mut self, t: TermId) {
        self.assertions.push(t);
    }

    /// Current assertions.
    #[must_use]
    pub fn assertions(&self) -> &[TermId] {
        &self.assertions
    }

    /// Statistics of the most recent [`Solver::check`].
    #[must_use]
    pub fn stats(&self) -> SolveStats {
        self.last_stats
    }

    /// Decides the conjunction of all assertions.
    ///
    /// # Panics
    ///
    /// Panics if any assertion is not a 1-bit term of `graph`.
    pub fn check(&mut self, graph: &TermGraph) -> CheckResult {
        self.check_traced(graph, &soccar_obs::Recorder::disabled())
    }

    /// Like [`Solver::check`] under an observability recorder: bumps the
    /// `smt.queries` counter and one of `smt.sat` / `smt.unsat` /
    /// `smt.unknown`, and feeds the query's [`SolveStats`] into the
    /// `smt.sat_vars`, `smt.sat_clauses`, and `smt.conflicts` histograms.
    ///
    /// Metrics only — no span is opened, so this is safe to call from
    /// worker threads: counter increments and histogram merges commute,
    /// and the concolic engine solves the same query set regardless of
    /// job count, keeping traces deterministic.
    ///
    /// # Panics
    ///
    /// As [`Solver::check`].
    pub fn check_traced(
        &mut self,
        graph: &TermGraph,
        recorder: &soccar_obs::Recorder,
    ) -> CheckResult {
        let result = self.check_inner(graph);
        recorder.counter_add("smt.queries", 1);
        recorder.counter_add(
            match &result {
                CheckResult::Sat(_) => "smt.sat",
                CheckResult::Unsat => "smt.unsat",
                CheckResult::Unknown { .. } => "smt.unknown",
            },
            1,
        );
        self.record_solve_metrics(recorder);
        result
    }

    /// Histograms plus the only-when-nonzero CDCL-dynamics counters
    /// (`smt.restarts`, `smt.learnt_kept`, `smt.learnt_deleted`,
    /// `smt.subsumed`) for the most recent call's [`SolveStats`].
    fn record_solve_metrics(&self, recorder: &soccar_obs::Recorder) {
        let st = self.last_stats;
        recorder.histogram_record("smt.sat_vars", st.sat_vars as u64);
        recorder.histogram_record("smt.sat_clauses", st.sat_clauses as u64);
        recorder.histogram_record("smt.conflicts", st.conflicts);
        recorder.histogram_record("smt.propagations", st.propagations);
        recorder.histogram_record("smt.learnt_literals", st.learnt_literals);
        if st.restarts > 0 {
            recorder.counter_add("smt.restarts", st.restarts);
        }
        if st.learnt_kept > 0 {
            recorder.counter_add("smt.learnt_kept", st.learnt_kept);
        }
        if st.learnt_deleted > 0 {
            recorder.counter_add("smt.learnt_deleted", st.learnt_deleted);
        }
        if st.subsumed > 0 {
            recorder.counter_add("smt.subsumed", st.subsumed);
        }
        if st.trail_reused > 0 {
            recorder.counter_add("smt.trail_reused", st.trail_reused);
        }
    }

    fn check_inner(&mut self, graph: &TermGraph) -> CheckResult {
        // Fast path: constant assertions.
        if self
            .assertions
            .iter()
            .any(|t| graph.as_const(*t).is_some_and(BvVal::is_zero))
        {
            self.last_stats = SolveStats::default();
            return CheckResult::Unsat;
        }
        let mut bb = BitBlaster::new();
        bb.solver.set_profile(self.profile);
        // One-shot solves never inprocess or re-solve, so BVE and trail
        // reuse have nothing to do here; the flags are still applied for
        // uniformity with the incremental context.
        bb.solver.set_bve(self.bve);
        bb.solver.set_trail_reuse(self.trail_reuse);
        for t in &self.assertions {
            bb.assert_true(graph, *t);
        }
        // Blast every variable so the model is total.
        for v in graph.vars() {
            bb.blast(graph, *v);
        }
        let outcome = bb.solver.solve_budgeted(self.budget);
        self.last_stats = SolveStats {
            sat_vars: bb.solver.num_vars(),
            sat_clauses: bb.solver.num_clauses(),
            conflicts: bb.solver.conflicts(),
            decisions: bb.solver.decisions(),
            propagations: bb.solver.propagations(),
            learnt_literals: bb.solver.learnt_literals(),
            restarts: bb.solver.restarts(),
            learnt_deleted: bb.solver.learnt_deleted(),
            learnt_kept: bb.solver.learnt_kept(),
            subsumed: bb.solver.subsumed(),
            trail_reused: 0,
        };
        match outcome {
            SatOutcome::Unsat => CheckResult::Unsat,
            SatOutcome::Sat => {
                let mut values = HashMap::new();
                for v in graph.vars() {
                    let bits = bb.model_bits(*v).expect("variable was blasted");
                    values.insert(*v, BvVal::from_bits(&bits));
                }
                CheckResult::Sat(Model { values })
            }
            SatOutcome::Unknown => CheckResult::Unknown {
                reason: format!(
                    "solver budget exhausted ({} conflicts, {} decisions)",
                    self.last_stats.conflicts, self.last_stats.decisions
                ),
            },
        }
    }

    /// Cache hits of the incremental blast context so far (0 before the
    /// first [`Solver::check_assuming`] / [`Solver::preblast`] call).
    #[must_use]
    pub fn blast_cache_hits(&self) -> u64 {
        self.ctx.as_ref().map_or(0, |c| c.bb.cache_hits())
    }

    /// Lowers `terms` (and all pending assertions / graph variables) into
    /// the incremental blast context ahead of time, so that subsequent
    /// [`Solver::check_assuming`] calls — or calls on *clones* of this
    /// solver — find everything already encoded and only pay for the
    /// search.
    ///
    /// # Panics
    ///
    /// As [`Solver::check_assuming`].
    pub fn preblast(&mut self, graph: &TermGraph, terms: &[TermId]) {
        self.sync_ctx(graph);
        let ctx = self.ctx.as_mut().expect("context just synced");
        for t in terms {
            ctx.bb.blast(graph, *t);
        }
    }

    /// Brings the blast context up to date with the word-level state:
    /// assertions added since the last call become hard (non-retractable)
    /// clauses, and new graph variables are blasted so models stay total.
    fn sync_ctx(&mut self, graph: &TermGraph) {
        if self.ctx.is_none() {
            let mut ctx = BlastContext::new();
            ctx.bb.solver.set_profile(self.profile);
            ctx.bb.solver.set_bve(self.bve);
            ctx.bb.solver.set_trail_reuse(self.trail_reuse);
            self.ctx = Some(ctx);
        }
        let ctx = self.ctx.as_mut().expect("context just created");
        while ctx.synced_assertions < self.assertions.len() {
            let t = self.assertions[ctx.synced_assertions];
            ctx.bb.assert_true(graph, t);
            ctx.synced_assertions += 1;
        }
        let vars = graph.vars();
        while ctx.blasted_vars < vars.len() {
            ctx.bb.blast(graph, vars[ctx.blasted_vars]);
            ctx.blasted_vars += 1;
        }
    }

    /// Decides the assertions conjoined with retractable `assumptions`
    /// (1-bit terms), reusing the blasted CNF, learnt clauses, variable
    /// activities, and saved phases of every previous `check_assuming`
    /// call on this solver.
    ///
    /// Unlike [`Solver::assert`] + [`Solver::check`], the assumptions are
    /// not part of the formula afterwards: `Unsat` means "unsat under
    /// these assumptions" unless the hard assertions alone are
    /// contradictory (a level-0 conflict), which is permanent. The
    /// [`SolveBudget`] meters each call separately; an `Unknown` answer
    /// keeps everything learnt, so re-solving resumes rather than
    /// restarts.
    ///
    /// The context assumes `graph` only grows between calls (append-only
    /// `TermId`s); see `docs/SOLVER.md` for the reuse invariants.
    ///
    /// # Panics
    ///
    /// Panics if any assertion or assumption is not a 1-bit term of
    /// `graph`.
    pub fn check_assuming(&mut self, graph: &TermGraph, assumptions: &[TermId]) -> CheckResult {
        self.check_assuming_traced(graph, assumptions, &soccar_obs::Recorder::disabled())
    }

    /// Like [`Solver::check_assuming`] under an observability recorder.
    ///
    /// On top of the [`Solver::check_traced`] metrics it bumps
    /// `smt.incremental_calls`, `smt.blast_cache_hits` (terms answered
    /// from the blast cache during this call), and `smt.clauses_reused`
    /// (clauses a call finds already present — blasted or learnt by an
    /// earlier call — with each clause credited only once per context,
    /// so the counter tracks the clause database's size, not the call
    /// count), and feeds the new
    /// `smt.propagations` / `smt.learnt_literals` histograms. Metrics
    /// only — no span — so it is worker-thread safe like `check_traced`.
    ///
    /// # Panics
    ///
    /// As [`Solver::check_assuming`].
    pub fn check_assuming_traced(
        &mut self,
        graph: &TermGraph,
        assumptions: &[TermId],
        recorder: &soccar_obs::Recorder,
    ) -> CheckResult {
        let entry = self.assuming_entry_marks();
        let result = self.check_assuming_inner(graph, assumptions);
        self.record_assuming_metrics(recorder, entry, &result);
        self.maintain_ctx(recorder);
        result
    }

    /// Like [`Solver::check_assuming_traced`], but races the
    /// [`PORTFOLIO_PROFILES`] over the query in deterministic,
    /// geometrically growing conflict slices: the canonical profile 0
    /// runs first in every rotation round (on this solver, so its learnt
    /// clauses persist), the others on lazily created clones that are
    /// discarded afterwards. The first definite answer wins; a win by a
    /// non-canonical profile bumps `smt.portfolio_wins`.
    ///
    /// After every clone slice (including a winning one), the clone's
    /// fresh glue clauses — learnt after the clone's export mark, LBD ≤
    /// [`SHARE_MAX_LBD`], at most [`SHARE_MAX_LEN`] literals — drain
    /// back into this solver's clause database in deterministic clause
    /// order, so clone work survives the clone (`smt.shared_imported`).
    /// Learnt clauses that fail the export filter die with the clone and
    /// are tallied as `smt.portfolio_learnts_discarded`.
    ///
    /// Determinism: the rotation order, slice schedule, clone points,
    /// and export filter are fixed, so the same query on the same state
    /// always returns the same result — and any query profile 0 finishes
    /// within the first slice returns exactly what
    /// [`Solver::check_assuming_traced`] would (clones, and therefore
    /// sharing, only exist once the race outlives profile 0's first
    /// slice). The configured [`SolveBudget`] applies *per profile*;
    /// `Unknown` is returned only once every profile has exhausted it.
    ///
    /// # Panics
    ///
    /// As [`Solver::check_assuming`].
    pub fn check_assuming_portfolio_traced(
        &mut self,
        graph: &TermGraph,
        assumptions: &[TermId],
        recorder: &soccar_obs::Recorder,
    ) -> CheckResult {
        let entry = self.assuming_entry_marks();
        let (result, winner, sharing) = self.check_assuming_portfolio_inner(graph, assumptions);
        if winner > 0 {
            recorder.counter_add("smt.portfolio_wins", 1);
        }
        if sharing.imported > 0 {
            recorder.counter_add("smt.shared_imported", sharing.imported);
        }
        if sharing.discarded > 0 {
            recorder.counter_add("smt.portfolio_learnts_discarded", sharing.discarded);
        }
        self.record_assuming_metrics(recorder, entry, &result);
        self.maintain_ctx(recorder);
        result
    }

    /// `(blast cache hits, clauses ever added, reuse mark)` at call entry.
    fn assuming_entry_marks(&self) -> (u64, u64, u64) {
        let hits = self.blast_cache_hits();
        let (added, counted) = self
            .ctx
            .as_ref()
            .map_or((0, 0), |c| (c.bb.solver.clauses_added(), c.counted_clauses));
        (hits, added, counted)
    }

    /// The shared metrics tail of the incremental entry points.
    fn record_assuming_metrics(
        &mut self,
        recorder: &soccar_obs::Recorder,
        (hits_at_entry, added_at_entry, counted_at_entry): (u64, u64, u64),
        result: &CheckResult,
    ) {
        recorder.counter_add("smt.queries", 1);
        recorder.counter_add("smt.incremental_calls", 1);
        recorder.counter_add(
            match result {
                CheckResult::Sat(_) => "smt.sat",
                CheckResult::Unsat => "smt.unsat",
                CheckResult::Unknown { .. } => "smt.unknown",
            },
            1,
        );
        let hits = self.blast_cache_hits() - hits_at_entry;
        if hits > 0 {
            recorder.counter_add("smt.blast_cache_hits", hits);
        }
        let reused = added_at_entry.saturating_sub(counted_at_entry);
        if reused > 0 {
            recorder.counter_add("smt.clauses_reused", reused);
        }
        if let Some(ctx) = self.ctx.as_mut() {
            ctx.counted_clauses = ctx.counted_clauses.max(added_at_entry);
        }
        self.record_solve_metrics(recorder);
    }

    /// Bounded inprocessing between `check_assuming` calls, triggered by
    /// clause-database growth against the context's high-water mark. The
    /// trigger depends only on the call sequence, never on wall clock,
    /// so runs stay deterministic; the pass happens after the call's
    /// model was extracted, so it only ever touches a retracted trail.
    fn maintain_ctx(&mut self, recorder: &soccar_obs::Recorder) {
        let Some(ctx) = self.ctx.as_mut() else {
            return;
        };
        let added = ctx.bb.solver.clauses_added();
        if added.saturating_sub(ctx.inprocessed_at) < INPROCESS_GROWTH {
            return;
        }
        let subsumed_before = ctx.bb.solver.subsumed();
        let deleted_before = ctx.bb.solver.learnt_deleted();
        let kept_before = ctx.bb.solver.learnt_kept();
        let eliminated_before = ctx.bb.solver.eliminated_vars();
        ctx.bb.solver.inprocess();
        ctx.inprocessed_at = added;
        let subsumed = ctx.bb.solver.subsumed() - subsumed_before;
        if subsumed > 0 {
            recorder.counter_add("smt.subsumed", subsumed);
        }
        let deleted = ctx.bb.solver.learnt_deleted() - deleted_before;
        if deleted > 0 {
            recorder.counter_add("smt.learnt_deleted", deleted);
        }
        let kept = ctx.bb.solver.learnt_kept() - kept_before;
        if kept > 0 {
            recorder.counter_add("smt.learnt_kept", kept);
        }
        let eliminated = ctx.bb.solver.eliminated_vars() - eliminated_before;
        if eliminated > 0 {
            recorder.counter_add("smt.eliminated_vars", eliminated);
        }
    }

    /// The deterministic portfolio race; returns the result, the index
    /// of the winning profile (0 when no profile answered), and the
    /// clause-sharing tally for the race.
    fn check_assuming_portfolio_inner(
        &mut self,
        graph: &TermGraph,
        assumptions: &[TermId],
    ) -> (CheckResult, usize, SharingDelta) {
        let user = self.budget;
        let n = PORTFOLIO_PROFILES.len();
        let mut clones: Vec<Option<Solver>> = (0..n).map(|_| None).collect();
        let mut spent_conflicts = vec![0u64; n];
        let mut spent_decisions = vec![0u64; n];
        let mut ran = vec![false; n];
        let mut done = vec![false; n];
        // Per-clone sharing state: `clauses_added` at the clone point
        // (everything older is already in the base database) and the
        // export high-water mark advanced by each drain.
        let mut clone_births = vec![0u64; n];
        let mut export_marks = vec![0u64; n];
        let mut exported = vec![0u64; n];
        let mut delta = SharingDelta::default();
        let mut slice = PORTFOLIO_FIRST_SLICE;
        loop {
            let mut all_done = true;
            for p in 0..n {
                if done[p] {
                    continue;
                }
                let rem_c = user
                    .max_conflicts
                    .map(|m| m.saturating_sub(spent_conflicts[p]));
                let rem_d = user
                    .max_decisions
                    .map(|m| m.saturating_sub(spent_decisions[p]));
                // A profile that has run at least once and exhausted the
                // per-profile user budget is out of the race. (Before the
                // first run even a zero budget gets one call, preserving
                // the single-profile semantics of degenerate budgets.)
                if ran[p] && (rem_c == Some(0) || rem_d == Some(0)) {
                    done[p] = true;
                    continue;
                }
                all_done = false;
                let call_budget = SolveBudget {
                    max_conflicts: Some(rem_c.map_or(slice, |r| r.min(slice))),
                    max_decisions: rem_d,
                };
                let (outcome, stats) = if p == 0 {
                    let saved = self.budget;
                    self.budget = call_budget;
                    let r = self.check_assuming_inner(graph, assumptions);
                    self.budget = saved;
                    (r, self.last_stats)
                } else {
                    if clones[p].is_none() {
                        // Lazy clone seeded from the canonical member's
                        // current state: earlier slices' learnt clauses
                        // are shared, and the clone point is a fixed
                        // position in the rotation, so it is as
                        // deterministic as an eager clone.
                        let mut c = self.clone();
                        c.set_profile(PORTFOLIO_PROFILES[p]);
                        let born = c.ctx.as_ref().map_or(0, |x| x.bb.solver.clauses_added());
                        clone_births[p] = born;
                        export_marks[p] = born;
                        clones[p] = Some(c);
                    }
                    let c = clones[p].as_mut().expect("clone just created");
                    c.budget = call_budget;
                    let r = c.check_assuming_inner(graph, assumptions);
                    (r, c.last_stats)
                };
                ran[p] = true;
                spent_conflicts[p] += stats.conflicts;
                spent_decisions[p] += stats.decisions;
                if p != 0 && self.clause_sharing {
                    // Drain the clone's fresh glue clauses into the base
                    // database between slices (and before a winning
                    // return), so clone work survives the clone.
                    let c = clones[p].as_ref().expect("clone just ran");
                    let (passed, imported, next_mark) =
                        self.drain_clone_exports(c, export_marks[p]);
                    exported[p] += passed;
                    delta.imported += imported;
                    export_marks[p] = next_mark;
                }
                match outcome {
                    CheckResult::Unknown { .. } => {}
                    definite => {
                        if p != 0 {
                            // Surface the winner's per-call stats (the
                            // model inside `definite` is already the
                            // winner's).
                            self.last_stats = stats;
                        }
                        delta.discarded = portfolio_discarded(&clones, &clone_births, &exported);
                        return (definite, p, delta);
                    }
                }
            }
            if all_done {
                delta.discarded = portfolio_discarded(&clones, &clone_births, &exported);
                return (
                    CheckResult::Unknown {
                        reason: format!("solver budget exhausted across {n} portfolio profiles"),
                    },
                    0,
                    delta,
                );
            }
            slice = slice.saturating_mul(2);
        }
    }

    /// Imports `clone`'s learnt clauses born at or after `mark` that
    /// pass the sharing filter (LBD ≤ [`SHARE_MAX_LBD`], at most
    /// [`SHARE_MAX_LEN`] literals) into this solver's blast context, in
    /// clause-database order. Returns `(filter passes, actual imports,
    /// clone's new export mark)` — an import is a no-op (counted as a
    /// pass but not an import) when the base database already satisfies
    /// the clause at level 0.
    fn drain_clone_exports(&mut self, clone: &Solver, mark: u64) -> (u64, u64, u64) {
        let Some(src) = clone.ctx.as_ref() else {
            return (0, 0, mark);
        };
        let next_mark = src.bb.solver.clauses_added();
        let Some(dst) = self.ctx.as_mut() else {
            return (0, 0, next_mark);
        };
        let mut passed = 0;
        let mut imported = 0;
        for (lits, lbd) in src
            .bb
            .solver
            .export_learnts(mark, SHARE_MAX_LBD, SHARE_MAX_LEN)
        {
            passed += 1;
            if dst.bb.solver.import_learnt(&lits, lbd) {
                imported += 1;
            }
        }
        (passed, imported, next_mark)
    }

    fn check_assuming_inner(&mut self, graph: &TermGraph, assumptions: &[TermId]) -> CheckResult {
        // Fast path: a constant-false assertion or assumption.
        if self
            .assertions
            .iter()
            .chain(assumptions)
            .any(|t| graph.as_const(*t).is_some_and(BvVal::is_zero))
        {
            self.last_stats = SolveStats::default();
            return CheckResult::Unsat;
        }
        self.sync_ctx(graph);
        let ctx = self.ctx.as_mut().expect("context just synced");
        let mut lits = Vec::with_capacity(assumptions.len());
        for t in assumptions {
            assert_eq!(graph.width(*t), 1, "assumptions must be 1-bit terms");
            lits.push(ctx.bb.blast(graph, *t)[0]);
        }
        let conflicts_at_entry = ctx.bb.solver.conflicts();
        let decisions_at_entry = ctx.bb.solver.decisions();
        let propagations_at_entry = ctx.bb.solver.propagations();
        let learnt_at_entry = ctx.bb.solver.learnt_literals();
        let restarts_at_entry = ctx.bb.solver.restarts();
        let deleted_at_entry = ctx.bb.solver.learnt_deleted();
        let kept_at_entry = ctx.bb.solver.learnt_kept();
        let subsumed_at_entry = ctx.bb.solver.subsumed();
        let reused_at_entry = ctx.bb.solver.trail_reused_lits();
        let outcome = ctx.bb.solver.solve_assuming(&lits, self.budget);
        self.last_stats = SolveStats {
            sat_vars: ctx.bb.solver.num_vars(),
            sat_clauses: ctx.bb.solver.num_clauses(),
            conflicts: ctx.bb.solver.conflicts() - conflicts_at_entry,
            decisions: ctx.bb.solver.decisions() - decisions_at_entry,
            propagations: ctx.bb.solver.propagations() - propagations_at_entry,
            learnt_literals: ctx.bb.solver.learnt_literals() - learnt_at_entry,
            restarts: ctx.bb.solver.restarts() - restarts_at_entry,
            learnt_deleted: ctx.bb.solver.learnt_deleted() - deleted_at_entry,
            learnt_kept: ctx.bb.solver.learnt_kept() - kept_at_entry,
            subsumed: ctx.bb.solver.subsumed() - subsumed_at_entry,
            trail_reused: ctx.bb.solver.trail_reused_lits() - reused_at_entry,
        };
        match outcome {
            SatOutcome::Unsat => CheckResult::Unsat,
            SatOutcome::Sat => {
                let mut values = HashMap::new();
                for v in graph.vars() {
                    let bits = ctx.bb.model_bits(*v).expect("variable was blasted");
                    values.insert(*v, BvVal::from_bits(&bits));
                }
                CheckResult::Sat(Model { values })
            }
            SatOutcome::Unknown => CheckResult::Unknown {
                reason: format!(
                    "solver budget exhausted ({} conflicts, {} decisions)",
                    self.last_stats.conflicts, self.last_stats.decisions
                ),
            },
        }
    }
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut entries: Vec<_> = self.values.iter().collect();
        entries.sort_by_key(|(id, _)| id.0);
        for (id, v) in entries {
            writeln!(f, "{id} = {v}")?;
        }
        Ok(())
    }
}

/// Validates a model against the assertions using the reference evaluator
/// (used by tests and the concolic engine's self-checks).
#[must_use]
pub fn model_satisfies(graph: &TermGraph, assertions: &[TermId], model: &Model) -> bool {
    let env: HashMap<TermId, BvVal> = model.iter().map(|(k, v)| (k, v.clone())).collect();
    assertions.iter().all(|t| {
        // Any variable not in the model (created after check) defaults 0.
        let mut env = env.clone();
        collect_missing_vars(graph, *t, &mut env);
        !graph.eval(*t, &env).is_zero()
    })
}

fn collect_missing_vars(graph: &TermGraph, t: TermId, env: &mut HashMap<TermId, BvVal>) {
    match graph.term(t) {
        Term::Var(_) => {
            env.entry(t).or_insert_with(|| BvVal::zeros(graph.width(t)));
        }
        Term::Const(_) => {}
        Term::Not(a) | Term::RedAnd(a) | Term::RedOr(a) | Term::RedXor(a) => {
            collect_missing_vars(graph, *a, env);
        }
        Term::Extract { arg, .. } | Term::ZExt { arg, .. } => {
            collect_missing_vars(graph, *arg, env);
        }
        Term::And(a, b)
        | Term::Or(a, b)
        | Term::Xor(a, b)
        | Term::Add(a, b)
        | Term::Sub(a, b)
        | Term::Mul(a, b)
        | Term::Udiv(a, b)
        | Term::Urem(a, b)
        | Term::Shl(a, b)
        | Term::Lshr(a, b)
        | Term::Ashr(a, b)
        | Term::Eq(a, b)
        | Term::Ult(a, b)
        | Term::Ule(a, b)
        | Term::Concat(a, b) => {
            collect_missing_vars(graph, *a, env);
            collect_missing_vars(graph, *b, env);
        }
        Term::Ite(c, t2, e) => {
            collect_missing_vars(graph, *c, env);
            collect_missing_vars(graph, *t2, env);
            collect_missing_vars(graph, *e, env);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sat_with_model() {
        let mut g = TermGraph::new();
        let x = g.var("x", 16);
        let y = g.var("y", 16);
        let sum = g.add(x, y);
        let c = g.const_u64(16, 1000);
        let eq = g.eq(sum, c);
        let c400 = g.const_u64(16, 400);
        let xeq = g.eq(x, c400);
        let mut s = Solver::new();
        s.assert(eq);
        s.assert(xeq);
        let r = s.check(&g);
        let m = r.model().expect("sat");
        assert_eq!(m.value(x).and_then(BvVal::to_u64), Some(400));
        assert_eq!(m.value(y).and_then(BvVal::to_u64), Some(600));
        assert!(model_satisfies(&g, s.assertions(), m));
        assert!(s.stats().sat_vars > 0);
    }

    #[test]
    fn unsat_contradiction() {
        let mut g = TermGraph::new();
        let x = g.var("x", 8);
        let c1 = g.const_u64(8, 1);
        let c2 = g.const_u64(8, 2);
        let e1 = g.eq(x, c1);
        let e2 = g.eq(x, c2);
        let mut s = Solver::new();
        s.assert(e1);
        s.assert(e2);
        assert_eq!(s.check(&g), CheckResult::Unsat);
    }

    #[test]
    fn constant_false_fast_path() {
        let mut g = TermGraph::new();
        let f = g.fls();
        let mut s = Solver::new();
        s.assert(f);
        assert_eq!(s.check(&g), CheckResult::Unsat);
        assert_eq!(s.stats().sat_vars, 0);
    }

    #[test]
    fn unconstrained_variables_get_defaults() {
        let mut g = TermGraph::new();
        let x = g.var("x", 8);
        let _unused = g.var("unused", 4);
        let c = g.const_u64(8, 3);
        let eq = g.eq(x, c);
        let mut s = Solver::new();
        s.assert(eq);
        let r = s.check(&g);
        let m = r.model().expect("sat");
        assert_eq!(m.len(), 2);
        assert!(m.value(_unused).is_some());
    }

    #[test]
    fn budget_exhaustion_reports_unknown() {
        let mut g = TermGraph::new();
        let x = g.var("x", 16);
        let y = g.var("y", 16);
        let sum = g.add(x, y);
        let c = g.const_u64(16, 1000);
        let eq = g.eq(sum, c);
        // A zero-decision budget forces Unknown on anything propagation
        // alone cannot decide.
        let mut s = Solver::with_budget(SolveBudget {
            max_conflicts: None,
            max_decisions: Some(0),
        });
        s.assert(eq);
        let r = s.check(&g);
        assert!(r.is_unknown());
        assert!(r.model().is_none());
        match &r {
            CheckResult::Unknown { reason } => assert!(reason.contains("budget exhausted")),
            other => unreachable!("{other:?}"),
        }
        // Lifting the budget recovers the definite answer.
        s.set_budget(SolveBudget::UNLIMITED);
        assert!(s.check(&g).is_sat());
    }

    #[test]
    fn unsat_is_still_definite_under_a_budget() {
        // The level-0/fast-path Unsat answers do not consume budget.
        let mut g = TermGraph::new();
        let x = g.var("x", 8);
        let c1 = g.const_u64(8, 1);
        let c2 = g.const_u64(8, 2);
        let e1 = g.eq(x, c1);
        let e2 = g.eq(x, c2);
        let mut s = Solver::with_budget(SolveBudget::conflicts(1));
        s.assert(e1);
        s.assert(e2);
        assert_eq!(s.check(&g), CheckResult::Unsat);
        assert_eq!(s.budget(), SolveBudget::conflicts(1));
    }

    #[test]
    fn check_assuming_flips_without_reasserting() {
        let mut g = TermGraph::new();
        let x = g.var("x", 8);
        let c1 = g.const_u64(8, 1);
        let c2 = g.const_u64(8, 2);
        let e1 = g.eq(x, c1);
        let e2 = g.eq(x, c2);
        let mut s = Solver::new();
        // No hard assertions: each call decides one retractable goal.
        let r1 = s.check_assuming(&g, &[e1]);
        assert_eq!(
            r1.model().and_then(|m| m.value(x)).and_then(BvVal::to_u64),
            Some(1)
        );
        let r2 = s.check_assuming(&g, &[e2]);
        assert_eq!(
            r2.model().and_then(|m| m.value(x)).and_then(BvVal::to_u64),
            Some(2)
        );
        // Contradictory assumptions: unsat under them, not permanently.
        assert_eq!(s.check_assuming(&g, &[e1, e2]), CheckResult::Unsat);
        assert!(s.check_assuming(&g, &[e1]).is_sat());
        // The second blast of e1/e2 came from the cache.
        assert!(s.blast_cache_hits() > 0);
    }

    #[test]
    fn check_assuming_with_hard_assertions_and_graph_growth() {
        let mut g = TermGraph::new();
        let x = g.var("x", 8);
        let y = g.var("y", 8);
        let sum = g.add(x, y);
        let c10 = g.const_u64(8, 10);
        let eq10 = g.eq(sum, c10);
        let mut s = Solver::new();
        s.assert(eq10);
        let c3 = g.const_u64(8, 3);
        let xeq3 = g.eq(x, c3);
        let r = s.check_assuming(&g, &[xeq3]);
        let m = r.model().expect("sat");
        assert_eq!(m.value(y).and_then(BvVal::to_u64), Some(7));
        assert!(model_satisfies(&g, &[eq10, xeq3], m));
        // Grow the graph after the context exists: new terms blast on
        // demand, new variables join the model.
        let z = g.var("z", 4);
        let c9 = g.const_u64(4, 9);
        let zeq9 = g.eq(z, c9);
        let r = s.check_assuming(&g, &[zeq9]);
        let m = r.model().expect("sat");
        assert_eq!(m.value(z).and_then(BvVal::to_u64), Some(9));
        assert_eq!(m.value(x).map(|v| v.width()), Some(8));
        // A contradictory assumption pair is retractable...
        let c200 = g.const_u64(8, 200);
        let xeq200 = g.eq(x, c200);
        assert_eq!(s.check_assuming(&g, &[xeq3, xeq200]), CheckResult::Unsat);
        // ...and the solver still answers Sat afterwards.
        assert!(s.check_assuming(&g, &[xeq3]).is_sat());
    }

    #[test]
    fn assertions_added_between_assumption_calls_are_kept() {
        // Regression: the unit clause for a new assertion used to be
        // enqueued on the previous call's stale Sat trail and then
        // silently discarded by the next solve's entry backtrack.
        let mut g = TermGraph::new();
        let x = g.var("x", 8);
        let c0 = g.const_u64(8, 0);
        let c1 = g.const_u64(8, 1);
        let xeq0 = g.eq(x, c0);
        let xeq1 = g.eq(x, c1);
        let mut s = Solver::new();
        // Leave a Sat trail (x = 1) on the shared context...
        assert!(s.check_assuming(&g, &[xeq1]).is_sat());
        // ...then land a hard assertion while that trail is still up.
        s.assert(xeq0);
        let r = s.check_assuming(&g, &[]);
        let m = r.model().expect("x == 0 is satisfiable");
        assert_eq!(m.value(x).and_then(BvVal::to_u64), Some(0));
        assert!(model_satisfies(&g, s.assertions(), m));
        // The assertion is a real hard clause now, not a lost enqueue...
        assert_eq!(s.check_assuming(&g, &[xeq1]), CheckResult::Unsat);
        // ...and that Unsat was assumption-level, not permanent.
        assert!(s.check_assuming(&g, &[xeq0]).is_sat());
    }

    #[test]
    fn assertion_falsified_by_stale_model_is_not_permanent_unsat() {
        // Regression: when the stale Sat trail falsified a new hard
        // unit, the failed enqueue wrongly latched the solver
        // permanently unsat.
        let mut g = TermGraph::new();
        let x = g.var("x", 8);
        let c1 = g.const_u64(8, 1);
        let xeq1 = g.eq(x, c1);
        let xne1 = g.not(xeq1);
        let mut s = Solver::new();
        // Sat trail with x = 1, so the blasted literal of `xeq1` is true.
        assert!(s.check_assuming(&g, &[xeq1]).is_sat());
        // `not` reuses that cached literal negated — false on the trail.
        s.assert(xne1);
        let r = s.check_assuming(&g, &[]);
        let m = r.model().expect("x != 1 is satisfiable");
        assert_ne!(m.value(x).and_then(BvVal::to_u64), Some(1));
        assert!(model_satisfies(&g, s.assertions(), m));
    }

    #[test]
    fn clauses_reused_counts_each_clause_once() {
        // The counter credits a carried-over clause the first time a call
        // finds it already present — repeating the same call must not
        // keep re-adding the whole clause database (quadratic growth).
        let mut g = TermGraph::new();
        let x = g.var("x", 8);
        let y = g.var("y", 8);
        let sum = g.add(x, y);
        let c10 = g.const_u64(8, 10);
        let eq10 = g.eq(sum, c10);
        let c3 = g.const_u64(8, 3);
        let xeq3 = g.eq(x, c3);
        let mut s = Solver::new();
        s.assert(eq10);
        let recorder = soccar_obs::Recorder::enabled();
        let reused = |r: &soccar_obs::Recorder| {
            r.snapshot()
                .counters
                .get("smt.clauses_reused")
                .copied()
                .unwrap_or(0)
        };
        for _ in 0..5 {
            assert!(s.check_assuming_traced(&g, &[xeq3], &recorder).is_sat());
        }
        // Every clause is credited at most once, so the counter is
        // bounded by the database size no matter how many calls ran
        // (the old per-call accumulation would be ~5x the database).
        let total = reused(&recorder);
        assert!(total > 0, "the repeated calls reused blasted clauses");
        assert!(
            total <= s.stats().sat_clauses as u64,
            "reused {total} > {} live clauses",
            s.stats().sat_clauses
        );
    }

    #[test]
    fn check_assuming_permanent_unsat_from_hard_assertions() {
        let mut g = TermGraph::new();
        let x = g.var("x", 8);
        let c1 = g.const_u64(8, 1);
        let c2 = g.const_u64(8, 2);
        let e1 = g.eq(x, c1);
        let e2 = g.eq(x, c2);
        let mut s = Solver::new();
        s.assert(e1);
        s.assert(e2);
        assert_eq!(s.check_assuming(&g, &[]), CheckResult::Unsat);
        assert_eq!(s.check_assuming(&g, &[e1]), CheckResult::Unsat);
    }

    #[test]
    fn check_assuming_budget_unknown_with_deltas() {
        let mut g = TermGraph::new();
        let x = g.var("x", 16);
        let y = g.var("y", 16);
        let sum = g.add(x, y);
        let c = g.const_u64(16, 1000);
        let eq = g.eq(sum, c);
        let mut s = Solver::with_budget(SolveBudget {
            max_conflicts: None,
            max_decisions: Some(0),
        });
        let r = s.check_assuming(&g, &[eq]);
        assert!(r.is_unknown());
        match &r {
            CheckResult::Unknown { reason } => assert!(reason.contains("budget exhausted")),
            other => unreachable!("{other:?}"),
        }
        // Budgets meter per call: lifting it resumes to a definite answer
        // on the same context.
        s.set_budget(SolveBudget::UNLIMITED);
        let r = s.check_assuming(&g, &[eq]);
        let m = r.model().expect("sat");
        assert!(model_satisfies(&g, &[eq], m));
        assert_eq!(s.stats().decisions, s.stats().decisions); // per-call delta
    }

    #[test]
    fn cloned_solver_shares_no_state_with_original() {
        let mut g = TermGraph::new();
        let x = g.var("x", 8);
        let c5 = g.const_u64(8, 5);
        let c6 = g.const_u64(8, 6);
        let e5 = g.eq(x, c5);
        let e6 = g.eq(x, c6);
        let mut base = Solver::new();
        base.preblast(&g, &[e5, e6]);
        let clauses = base.blast_cache_hits();
        let mut a = base.clone();
        let mut b = base.clone();
        assert!(a.check_assuming(&g, &[e5]).is_sat());
        assert_eq!(b.check_assuming(&g, &[e5, e6]), CheckResult::Unsat);
        // Both clones hit the preblasted cache; the base is untouched.
        assert!(a.blast_cache_hits() > clauses);
        assert_eq!(base.blast_cache_hits(), clauses);
    }

    #[test]
    fn reset_style_constraint() {
        // The shape Algorithm 3 solves: clock-edge and reset equivalences.
        // (clk == 1) ∧ (rst_n == 0) ∧ (state == BUSY)
        let mut g = TermGraph::new();
        let clk = g.var("clk", 1);
        let rst_n = g.var("rst_n", 1);
        let state = g.var("state", 2);
        let one = g.tru();
        let zero = g.fls();
        let busy = g.const_u64(2, 2);
        let c1 = g.eq(clk, one);
        let c2 = g.eq(rst_n, zero);
        let c3 = g.eq(state, busy);
        let mut s = Solver::new();
        s.assert(c1);
        s.assert(c2);
        s.assert(c3);
        let r = s.check(&g);
        let m = r.model().expect("sat");
        assert_eq!(m.value(clk).and_then(BvVal::to_u64), Some(1));
        assert_eq!(m.value(rst_n).and_then(BvVal::to_u64), Some(0));
        assert_eq!(m.value(state).and_then(BvVal::to_u64), Some(2));
    }
}
