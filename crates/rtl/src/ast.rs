//! Abstract syntax tree for the Verilog subset.
//!
//! The AST is deliberately close to the source: the CFG extractor
//! (`soccar-cfg`) reasons about `always` blocks, sensitivity lists and
//! leading conditionals exactly as SoCCAR's Algorithm 1 describes, and the
//! bug-insertion engine (`soccar-soc`) mutates these nodes directly.

use std::fmt;

use crate::span::Span;
use crate::value::LogicVec;

/// A parsed source unit: one or more module definitions.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceUnit {
    /// Modules in source order.
    pub modules: Vec<Module>,
}

impl SourceUnit {
    /// Finds a module by name.
    #[must_use]
    pub fn module(&self, name: &str) -> Option<&Module> {
        self.modules.iter().find(|m| m.name == name)
    }

    /// Finds a module by name, mutably (used by the bug-insertion engine).
    pub fn module_mut(&mut self, name: &str) -> Option<&mut Module> {
        self.modules.iter_mut().find(|m| m.name == name)
    }
}

/// Port direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PortDir {
    /// Driven from outside the module.
    Input,
    /// Driven from inside the module.
    Output,
}

impl fmt::Display for PortDir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PortDir::Input => "input",
            PortDir::Output => "output",
        })
    }
}

/// Net kind of a declaration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetKind {
    /// Continuous-assignment net.
    Wire,
    /// Procedural variable.
    Reg,
    /// 32-bit procedural variable (loop counters).
    Integer,
}

impl fmt::Display for NetKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            NetKind::Wire => "wire",
            NetKind::Reg => "reg",
            NetKind::Integer => "integer",
        })
    }
}

/// A `[msb:lsb]` packed range; both bounds are constant expressions.
#[derive(Debug, Clone, PartialEq)]
pub struct Range {
    /// Most-significant bound expression.
    pub msb: Expr,
    /// Least-significant bound expression.
    pub lsb: Expr,
    /// Source location of the whole range.
    pub span: Span,
}

/// A module port in the header.
#[derive(Debug, Clone, PartialEq)]
pub struct Port {
    /// Port name.
    pub name: String,
    /// Direction.
    pub dir: PortDir,
    /// `reg` outputs are procedural; everything else is a wire.
    pub kind: NetKind,
    /// Optional packed range.
    pub range: Option<Range>,
    /// Source location.
    pub span: Span,
}

/// A parameter (or localparam) declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamDecl {
    /// Parameter name.
    pub name: String,
    /// Default / assigned value expression (constant).
    pub value: Expr,
    /// `true` for `localparam` (not overridable at instantiation).
    pub local: bool,
    /// Source location.
    pub span: Span,
}

/// One declarator in a net declaration: `name`, optional unpacked
/// (memory) range, optional initializer.
#[derive(Debug, Clone, PartialEq)]
pub struct Declarator {
    /// Declared name.
    pub name: String,
    /// Memory dimension `[lo:hi]` if this is an array.
    pub array: Option<Range>,
    /// Optional `= expr` initializer (constant; wires only in subset).
    pub init: Option<Expr>,
    /// Source location.
    pub span: Span,
}

/// A net/variable declaration item.
#[derive(Debug, Clone, PartialEq)]
pub struct NetDecl {
    /// Wire / reg / integer.
    pub kind: NetKind,
    /// Optional packed range shared by all declarators.
    pub range: Option<Range>,
    /// Declared names.
    pub names: Vec<Declarator>,
    /// Source location.
    pub span: Span,
}

/// Edge qualifier in a sensitivity list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Edge {
    /// `posedge`.
    Pos,
    /// `negedge`.
    Neg,
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Edge::Pos => "posedge",
            Edge::Neg => "negedge",
        })
    }
}

/// One entry of an `@(...)` event list.
#[derive(Debug, Clone, PartialEq)]
pub struct SensItem {
    /// Edge qualifier; `None` for level sensitivity.
    pub edge: Option<Edge>,
    /// The watched signal (an identifier in the subset).
    pub signal: String,
    /// Source location.
    pub span: Span,
}

/// Sensitivity specification of an `always` block.
#[derive(Debug, Clone, PartialEq)]
pub enum Sensitivity {
    /// `@*` / `@(*)`: combinational, inferred read set.
    Star,
    /// Explicit event list.
    List(Vec<SensItem>),
}

impl Sensitivity {
    /// Items of an explicit list; empty for `Star`.
    #[must_use]
    pub fn items(&self) -> &[SensItem] {
        match self {
            Sensitivity::Star => &[],
            Sensitivity::List(items) => items,
        }
    }

    /// `true` if any item is edge-qualified.
    #[must_use]
    pub fn has_edges(&self) -> bool {
        self.items().iter().any(|i| i.edge.is_some())
    }
}

/// An `always` block.
#[derive(Debug, Clone, PartialEq)]
pub struct AlwaysBlock {
    /// The `@(...)` event control.
    pub sensitivity: Sensitivity,
    /// Body statement.
    pub body: Stmt,
    /// Source location (of the `always` keyword through the body).
    pub span: Span,
}

impl AlwaysBlock {
    /// Edge-qualified entries of the sensitivity list.
    pub fn edge_items(&self) -> impl Iterator<Item = &SensItem> {
        self.sensitivity.items().iter().filter(|i| i.edge.is_some())
    }

    /// `true` if the block is combinational (`@*` or a level-only list).
    #[must_use]
    pub fn is_combinational(&self) -> bool {
        !self.sensitivity.has_edges()
    }
}

/// A named connection in an instantiation: `.port(expr)`.
#[derive(Debug, Clone, PartialEq)]
pub struct PortConn {
    /// Formal port name.
    pub port: String,
    /// Actual expression; `None` for an explicitly unconnected port.
    pub expr: Option<Expr>,
    /// Source location.
    pub span: Span,
}

/// A module instantiation.
#[derive(Debug, Clone, PartialEq)]
pub struct Instance {
    /// Name of the instantiated module definition.
    pub module: String,
    /// Instance name.
    pub name: String,
    /// `#(.P(v), ...)` parameter overrides.
    pub params: Vec<PortConn>,
    /// Port connections (named form only in the subset).
    pub conns: Vec<PortConn>,
    /// Source location.
    pub span: Span,
}

/// A module item.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// Net/variable declaration.
    Net(NetDecl),
    /// `parameter`/`localparam`.
    Param(ParamDecl),
    /// `assign lhs = rhs;`
    Assign {
        /// Left-hand side (lvalue expression).
        lhs: Expr,
        /// Right-hand side.
        rhs: Expr,
        /// Source location.
        span: Span,
    },
    /// `always @(...) ...`
    Always(AlwaysBlock),
    /// `initial ...` (used only to preload memories/registers in tests).
    Initial {
        /// Body statement.
        body: Stmt,
        /// Source location.
        span: Span,
    },
    /// Module instantiation.
    Instance(Instance),
}

impl Item {
    /// The item's source location.
    #[must_use]
    pub fn span(&self) -> Span {
        match self {
            Item::Net(d) => d.span,
            Item::Param(p) => p.span,
            Item::Assign { span, .. } | Item::Initial { span, .. } => *span,
            Item::Always(a) => a.span,
            Item::Instance(i) => i.span,
        }
    }
}

/// A module definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Module {
    /// Module name.
    pub name: String,
    /// Header parameter list (`#(parameter ...)`).
    pub params: Vec<ParamDecl>,
    /// ANSI-style port list.
    pub ports: Vec<Port>,
    /// Body items.
    pub items: Vec<Item>,
    /// Source location.
    pub span: Span,
}

impl Module {
    /// Iterates over the `always` blocks of the module.
    pub fn always_blocks(&self) -> impl Iterator<Item = &AlwaysBlock> {
        self.items.iter().filter_map(|i| match i {
            Item::Always(a) => Some(a),
            _ => None,
        })
    }

    /// Iterates over the instances of the module.
    pub fn instances(&self) -> impl Iterator<Item = &Instance> {
        self.items.iter().filter_map(|i| match i {
            Item::Instance(inst) => Some(inst),
            _ => None,
        })
    }

    /// Finds a port by name.
    #[must_use]
    pub fn port(&self, name: &str) -> Option<&Port> {
        self.ports.iter().find(|p| p.name == name)
    }

    /// Iterates over the continuous assignments of the module as
    /// `(lhs, rhs, span)` triples.
    pub fn assigns(&self) -> impl Iterator<Item = (&Expr, &Expr, Span)> {
        self.items.iter().filter_map(|i| match i {
            Item::Assign { lhs, rhs, span } => Some((lhs, rhs, *span)),
            _ => None,
        })
    }

    /// Iterates over the net/variable declarations of the module.
    pub fn net_decls(&self) -> impl Iterator<Item = &NetDecl> {
        self.items.iter().filter_map(|i| match i {
            Item::Net(d) => Some(d),
            _ => None,
        })
    }
}

/// `case` flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CaseKind {
    /// Exact (4-state) comparison.
    Case,
    /// `z`/`?` bits in labels are wildcards.
    Casez,
    /// `x` and `z` bits in labels are wildcards.
    Casex,
}

/// One arm of a case statement.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseArm {
    /// Labels; empty means `default`.
    pub labels: Vec<Expr>,
    /// Arm body.
    pub body: Stmt,
    /// Source location.
    pub span: Span,
}

/// A procedural statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `begin ... end`.
    Block {
        /// Statements in order.
        stmts: Vec<Stmt>,
        /// Source location.
        span: Span,
    },
    /// `if (cond) then [else els]`.
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_stmt: Box<Stmt>,
        /// Optional else branch.
        else_stmt: Option<Box<Stmt>>,
        /// Source location.
        span: Span,
    },
    /// `case/casez/casex (sel) ... endcase`.
    Case {
        /// Flavor.
        kind: CaseKind,
        /// Selector.
        selector: Expr,
        /// Arms (a `default` arm has empty labels).
        arms: Vec<CaseArm>,
        /// Source location.
        span: Span,
    },
    /// Blocking assignment `lhs = rhs;`.
    Blocking {
        /// Lvalue.
        lhs: Expr,
        /// Value.
        rhs: Expr,
        /// Source location.
        span: Span,
    },
    /// Non-blocking assignment `lhs <= rhs;`.
    NonBlocking {
        /// Lvalue.
        lhs: Expr,
        /// Value.
        rhs: Expr,
        /// Source location.
        span: Span,
    },
    /// Bounded `for` loop (executed procedurally by the interpreter).
    For {
        /// Loop variable name (an `integer` or `reg`).
        var: String,
        /// Initial value.
        init: Expr,
        /// Continuation condition.
        cond: Expr,
        /// Step expression assigned back to `var` each iteration.
        step: Expr,
        /// Body.
        body: Box<Stmt>,
        /// Source location.
        span: Span,
    },
    /// Null statement `;` (also used for ignored system tasks).
    Null {
        /// Source location.
        span: Span,
    },
}

impl Stmt {
    /// The statement's source location.
    #[must_use]
    pub fn span(&self) -> Span {
        match self {
            Stmt::Block { span, .. }
            | Stmt::If { span, .. }
            | Stmt::Case { span, .. }
            | Stmt::Blocking { span, .. }
            | Stmt::NonBlocking { span, .. }
            | Stmt::For { span, .. }
            | Stmt::Null { span } => *span,
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// `~` bitwise not.
    Not,
    /// `!` logical not.
    LogicalNot,
    /// `-` negation.
    Neg,
    /// `+` no-op.
    Plus,
    /// `&` reduction and.
    RedAnd,
    /// `|` reduction or.
    RedOr,
    /// `^` reduction xor.
    RedXor,
    /// `~&` reduction nand (parsed as `~` of `&` in subset sources, kept
    /// for completeness of the printer).
    RedNand,
    /// `~|` reduction nor.
    RedNor,
    /// `~^` reduction xnor.
    RedXnor,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variants name their Verilog operator
pub enum BinaryOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Pow,
    And,
    Or,
    Xor,
    Xnor,
    LogicalAnd,
    LogicalOr,
    Eq,
    Ne,
    CaseEq,
    CaseNe,
    Lt,
    Le,
    Gt,
    Ge,
    Shl,
    Shr,
    AShr,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Literal number.
    Number {
        /// Value (width already applied).
        value: LogicVec,
        /// Whether the literal had an explicit size.
        sized: bool,
        /// Source location.
        span: Span,
    },
    /// Identifier reference.
    Ident {
        /// Referenced name.
        name: String,
        /// Source location.
        span: Span,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        operand: Box<Expr>,
        /// Source location.
        span: Span,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinaryOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Source location.
        span: Span,
    },
    /// `cond ? then : else`.
    Ternary {
        /// Condition.
        cond: Box<Expr>,
        /// Value when true.
        then_expr: Box<Expr>,
        /// Value when false.
        else_expr: Box<Expr>,
        /// Source location.
        span: Span,
    },
    /// `{a, b, c}`.
    Concat {
        /// Parts, MSB part first (Verilog order).
        parts: Vec<Expr>,
        /// Source location.
        span: Span,
    },
    /// `{n{expr}}`.
    Repeat {
        /// Replication count (constant).
        count: Box<Expr>,
        /// Replicated expression.
        expr: Box<Expr>,
        /// Source location.
        span: Span,
    },
    /// `base[index]` — bit-select or memory element.
    Index {
        /// Indexed identifier.
        base: String,
        /// Index expression.
        index: Box<Expr>,
        /// Source location.
        span: Span,
    },
    /// `base[msb:lsb]` — constant part-select.
    PartSelect {
        /// Selected identifier.
        base: String,
        /// MSB bound (constant).
        msb: Box<Expr>,
        /// LSB bound (constant).
        lsb: Box<Expr>,
        /// Source location.
        span: Span,
    },
    /// `base[start +: width]` — indexed part-select.
    IndexedPartSelect {
        /// Selected identifier.
        base: String,
        /// Start bit expression.
        start: Box<Expr>,
        /// Width (constant).
        width: Box<Expr>,
        /// `true` for `+:`, `false` for `-:`.
        ascending: bool,
        /// Source location.
        span: Span,
    },
}

impl Expr {
    /// The expression's source location.
    #[must_use]
    pub fn span(&self) -> Span {
        match self {
            Expr::Number { span, .. }
            | Expr::Ident { span, .. }
            | Expr::Unary { span, .. }
            | Expr::Binary { span, .. }
            | Expr::Ternary { span, .. }
            | Expr::Concat { span, .. }
            | Expr::Repeat { span, .. }
            | Expr::Index { span, .. }
            | Expr::PartSelect { span, .. }
            | Expr::IndexedPartSelect { span, .. } => *span,
        }
    }

    /// Convenience constructor for an identifier with a dummy span.
    #[must_use]
    pub fn ident(name: impl Into<String>) -> Expr {
        Expr::Ident {
            name: name.into(),
            span: Span::dummy(),
        }
    }

    /// Convenience constructor for a sized number with a dummy span.
    #[must_use]
    pub fn number(width: u32, value: u64) -> Expr {
        Expr::Number {
            value: LogicVec::from_u64(width, value),
            sized: true,
            span: Span::dummy(),
        }
    }

    /// Collects every identifier read by this expression into `out`.
    ///
    /// Used for `@*` read-set inference and continuous-assign sensitivity.
    pub fn collect_reads(&self, out: &mut Vec<String>) {
        match self {
            Expr::Number { .. } => {}
            Expr::Ident { name, .. } => out.push(name.clone()),
            Expr::Unary { operand, .. } => operand.collect_reads(out),
            Expr::Binary { lhs, rhs, .. } => {
                lhs.collect_reads(out);
                rhs.collect_reads(out);
            }
            Expr::Ternary {
                cond,
                then_expr,
                else_expr,
                ..
            } => {
                cond.collect_reads(out);
                then_expr.collect_reads(out);
                else_expr.collect_reads(out);
            }
            Expr::Concat { parts, .. } => {
                for p in parts {
                    p.collect_reads(out);
                }
            }
            Expr::Repeat { count, expr, .. } => {
                count.collect_reads(out);
                expr.collect_reads(out);
            }
            Expr::Index { base, index, .. } => {
                out.push(base.clone());
                index.collect_reads(out);
            }
            Expr::PartSelect { base, msb, lsb, .. } => {
                out.push(base.clone());
                msb.collect_reads(out);
                lsb.collect_reads(out);
            }
            Expr::IndexedPartSelect {
                base, start, width, ..
            } => {
                out.push(base.clone());
                start.collect_reads(out);
                width.collect_reads(out);
            }
        }
    }

    /// `true` if the expression is a single reference to `name` or its
    /// logical/bitwise negation — the shapes a reset guard takes
    /// (`if (rst)`, `if (!rst_n)`, `if (~rst_n)`).
    #[must_use]
    pub fn is_signal_test(&self, name: &str) -> bool {
        match self {
            Expr::Ident { name: n, .. } => n == name,
            Expr::Unary {
                op: UnaryOp::LogicalNot | UnaryOp::Not,
                operand,
                ..
            } => operand.is_signal_test(name),
            Expr::Binary {
                op: BinaryOp::Eq | BinaryOp::Ne,
                lhs,
                rhs,
                ..
            } => {
                (matches!(&**lhs, Expr::Ident { name: n, .. } if n == name)
                    && matches!(&**rhs, Expr::Number { .. }))
                    || (matches!(&**rhs, Expr::Ident { name: n, .. } if n == name)
                        && matches!(&**lhs, Expr::Number { .. }))
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collect_reads_walks_everything() {
        let e = Expr::Ternary {
            cond: Box::new(Expr::ident("c")),
            then_expr: Box::new(Expr::Binary {
                op: BinaryOp::Add,
                lhs: Box::new(Expr::ident("a")),
                rhs: Box::new(Expr::Index {
                    base: "mem".into(),
                    index: Box::new(Expr::ident("i")),
                    span: Span::dummy(),
                }),
                span: Span::dummy(),
            }),
            else_expr: Box::new(Expr::number(8, 0)),
            span: Span::dummy(),
        };
        let mut reads = Vec::new();
        e.collect_reads(&mut reads);
        assert_eq!(reads, vec!["c", "a", "mem", "i"]);
    }

    #[test]
    fn is_signal_test_recognizes_reset_guards() {
        let direct = Expr::ident("rst");
        assert!(direct.is_signal_test("rst"));
        let not = Expr::Unary {
            op: UnaryOp::LogicalNot,
            operand: Box::new(Expr::ident("rst_n")),
            span: Span::dummy(),
        };
        assert!(not.is_signal_test("rst_n"));
        assert!(!not.is_signal_test("clk"));
        let eq = Expr::Binary {
            op: BinaryOp::Eq,
            lhs: Box::new(Expr::ident("rst_n")),
            rhs: Box::new(Expr::number(1, 0)),
            span: Span::dummy(),
        };
        assert!(eq.is_signal_test("rst_n"));
    }

    #[test]
    fn module_accessors() {
        let m = Module {
            name: "m".into(),
            params: vec![],
            ports: vec![Port {
                name: "clk".into(),
                dir: PortDir::Input,
                kind: NetKind::Wire,
                range: None,
                span: Span::dummy(),
            }],
            items: vec![Item::Always(AlwaysBlock {
                sensitivity: Sensitivity::Star,
                body: Stmt::Null {
                    span: Span::dummy(),
                },
                span: Span::dummy(),
            })],
            span: Span::dummy(),
        };
        assert!(m.port("clk").is_some());
        assert!(m.port("nope").is_none());
        assert_eq!(m.always_blocks().count(), 1);
        assert_eq!(m.instances().count(), 0);
    }

    #[test]
    fn sensitivity_helpers() {
        let s = Sensitivity::List(vec![SensItem {
            edge: Some(Edge::Pos),
            signal: "clk".into(),
            span: Span::dummy(),
        }]);
        assert!(s.has_edges());
        assert!(!Sensitivity::Star.has_edges());
        assert_eq!(Sensitivity::Star.items().len(), 0);
    }
}
