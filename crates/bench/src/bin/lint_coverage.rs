//! **Static-vs-concolic coverage** — the linter run across all five
//! bug-seeded variants, next to the concolic detection results.
//!
//! For each variant the linter runs *differentially*: the clean baseline
//! of the same SoC is linted too, and only diagnostics absent from the
//! baseline count as flagging the seeded bugs (see
//! [`soccar_bench::differential_lint`]). The table then shows, per
//! inserted bug, which lint rules flagged it statically and whether
//! concolic testing detected it — the structural bugs (partial reset
//! domains, the implicit-governor construct) fall to the millisecond
//! pre-pass, while the wrong-value bugs (`prot_en` disarmed, `priv_mode`
//! escalated) genuinely need simulation.

use std::collections::BTreeSet;

use soccar_bench::{bench_args, differential_lint, evaluate_all_variants, render_table};
use soccar_lint::Diagnostic;

fn main() {
    let mut rows = Vec::new();
    let mut static_hits = 0usize;
    let mut concolic_hits = 0usize;
    let mut total = 0usize;

    let (evals, _) = evaluate_all_variants(bench_args().jobs);
    for (spec, eval) in soccar_soc::variants().iter().zip(&evals) {
        let seeded = soccar_soc::generate(spec.soc, Some(spec.number));
        let fresh: Vec<Diagnostic> = differential_lint(spec.soc, spec.number);

        for outcome in &eval.outcomes {
            let rules: BTreeSet<&str> = fresh
                .iter()
                .filter(|d| d.module.contains(&outcome.ip))
                .map(|d| d.rule)
                .collect();
            let statically = !rules.is_empty();
            total += 1;
            static_hits += usize::from(statically);
            concolic_hits += usize::from(outcome.detected);
            rows.push(vec![
                seeded.name.clone(),
                format!("{} @ {}", outcome.violation, outcome.ip),
                if statically {
                    rules.iter().copied().collect::<Vec<_>>().join(", ")
                } else {
                    "-".to_owned()
                },
                if outcome.detected { "yes" } else { "no" }.to_owned(),
            ]);
        }
    }

    println!("Lint coverage across the bug-seeded variants (differential vs clean baseline)");
    println!(
        "{}",
        render_table(
            &[
                "Variant",
                "Inserted bug",
                "Flagged statically by",
                "Concolic"
            ],
            &rows
        )
    );
    println!(
        "{static_hits}/{total} bugs flagged statically; {concolic_hits}/{total} detected \
         by concolic testing; bugs in neither column need stronger properties"
    );
}
