//! In-process integration tests for the `soccar serve` daemon.
//!
//! The load-bearing guarantee: every `analyze` body a client receives is
//! byte-identical to the canonical JSON of a cold batch `Soccar::analyze`
//! on the same input — under concurrency, under warm caches, and for
//! every worker-thread count.

use std::net::TcpStream;
use std::sync::Arc;
use std::thread;

use soccar::Soccar;
use soccar_serve::{read_frame, write_frame, Client, Json, Request, Server, ServerOptions};

const KEY_PROPERTY: &str = "cleared:key-cleared:ip:top.sec_rst_n:top.u.key:8";

fn leaky(ip_value: u8, top_comment: &str) -> String {
    format!(
        "module ip(input clk, input rst_n, output reg [7:0] key);
  always @(posedge clk or negedge rst_n)
    if (!rst_n) key <= key;
    else key <= 8'h{ip_value:02X};
endmodule
module top(input clk, input sec_rst_n);{top_comment}
  ip u (.clk(clk), .rst_n(sec_rst_n));
endmodule
"
    )
}

fn analyze_request(source: &str) -> Request {
    let mut req = Request::new("analyze");
    req.file_name = "t.v".to_owned();
    req.source = source.to_owned();
    req.top = "top".to_owned();
    req.properties = vec![KEY_PROPERTY.to_owned()];
    req
}

/// The batch pipeline's canonical JSON for the same request, resolved
/// through the exact same path the server uses.
fn batch_canonical(req: &Request) -> String {
    let (file_name, source, top, properties, config) =
        soccar_serve::resolve_request(req).expect("resolve");
    Soccar::new(config)
        .analyze(&file_name, &source, &top, properties)
        .expect("batch analyze")
        .canonical_json()
        .expect("canonical json")
}

/// Spawns a server, hands its address to `body`, then shuts it down via
/// the protocol and returns (`body` result, requests served).
fn with_server<T>(options: ServerOptions, body: impl FnOnce(&str) -> T) -> (T, u64) {
    let server = Arc::new(Server::bind(&options).expect("bind"));
    let addr = server.local_addr().to_string();
    let runner = {
        let server = Arc::clone(&server);
        thread::spawn(move || server.run().expect("run"))
    };
    let result = body(&addr);
    let mut client = Client::connect(&addr).expect("connect for shutdown");
    let (envelope, _) = client
        .roundtrip(&Request::new("shutdown"))
        .expect("shutdown");
    assert!(envelope.ok, "shutdown must be acknowledged");
    let served = runner.join().expect("server thread");
    (result, served)
}

/// A raw roundtrip that keeps the envelope JSON (the typed client drops
/// the per-request cache stats).
fn raw_roundtrip(addr: &str, req: &Request) -> (Json, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write_frame(&mut stream, req.to_json().expect("encode").as_bytes()).expect("send");
    let envelope = read_frame(&mut stream)
        .expect("read envelope")
        .expect("envelope frame");
    let body = read_frame(&mut stream)
        .expect("read body")
        .expect("body frame");
    let envelope = Json::parse(std::str::from_utf8(&envelope).expect("utf-8")).expect("json");
    (envelope, body)
}

fn stat(envelope: &Json, field: &str) -> u64 {
    envelope
        .get("stats")
        .and_then(|s| s.u64_field(field))
        .unwrap_or_else(|| panic!("envelope stats missing `{field}`"))
}

#[test]
fn concurrent_clients_receive_batch_identical_bodies_at_every_job_count() {
    let src = leaky(0xA5, "");
    let req = analyze_request(&src);
    let batch = batch_canonical(&req);
    for jobs in [1usize, 4] {
        let options = ServerOptions {
            jobs,
            ..ServerOptions::default()
        };
        let ((), served) = with_server(options, |addr| {
            thread::scope(|scope| {
                for _ in 0..4 {
                    let req = req.clone();
                    let batch = batch.as_str();
                    scope.spawn(move || {
                        let mut client = Client::connect(addr).expect("connect");
                        let (envelope, body) = client.roundtrip(&req).expect("roundtrip");
                        assert!(envelope.ok, "analyze failed: {}", envelope.error);
                        assert!(envelope.violations > 0, "the leaky design must violate");
                        assert_eq!(
                            std::str::from_utf8(&body).expect("utf-8"),
                            batch,
                            "jobs={jobs}: served body diverged from batch canonical JSON"
                        );
                    });
                }
            });
        });
        assert_eq!(served, 4, "jobs={jobs}: all four analyses must be counted");
    }
}

#[test]
fn single_module_edit_reextracts_only_that_module_over_the_wire() {
    let v1 = leaky(0xA5, "");
    let v2 = leaky(0x3C, ""); // only module `ip` changes
    let ((), _) = with_server(ServerOptions::default(), |addr| {
        let (cold, _) = raw_roundtrip(addr, &analyze_request(&v1));
        assert_eq!(stat(&cold, "modules_reparsed"), 2);
        assert_eq!(stat(&cold, "modules_reextracted"), 2);

        let (warm, body) = raw_roundtrip(addr, &analyze_request(&v2));
        assert_eq!(stat(&warm, "modules_reparsed"), 1, "only `ip` was edited");
        assert_eq!(
            stat(&warm, "modules_reextracted"),
            1,
            "only `ip` re-extracts"
        );
        assert_eq!(
            std::str::from_utf8(&body).expect("utf-8"),
            batch_canonical(&analyze_request(&v2)),
            "warm incremental body diverged from cold batch"
        );

        // Identical repeat: served straight from the report tier.
        let (repeat, _) = raw_roundtrip(addr, &analyze_request(&v2));
        assert_eq!(
            repeat
                .get("stats")
                .and_then(|s| s.get("report_cache_hit"))
                .and_then(Json::as_bool),
            Some(true)
        );
        assert_eq!(stat(&repeat, "targets_rerun"), 0);
    });
}

#[test]
fn status_reports_counters_and_cache_tiers() {
    let src = leaky(0xA5, "");
    let ((), served) = with_server(ServerOptions::default(), |addr| {
        let mut client = Client::connect(addr).expect("connect");
        let (envelope, _) = client.roundtrip(&analyze_request(&src)).expect("analyze");
        assert!(envelope.ok);
        let (envelope, body) = client.roundtrip(&Request::new("status")).expect("status");
        assert!(envelope.ok);
        assert_eq!(envelope.kind, "status");
        let status = Json::parse(std::str::from_utf8(&body).expect("utf-8")).expect("json");
        let counters = status.get("counters").expect("counters");
        assert_eq!(counters.u64_field("requests"), Some(1));
        let tiers = status.get("tiers").expect("tiers");
        assert_eq!(tiers.u64_field("parse"), Some(2), "both modules cached");
        assert_eq!(tiers.u64_field("design"), Some(1));
        assert_eq!(tiers.u64_field("report"), Some(1));
    });
    assert_eq!(served, 1, "status requests are not analysis requests");
}

#[test]
fn lint_bodies_match_the_batch_linter_byte_for_byte() {
    let src = leaky(0xA5, "");
    let batch = {
        let report = soccar_lint::Linter::new()
            .lint_source("t.v", &src)
            .expect("batch lint");
        soccar::json::to_json_pretty(&report).expect("encode")
    };
    let ((), _) = with_server(ServerOptions::default(), |addr| {
        let mut client = Client::connect(addr).expect("connect");
        let mut req = Request::new("lint");
        req.file_name = "t.v".to_owned();
        req.source = src.clone();
        let (envelope, body) = client.roundtrip(&req).expect("lint");
        assert!(envelope.ok, "lint failed: {}", envelope.error);
        assert_eq!(std::str::from_utf8(&body).expect("utf-8"), batch);

        let mut bad = Request::new("lint");
        bad.source = src.clone();
        bad.deny = vec!["no-such-rule".to_owned()];
        let (envelope, _) = client.roundtrip(&bad).expect("roundtrip");
        assert!(!envelope.ok, "unknown rules must be rejected");
    });
}

#[test]
fn malformed_and_invalid_requests_get_error_envelopes_not_hangups() {
    let ((), _) = with_server(ServerOptions::default(), |addr| {
        // Invalid request on a connection that then keeps working.
        let mut client = Client::connect(addr).expect("connect");
        let no_top = {
            let mut req = Request::new("analyze");
            req.source = "module top(input clk); endmodule".to_owned();
            req
        };
        let (envelope, body) = client.roundtrip(&no_top).expect("roundtrip");
        assert!(!envelope.ok);
        assert!(envelope.error.contains("top"));
        assert!(body.is_empty());
        let (envelope, _) = client.roundtrip(&Request::new("status")).expect("status");
        assert!(envelope.ok, "connection must survive a request error");

        // A raw garbage frame still gets a well-formed error envelope.
        let mut stream = TcpStream::connect(addr).expect("connect");
        write_frame(&mut stream, b"not json").expect("send");
        let envelope = read_frame(&mut stream).expect("read").expect("frame");
        let envelope = Json::parse(std::str::from_utf8(&envelope).expect("utf-8")).expect("json");
        assert_eq!(envelope.get("ok").and_then(Json::as_bool), Some(false));

        // QoS knobs ride along per-request without poisoning the cache:
        // a budgeted request and the default request are distinct keys.
        let src = leaky(0xA5, "");
        let mut budgeted = analyze_request(&src);
        budgeted.solver_budget = Some(100_000);
        let (envelope, _) = raw_roundtrip(addr, &budgeted);
        assert_eq!(envelope.get("ok").and_then(Json::as_bool), Some(true));
        let (envelope, _) = raw_roundtrip(addr, &analyze_request(&src));
        assert_eq!(
            envelope
                .get("stats")
                .and_then(|s| s.get("report_cache_hit"))
                .and_then(Json::as_bool),
            Some(false),
            "different solver budgets must not share a report-cache entry"
        );
    });
}

#[test]
fn bundled_soc_requests_match_batch_catalog_analysis() {
    let mut req = Request::new("analyze");
    req.soc = "clustersoc".to_owned();
    req.cycles = Some(12);
    req.rounds = Some(4);
    let batch = batch_canonical(&req);
    let ((), _) = with_server(ServerOptions::default(), |addr| {
        let mut client = Client::connect(addr).expect("connect");
        let (envelope, body) = client.roundtrip(&req).expect("roundtrip");
        assert!(envelope.ok, "soc analyze failed: {}", envelope.error);
        assert_eq!(std::str::from_utf8(&body).expect("utf-8"), batch);
        // Warm repeat is a pure report-tier hit.
        let (envelope, body) = raw_roundtrip(addr, &req);
        assert_eq!(
            envelope
                .get("stats")
                .and_then(|s| s.get("report_cache_hit"))
                .and_then(Json::as_bool),
            Some(true)
        );
        assert_eq!(std::str::from_utf8(&body).expect("utf-8"), batch);
    });
}

#[test]
fn generated_soc_requests_match_batch_catalog_analysis() {
    let mut req = Request::new("analyze");
    req.soc = "gen:5:1".to_owned();
    req.cycles = Some(10);
    req.rounds = Some(3);
    let batch = batch_canonical(&req);
    let ((), _) = with_server(ServerOptions::default(), |addr| {
        let mut client = Client::connect(addr).expect("connect");
        let (envelope, body) = client.roundtrip(&req).expect("roundtrip");
        assert!(envelope.ok, "gen analyze failed: {}", envelope.error);
        assert_eq!(
            std::str::from_utf8(&body).expect("utf-8"),
            batch,
            "served gen design diverged from batch canonical JSON"
        );
        // Warm repeat is a pure report-tier hit, same bytes.
        let (envelope, body) = raw_roundtrip(addr, &req);
        assert_eq!(
            envelope
                .get("stats")
                .and_then(|s| s.get("report_cache_hit"))
                .and_then(Json::as_bool),
            Some(true)
        );
        assert_eq!(std::str::from_utf8(&body).expect("utf-8"), batch);
    });
}

#[test]
fn generated_module_edit_reextracts_only_that_module() {
    let spec = soccar_soc::GenSpec { seed: 5, scale: 1 };
    let soc = soccar_soc::generate::generate(&spec);
    let modules = u64::from(soc.manifest.modules);
    // Edit exactly one generated module: a dead wire inside the
    // cluster's test gate, right before its `endmodule`.
    let gate = soc.source.find("module tst_gate_c0").expect("gate module");
    let end = gate + soc.source[gate..].find("endmodule").expect("endmodule");
    let mut edited = soc.source.clone();
    edited.insert_str(end, "  wire gen_probe;\n");

    let request = |source: &str| {
        let mut req = Request::new("analyze");
        req.file_name = "gen_5_1.v".to_owned();
        req.source = source.to_owned();
        req.top = soc.top.clone();
        req.cycles = Some(8);
        req.rounds = Some(2);
        req
    };
    let ((), _) = with_server(ServerOptions::default(), |addr| {
        let (cold, _) = raw_roundtrip(addr, &request(&soc.source));
        assert_eq!(
            stat(&cold, "modules_reparsed"),
            modules,
            "cold run parses the whole generated design"
        );
        let (warm, _) = raw_roundtrip(addr, &request(&edited));
        assert_eq!(
            stat(&warm, "modules_reparsed"),
            1,
            "only the test gate was edited"
        );
        assert_eq!(
            stat(&warm, "modules_reextracted"),
            1,
            "only the test gate re-extracts"
        );
    });
}

/// `SoccarConfig::default()` derives worker count from `SOCCAR_JOBS` when
/// `jobs == 0`, so this whole suite doubles as a determinism check under
/// `SOCCAR_JOBS=1` and `SOCCAR_JOBS=4` (CI runs both).
#[test]
fn server_respects_the_jobs_environment_contract() {
    let src = leaky(0x77, "");
    let req = analyze_request(&src);
    let batch = batch_canonical(&req);
    let options = ServerOptions {
        jobs: 0,
        ..ServerOptions::default()
    };
    let ((), _) = with_server(options, |addr| {
        let mut client = Client::connect(addr).expect("connect");
        let (envelope, body) = client.roundtrip(&req).expect("roundtrip");
        assert!(envelope.ok);
        assert_eq!(std::str::from_utf8(&body).expect("utf-8"), batch);
    });
}
