//! **Detection results** — the Section V-C evaluation: SoCCAR run on all
//! five bug-seeded variants, scored red-team/blue-team style.
//!
//! Paper outcome being reproduced: every bug detected in every ClusterSoC
//! variant; in AutoSoC all bugs except the SHA256 information-leakage bug
//! of Variant #2; verification time "a few seconds".
//!
//! The five runs are independent and fan out across the worker pool
//! (`--jobs <n>`, default `$SOCCAR_JOBS` or all cores); the table is
//! identical for every job count. `--compare-jobs` additionally runs the
//! sweep serially first and reports the parallel speedup.

use std::time::{Duration, Instant};

use soccar::evaluation::{render_outcomes, VariantEvaluation};
use soccar_bench::{bench_args, evaluate_all_variants, render_table};

fn main() {
    let args = bench_args();
    let jobs = soccar_exec::resolve_jobs(Some(args.jobs));

    let serial = args.compare_jobs.then(|| timed(1));
    let (evals, stats, elapsed) = timed(jobs);

    let mut rows = Vec::new();
    let mut details = String::new();
    for eval in &evals {
        details.push_str(&render_outcomes(eval));
        details.push('\n');
        rows.push(vec![
            eval.variant.clone(),
            format!("{}/{}", eval.detected(), eval.outcomes.len()),
            eval.false_alarms.len().to_string(),
            format!("{:.2}", eval.verification_time().as_secs_f64()),
            expected(&eval.variant),
        ]);
    }
    println!("Detection results (Section V-C, Explicit governor analysis)");
    println!(
        "{}",
        render_table(
            &[
                "Variant",
                "Detected",
                "False alarms",
                "Seconds",
                "Paper expectation"
            ],
            &rows
        )
    );
    println!("{details}");
    println!(
        "sweep: {} variants in {:.2}s with {} jobs ({:.0}% pool utilization)",
        stats.tasks,
        elapsed.as_secs_f64(),
        stats.jobs,
        stats.utilization() * 100.0
    );
    if let Some((serial_evals, _, serial_elapsed)) = serial {
        assert_eq!(
            serial_evals.len(),
            evals.len(),
            "serial and parallel sweeps cover the same variants"
        );
        println!(
            "compare: serial {:.2}s vs {} jobs {:.2}s — {:.2}x speedup",
            serial_elapsed.as_secs_f64(),
            jobs,
            elapsed.as_secs_f64(),
            serial_elapsed.as_secs_f64() / elapsed.as_secs_f64().max(1e-9)
        );
    }
}

fn timed(jobs: usize) -> (Vec<VariantEvaluation>, soccar_exec::PoolStats, Duration) {
    let t = Instant::now();
    let (evals, stats) = evaluate_all_variants(jobs);
    (evals, stats, t.elapsed())
}

fn expected(variant: &str) -> String {
    if variant == "AutoSoC Variant #2" {
        "all but the SHA256 leak".to_owned()
    } else {
        "all detected".to_owned()
    }
}
