//! The red-team/blue-team evaluation harness (Section V-C).
//!
//! The red team's artifacts live in `soccar-soc` (benchmark generation and
//! bug insertion); the blue team's tool is the [`crate::Soccar`] pipeline.
//! The only shared information is the *security regression* — the checks
//! shipped with the base SoCs — exactly as the paper stipulates ("no
//! communication was made between the red to blue team regarding the
//! description of bugs").
//!
//! Detection scoring happens post-hoc: a bug counts as detected when at
//! least one of its expected detector checks produced an invalidation
//! message.

use std::time::Duration;

use serde::Serialize;
use soccar_concolic::{PropertyKind, SecurityProperty};
use soccar_rtl::LogicVec;
use soccar_soc::{
    expected_detectors, security_checks, symbolic_inputs, CheckKind, CheckSpec, SocModel,
    VariantSpec,
};

use crate::error::SoccarError;
use crate::pipeline::{AnalysisReport, Soccar, SoccarConfig};

/// Converts a neutral [`CheckSpec`] into a concolic [`SecurityProperty`].
#[must_use]
pub fn property_of(check: &CheckSpec) -> SecurityProperty {
    let kind = match &check.kind {
        CheckKind::SecretCleared { signal, width } => PropertyKind::ClearedAfterReset {
            domain: check.domain.clone(),
            signal: signal.clone(),
            expected: LogicVec::zeros(*width),
            window: 0,
        },
        CheckKind::GuardArmed { signal } => PropertyKind::AssertedAfterReset {
            domain: check.domain.clone(),
            signal: signal.clone(),
            window: 0,
        },
        CheckKind::LegalValues {
            signal,
            width,
            allowed,
        } => PropertyKind::AlwaysOneOf {
            signal: signal.clone(),
            allowed: allowed
                .iter()
                .map(|v| LogicVec::from_u64(*width, *v))
                .collect(),
        },
        CheckKind::NeverFlagged { signal } => PropertyKind::AlwaysOneOf {
            signal: signal.clone(),
            allowed: vec![LogicVec::zeros(1)],
        },
    };
    SecurityProperty {
        name: check.name.clone(),
        module: check.module.clone(),
        kind,
    }
}

/// The outcome for one inserted bug.
#[derive(Debug, Clone, Serialize)]
pub struct BugOutcome {
    /// Violation class (Table III wording).
    pub violation: String,
    /// Target IP.
    pub ip: String,
    /// Whether the implicit-governor construct was used.
    pub implicit: bool,
    /// Whether any expected detector fired.
    pub detected: bool,
    /// The detector checks that fired.
    pub fired: Vec<String>,
}

/// The evaluation of one SoC variant.
#[derive(Debug)]
pub struct VariantEvaluation {
    /// Variant display name.
    pub variant: String,
    /// Per-bug outcomes.
    pub outcomes: Vec<BugOutcome>,
    /// Violations that map to no inserted bug (false alarms).
    pub false_alarms: Vec<String>,
    /// The underlying pipeline report.
    pub report: AnalysisReport,
}

impl VariantEvaluation {
    /// Bugs detected.
    #[must_use]
    pub fn detected(&self) -> usize {
        self.outcomes.iter().filter(|o| o.detected).count()
    }

    /// Bugs missed.
    #[must_use]
    pub fn missed(&self) -> usize {
        self.outcomes.len() - self.detected()
    }

    /// Verification wall-clock time.
    #[must_use]
    pub fn verification_time(&self) -> Duration {
        self.report.total
    }
}

/// Runs the blue-team tool on one red-team variant and scores detection.
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn evaluate_variant(
    spec: &VariantSpec,
    config: SoccarConfig,
) -> Result<VariantEvaluation, SoccarError> {
    let design = soccar_soc::generate(spec.soc, Some(spec.number));
    let checks = security_checks(spec.soc);
    let properties: Vec<SecurityProperty> = checks.iter().map(property_of).collect();
    let mut config = config;
    config.concolic.symbolic_inputs = symbolic_inputs(spec.soc);
    let soccar = Soccar::new(config);
    let report = soccar.analyze("soc.v", &design.source, &design.top, properties)?;
    Ok(score(spec, report))
}

/// Scores a finished report against the variant's bug list.
#[must_use]
pub fn score(spec: &VariantSpec, report: AnalysisReport) -> VariantEvaluation {
    let fired: Vec<String> = report
        .concolic
        .violations
        .iter()
        .map(|v| v.property.clone())
        .collect();
    let mut outcomes = Vec::new();
    let mut explained: Vec<String> = Vec::new();
    for bug in &spec.bugs {
        let detectors = expected_detectors(spec.soc, bug);
        let hit: Vec<String> = detectors
            .iter()
            .filter(|d| fired.contains(d))
            .cloned()
            .collect();
        explained.extend(detectors.iter().cloned());
        outcomes.push(BugOutcome {
            violation: bug.violation.to_string(),
            ip: bug.ip.clone(),
            implicit: bug.implicit,
            detected: !hit.is_empty(),
            fired: hit,
        });
    }
    let false_alarms = fired
        .into_iter()
        .filter(|f| !explained.contains(f))
        .collect();
    VariantEvaluation {
        variant: spec.name(),
        outcomes,
        false_alarms,
        report,
    }
}

/// Convenience: the clean baseline must produce zero violations.
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn evaluate_clean(
    model: SocModel,
    config: SoccarConfig,
) -> Result<AnalysisReport, SoccarError> {
    let design = soccar_soc::generate(model, None);
    let checks = security_checks(model);
    let properties: Vec<SecurityProperty> = checks.iter().map(property_of).collect();
    let mut config = config;
    config.concolic.symbolic_inputs = symbolic_inputs(model);
    let soccar = Soccar::new(config);
    soccar.analyze("soc.v", &design.source, &design.top, properties)
}

/// Recall scoring of a generated design against its ground-truth
/// manifest (the stress tier's oracle).
#[derive(Debug, Clone, Serialize)]
pub struct GeneratedRecall {
    /// Bugs in the manifest.
    pub total: usize,
    /// Bugs whose expected stage reported them.
    pub detected: usize,
    /// Rendered manifest entries of missed bugs, ready for a test
    /// failure message (each carries the seed for reproduction).
    pub missed: Vec<String>,
    /// Violations that map to no manifest detector.
    pub false_alarms: usize,
}

/// One generated-design evaluation: the report plus its recall score.
#[derive(Debug)]
pub struct GeneratedEvaluation {
    /// Ground truth.
    pub manifest: soccar_soc::Manifest,
    /// Recall against the manifest.
    pub recall: GeneratedRecall,
    /// The underlying pipeline report.
    pub report: AnalysisReport,
}

/// Scores a finished report against a generated design's manifest.
///
/// A bug counts as detected when one of its expected detector checks
/// was violated, or — for `lint`-stage (implicit-governor) bugs — when
/// the lint pre-pass flagged its module.
#[must_use]
pub fn score_generated(
    manifest: &soccar_soc::Manifest,
    report: &AnalysisReport,
) -> GeneratedRecall {
    let fired: Vec<&str> = report
        .concolic
        .violations
        .iter()
        .map(|v| v.property.as_str())
        .collect();
    let lint_flagged: Vec<&str> = report
        .lint
        .diagnostics
        .iter()
        .filter(|d| d.rule == "implicit-governor")
        .map(|d| d.module.as_str())
        .collect();
    let mut detected = 0;
    let mut missed = Vec::new();
    let mut explained: Vec<&str> = Vec::new();
    for bug in &manifest.bugs {
        explained.extend(bug.detectors.iter().map(String::as_str));
        let hit = bug.detectors.iter().any(|d| fired.contains(&d.as_str()))
            || (bug.stage == soccar_soc::DetectionStage::Lint
                && lint_flagged.contains(&bug.module.as_str()));
        if hit {
            detected += 1;
        } else {
            missed.push(format!(
                "{} (seed {}): {}",
                manifest.name,
                manifest.seed,
                bug.describe()
            ));
        }
    }
    let false_alarms = fired.iter().filter(|f| !explained.contains(f)).count();
    GeneratedRecall {
        total: manifest.bugs.len(),
        detected,
        missed,
        false_alarms,
    }
}

/// Runs the pipeline on a generated design and scores recall against
/// its manifest.
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn evaluate_generated(
    spec: &soccar_soc::GenSpec,
    config: SoccarConfig,
) -> Result<GeneratedEvaluation, SoccarError> {
    evaluate_generated_traced(spec, config, soccar_obs::Recorder::disabled())
}

/// [`evaluate_generated`] with an observability recorder attached, so
/// callers (the bench stress tier) can gate on the pipeline's span and
/// counter stream — e.g. `smt.queries` counts *every* real solver call
/// including the speculative flip solves the report's `solver_calls`
/// field deliberately excludes.
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn evaluate_generated_traced(
    spec: &soccar_soc::GenSpec,
    config: SoccarConfig,
    recorder: soccar_obs::Recorder,
) -> Result<GeneratedEvaluation, SoccarError> {
    let gen = soccar_soc::generate::generate(spec);
    let properties: Vec<SecurityProperty> = gen.checks.iter().map(property_of).collect();
    let mut config = config;
    config.concolic.symbolic_inputs = gen.symbolic.clone();
    let soccar = Soccar::new(config).with_recorder(recorder);
    let file_name = format!("{}.v", gen.slug);
    let report = soccar.analyze(&file_name, &gen.source, &gen.top, properties)?;
    let recall = score_generated(&gen.manifest, &report);
    Ok(GeneratedEvaluation {
        manifest: gen.manifest,
        recall,
        report,
    })
}

/// Sanity helper for tests: a bug outcome table as text.
#[must_use]
pub fn render_outcomes(eval: &VariantEvaluation) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{}", eval.variant);
    for o in &eval.outcomes {
        let _ = writeln!(
            out,
            "  [{}] {} @ {}{} — fired: {}",
            if o.detected { "DETECTED" } else { "MISSED" },
            o.violation,
            o.ip,
            if o.implicit { " (implicit)" } else { "" },
            if o.fired.is_empty() {
                "-".to_owned()
            } else {
                o.fired.join(", ")
            }
        );
    }
    if !eval.false_alarms.is_empty() {
        let _ = writeln!(out, "  false alarms: {}", eval.false_alarms.join(", "));
    }
    out
}

/// A bug outcome list for an entire evaluation campaign.
#[derive(Debug, Default, Serialize)]
pub struct Campaign {
    /// Variant name → (detected, total, seconds).
    pub rows: Vec<CampaignRow>,
}

/// One row of the detection-results table.
#[derive(Debug, Clone, Serialize)]
pub struct CampaignRow {
    /// Variant name.
    pub variant: String,
    /// Bugs detected.
    pub detected: usize,
    /// Bugs inserted.
    pub total: usize,
    /// False alarms.
    pub false_alarms: usize,
    /// Verification seconds.
    pub seconds: f64,
}

impl Campaign {
    /// Adds one evaluation.
    pub fn push(&mut self, eval: &VariantEvaluation) {
        self.rows.push(CampaignRow {
            variant: eval.variant.clone(),
            detected: eval.detected(),
            total: eval.outcomes.len(),
            false_alarms: eval.false_alarms.len(),
            seconds: eval.verification_time().as_secs_f64(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soccar_cfg::GovernorAnalysis;
    use soccar_concolic::ConcolicConfig;
    use soccar_sim::InitPolicy;

    fn fast_config(analysis: GovernorAnalysis) -> SoccarConfig {
        SoccarConfig {
            analysis,
            concolic: ConcolicConfig {
                cycles: 10,
                max_rounds: 3,
                sweep_stride: 3,
                init: InitPolicy::Ones,
                ..ConcolicConfig::default()
            },
            ..SoccarConfig::default()
        }
    }

    #[test]
    fn property_conversion_shapes() {
        let checks = security_checks(SocModel::ClusterSoc);
        for c in &checks {
            let p = property_of(c);
            assert_eq!(p.name, c.name);
            assert_eq!(p.module, c.module);
        }
    }

    #[test]
    fn cluster_variant2_detects_both_bugs() {
        let spec = soccar_soc::variant(SocModel::ClusterSoc, 2).expect("variant");
        let eval =
            evaluate_variant(&spec, fast_config(GovernorAnalysis::Explicit)).expect("evaluate");
        assert_eq!(eval.outcomes.len(), 2);
        assert_eq!(eval.detected(), 2, "{}", render_outcomes(&eval));
        assert!(eval.false_alarms.is_empty(), "{}", render_outcomes(&eval));
    }

    #[test]
    fn generated_design_bugs_are_recalled() {
        let spec = soccar_soc::GenSpec { seed: 29, scale: 2 };
        let eval =
            evaluate_generated(&spec, fast_config(GovernorAnalysis::Explicit)).expect("evaluate");
        assert!(eval.recall.total >= 1, "sweep designs always carry a bug");
        assert_eq!(
            eval.recall.detected, eval.recall.total,
            "missed: {:#?}",
            eval.recall.missed
        );
        assert_eq!(eval.recall.false_alarms, 0);
    }

    #[test]
    fn clean_cluster_produces_no_violations() {
        let report = evaluate_clean(
            SocModel::ClusterSoc,
            fast_config(GovernorAnalysis::Explicit),
        )
        .expect("clean");
        assert!(
            report.violations().is_empty(),
            "violations: {:?}",
            report.violations()
        );
    }
}
