// Negative: every register the operational arm touches is also cleared by
// the reset arm — the reset domain is complete.
module eng(input clk, input rst_n, input [7:0] k, input start,
           output reg [7:0] key_reg, output reg busy);
  always @(posedge clk or negedge rst_n)
    if (!rst_n) begin
      busy <= 1'b0;
      key_reg <= 8'd0;
    end else begin
      busy <= 1'b1;
      key_reg <= k;
    end
endmodule
