//! Crash-only guarantees, end to end with real subprocesses:
//!
//! * **kill-9 recovery** — SIGKILL a daemon mid-workload, restart it on
//!   the same `--cache-dir`, and the warm responses are byte-identical
//!   to the pre-crash daemon's (and to batch output), with the journal
//!   replay visible in `status`;
//! * **the port-file race** — a client launched *before* the daemon has
//!   written its port file polls instead of failing;
//! * **journal corruption** — a daemon restarted over a corrupted
//!   journal starts degraded (named reason), not dead.

use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_soccar");

/// A fast, cacheable analyze workload (identical flags everywhere so
/// every daemon computes the same cache entry).
const WORKLOAD: &[&str] = &[
    "analyze",
    "--soc",
    "clustersoc",
    "--cycles",
    "8",
    "--rounds",
    "2",
];

struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    fn spawn(extra: &[&str]) -> Daemon {
        let mut child = Command::new(BIN)
            .args(["serve", "--listen", "127.0.0.1:0"])
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn soccar serve");
        let stdout = child.stdout.take().expect("daemon stdout");
        let mut lines = BufReader::new(stdout).lines();
        let first = lines
            .next()
            .expect("daemon printed nothing")
            .expect("read daemon stdout");
        let addr = first
            .strip_prefix("soccar-serve listening on ")
            .unwrap_or_else(|| panic!("unexpected banner: {first}"))
            .to_owned();
        Daemon { child, addr }
    }

    fn client(&self, args: &[&str]) -> std::process::Output {
        Command::new(BIN)
            .args(["client", "--connect", &self.addr])
            .args(args)
            .output()
            .expect("run soccar client")
    }

    /// SIGKILL — no shutdown handshake, no flush opportunity.
    fn kill9(&mut self) {
        self.child.kill().expect("SIGKILL daemon");
        self.child.wait().expect("reap daemon");
    }

    fn shutdown(mut self) {
        let out = self.client(&["shutdown"]);
        assert!(
            out.status.success(),
            "shutdown client failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            match self.child.try_wait().expect("try_wait") {
                Some(status) => {
                    assert!(status.success(), "daemon exited with {status}");
                    return;
                }
                None if Instant::now() > deadline => {
                    self.child.kill().ok();
                    panic!("daemon did not exit within 30s of shutdown — orphan process");
                }
                None => std::thread::sleep(Duration::from_millis(50)),
            }
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.child.kill().ok();
    }
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("soccar-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn kill9_then_restart_serves_byte_identical_warm_responses() {
    let cache = scratch_dir("kill9");
    let cache_arg = cache.to_str().expect("utf-8 path").to_owned();

    // Uninterrupted daemon: establishes the reference bytes and leaves
    // the journal behind.
    let mut daemon = Daemon::spawn(&["--cache-dir", &cache_arg]);
    let reference = daemon.client(WORKLOAD);
    assert!(
        !reference.stdout.is_empty(),
        "reference analyze failed: {}",
        String::from_utf8_lossy(&reference.stderr)
    );
    // Warm check against the same process — this is what "pre-crash
    // daemon behavior" means below.
    let warm_before = daemon.client(WORKLOAD);
    assert_eq!(warm_before.stdout, reference.stdout);

    // Kill mid-workload: start an (uncached, never-journaled) request
    // and SIGKILL while it is in flight. Full default cycles/rounds so
    // it cannot finish — and be journaled — before the kill lands.
    let addr = daemon.addr.clone();
    let in_flight = std::thread::spawn(move || {
        Command::new(BIN)
            .args(["client", "--connect", &addr])
            .args(["analyze", "--soc", "gen:3:2"])
            .output()
            .expect("run in-flight client")
    });
    std::thread::sleep(Duration::from_millis(100));
    daemon.kill9();
    drop(daemon);
    // The interrupted client fails however far it got; it must not hang.
    let _ = in_flight.join().expect("in-flight client finished");

    // Restart on the same cache dir: replay makes the cache warm again.
    let revived = Daemon::spawn(&["--cache-dir", &cache_arg]);
    let warm_after = revived.client(WORKLOAD);
    assert_eq!(
        warm_after.stdout,
        reference.stdout,
        "post-crash warm response diverged from the pre-crash daemon (stderr: {})",
        String::from_utf8_lossy(&warm_after.stderr)
    );
    assert_eq!(warm_after.status.code(), reference.status.code());

    let status = revived.client(&["status"]);
    let text = String::from_utf8_lossy(&status.stdout);
    assert!(text.contains("\"enabled\": true"), "status: {text}");
    assert!(text.contains("\"replayed\": 1"), "status: {text}");
    // The replayed request warmed the report tier, so the client's
    // request above was a cache hit, not a recompute.
    assert!(text.contains("\"cache_hits\": 1"), "status: {text}");

    revived.shutdown();
    std::fs::remove_dir_all(&cache).ok();
}

#[test]
fn client_launched_before_the_daemon_wins_the_port_file_race() {
    let dir = scratch_dir("race");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let port_file = dir.join("port");
    let port_arg = port_file.to_str().expect("utf-8 path").to_owned();

    // The client starts first — the port file does not exist yet.
    let client_port_arg = port_arg.clone();
    let racing_client = std::thread::spawn(move || {
        Command::new(BIN)
            .args(["client", "--port-file", &client_port_arg, "status"])
            .output()
            .expect("run racing client")
    });
    std::thread::sleep(Duration::from_millis(300));
    let daemon = Daemon::spawn(&["--port-file", &port_arg]);

    let out = racing_client.join().expect("racing client finished");
    assert!(
        out.status.success(),
        "client lost the port-file race: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("\"uptime_ms\""),
        "racing client got a real status body"
    );

    daemon.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupted_journal_degrades_startup_instead_of_failing_it() {
    let cache = scratch_dir("corrupt");
    let cache_arg = cache.to_str().expect("utf-8 path").to_owned();

    let daemon = Daemon::spawn(&["--cache-dir", &cache_arg]);
    let reference = daemon.client(WORKLOAD);
    assert!(!reference.stdout.is_empty());
    daemon.shutdown();

    // Bit-flip the tail of the journal — a torn write's aftermath.
    let journal = cache.join("journal.soccar");
    let mut bytes = std::fs::read(&journal).expect("journal exists");
    let last = bytes.len() - 1;
    bytes[last] ^= 0xff;
    std::fs::write(&journal, &bytes).expect("corrupt journal");

    // The daemon still starts (the banner parse inside spawn proves it),
    // reports the loss in status, and still serves correct bytes.
    let revived = Daemon::spawn(&["--cache-dir", &cache_arg]);
    let status = revived.client(&["status"]);
    let text = String::from_utf8_lossy(&status.stdout);
    assert!(text.contains("\"skipped\": 1"), "status: {text}");
    assert!(text.contains("checksum mismatch"), "status: {text}");
    let cold = revived.client(WORKLOAD);
    assert_eq!(
        cold.stdout, reference.stdout,
        "a degraded daemon must still serve byte-identical reports"
    );
    revived.shutdown();
    std::fs::remove_dir_all(&cache).ok();
}
