//! Per-rule positive/negative fixture tests, driven through the real
//! frontend (`Linter::lint_source` parses each fixture with the
//! `soccar-rtl` parser — no hand-built ASTs).

use soccar_lint::{LintReport, Linter, Severity};

fn lint(name: &str, source: &str) -> LintReport {
    Linter::new()
        .lint_source(name, source)
        .expect("fixture parses")
}

fn fires(report: &LintReport, rule: &str) -> bool {
    report.diagnostics.iter().any(|d| d.rule == rule)
}

macro_rules! fixture_case {
    ($pos:ident, $neg:ident, $rule:literal, $pos_file:literal, $neg_file:literal) => {
        #[test]
        fn $pos() {
            let report = lint($pos_file, include_str!(concat!("fixtures/", $pos_file)));
            assert!(
                fires(&report, $rule),
                "expected `{}` to fire on {}; got: {:#?}",
                $rule,
                $pos_file,
                report.diagnostics
            );
        }

        #[test]
        fn $neg() {
            let report = lint($neg_file, include_str!(concat!("fixtures/", $neg_file)));
            assert!(
                !fires(&report, $rule),
                "expected `{}` NOT to fire on {}; got: {:#?}",
                $rule,
                $neg_file,
                report.diagnostics
            );
        }
    };
}

fixture_case!(
    async_unsync_fires_on_raw_reset,
    async_unsync_silent_on_synchronizer,
    "async-reset-unsynchronized",
    "async_unsync_pos.v",
    "async_unsync_neg.v"
);

fixture_case!(
    cross_domain_fires_on_domain_crossing,
    cross_domain_silent_on_same_domain,
    "reset-crosses-domains",
    "cross_domain_pos.v",
    "cross_domain_neg.v"
);

fixture_case!(
    comb_reset_fires_on_assign_driver,
    comb_reset_silent_on_registered_reset,
    "combinational-reset-gen",
    "comb_reset_pos.v",
    "comb_reset_neg.v"
);

fixture_case!(
    partial_domain_fires_on_uncleared_reg,
    partial_domain_silent_on_complete_reset,
    "partial-reset-domain",
    "partial_pos.v",
    "partial_neg.v"
);

fixture_case!(
    implicit_governor_fires_on_blind_spot,
    implicit_governor_silent_on_explicit_template,
    "implicit-governor",
    "implicit_pos.v",
    "implicit_neg.v"
);

fixture_case!(
    name_shadowing_fires_on_data_signal,
    name_shadowing_silent_on_real_resets,
    "reset-name-shadowing",
    "shadow_pos.v",
    "shadow_neg.v"
);

#[test]
fn cross_domain_finding_is_error_severity() {
    let report = lint(
        "cross_domain_pos.v",
        include_str!("fixtures/cross_domain_pos.v"),
    );
    let diag = report
        .diagnostics
        .iter()
        .find(|d| d.rule == "reset-crosses-domains")
        .expect("fires");
    assert_eq!(diag.severity, Severity::Error);
}

#[test]
fn partial_domain_names_the_missing_register() {
    let report = lint("partial_pos.v", include_str!("fixtures/partial_pos.v"));
    let diag = report
        .diagnostics
        .iter()
        .find(|d| d.rule == "partial-reset-domain" && d.severity == Severity::Error)
        .expect("fires at error severity");
    assert!(
        diag.message.contains("key_reg"),
        "message should name the uncleared register: {}",
        diag.message
    );
}
