//! Cross-crate property tests: the RTL simulator, the constant folder and
//! the concolic shadow must agree on expression semantics, and solver
//! models must drive the simulator to the predicted values.

use proptest::prelude::*;
use soccar_rtl::value::LogicVec;
use soccar_sim::{InitPolicy, Simulator};

#[derive(Debug, Clone, Copy)]
enum Op {
    Add,
    Sub,
    Mul,
    And,
    Or,
    Xor,
    Shl,
    Shr,
}

impl Op {
    fn verilog(self) -> &'static str {
        match self {
            Op::Add => "+",
            Op::Sub => "-",
            Op::Mul => "*",
            Op::And => "&",
            Op::Or => "|",
            Op::Xor => "^",
            Op::Shl => "<<",
            Op::Shr => ">>",
        }
    }

    fn apply(self, a: &LogicVec, b: &LogicVec) -> LogicVec {
        match self {
            Op::Add => a.add(b),
            Op::Sub => a.sub(b),
            Op::Mul => a.mul(b),
            Op::And => a.and(b),
            Op::Or => a.or(b),
            Op::Xor => a.xor(b),
            Op::Shl => a.shl(&b.resize(4)),
            Op::Shr => a.lshr(&b.resize(4)),
        }
    }
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::Add),
        Just(Op::Sub),
        Just(Op::Mul),
        Just(Op::And),
        Just(Op::Or),
        Just(Op::Xor),
        Just(Op::Shl),
        Just(Op::Shr),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A random expression compiled to Verilog, elaborated and simulated
    /// must equal the direct LogicVec evaluation.
    #[test]
    fn simulator_matches_logicvec_semantics(
        ops in proptest::collection::vec(op_strategy(), 1..4),
        a in 0u64..256,
        b in 0u64..256,
        c in 0u64..256,
    ) {
        // y = ((a OP0 b) OP1 c) OP2 a ... chained left-assoc, 8-bit.
        let mut expr = "ina".to_owned();
        let names = ["inb", "inc", "ina"];
        for (i, op) in ops.iter().enumerate() {
            let shift_amt = if matches!(op, Op::Shl | Op::Shr) {
                // Bound shift amounts to the low 4 bits for sanity.
                format!("({}[3:0])", names[i % 3])
            } else {
                names[i % 3].to_owned()
            };
            expr = format!("({expr} {} {shift_amt})", op.verilog());
        }
        let src = format!(
            "module t(input [7:0] ina, inb, inc, output [7:0] y);
               assign y = {expr};
             endmodule"
        );
        let (design, _) = soccar_rtl::compile("p.v", &src, "t").expect("compile");
        let mut sim = Simulator::concrete(&design, InitPolicy::X);
        let n = |s: &str| design.find_net(&format!("t.{s}")).expect("net");
        sim.write_input(n("ina"), LogicVec::from_u64(8, a)).expect("a");
        sim.write_input(n("inb"), LogicVec::from_u64(8, b)).expect("b");
        sim.write_input(n("inc"), LogicVec::from_u64(8, c)).expect("c");
        sim.settle().expect("settle");
        let got = sim.net_logic(n("y")).clone();

        // Direct evaluation.
        let va = LogicVec::from_u64(8, a);
        let vb = LogicVec::from_u64(8, b);
        let vc = LogicVec::from_u64(8, c);
        let vals = [&vb, &vc, &va];
        let mut expect = va.clone();
        for (i, op) in ops.iter().enumerate() {
            let rhs = if matches!(op, Op::Shl | Op::Shr) {
                vals[i % 3].slice(0, 4).resize(8)
            } else {
                (*vals[i % 3]).clone()
            };
            expect = op.apply(&expect, &rhs).resize(8);
        }
        prop_assert_eq!(got, expect.resize(8));
    }

    /// A register with an async clear must read the cleared value during
    /// any reset assertion, regardless of prior activity (the invariant
    /// the ClearedAfterReset monitor relies on).
    #[test]
    fn async_clear_invariant(
        activity in proptest::collection::vec(0u64..256, 1..8),
        pulse_at in 0usize..8,
    ) {
        let src = "module t(input clk, input rst_n, input [7:0] d, output reg [7:0] q);
             always @(posedge clk or negedge rst_n)
               if (!rst_n) q <= 8'd0; else q <= d;
           endmodule";
        let (design, _) = soccar_rtl::compile("p.v", src, "t").expect("compile");
        let mut sim = Simulator::concrete(&design, InitPolicy::Ones);
        let n = |s: &str| design.find_net(&format!("t.{s}")).expect("net");
        let clk = n("clk");
        sim.write_input(n("rst_n"), LogicVec::from_u64(1, 1)).expect("rst");
        sim.write_input(clk, LogicVec::from_u64(1, 0)).expect("clk");
        for (i, v) in activity.iter().enumerate() {
            sim.write_input(n("d"), LogicVec::from_u64(8, *v)).expect("d");
            sim.settle().expect("settle");
            sim.tick(clk).expect("tick");
            if i == pulse_at.min(activity.len() - 1) {
                sim.write_input(n("rst_n"), LogicVec::from_u64(1, 0)).expect("rst");
                sim.settle().expect("settle");
                prop_assert_eq!(sim.net_logic(n("q")).to_u64(), Some(0));
                sim.write_input(n("rst_n"), LogicVec::from_u64(1, 1)).expect("rst");
                sim.settle().expect("settle");
            }
        }
    }
}
