//! DMA engine: a bus-master copy engine with source/destination/length
//! registers and a transfer FSM. Part of the AutoSoC memory subsystem
//! (Table II classes it as a Memory IP).

use super::sram::MemoryBug;

/// Generates the DMA engine.
///
/// The engine copies `len` words from `src` to `dst` over its master port
/// when `go` pulses. Its descriptor registers sit behind the same
/// range-check idea as the SRAMs: a `desc_lock` register must be armed by
/// reset so stale descriptors cannot fire; the data-integrity bug clears
/// it instead.
#[must_use]
pub fn dma(bug: MemoryBug) -> String {
    let lock_reset = match bug {
        MemoryBug::None => "desc_lock <= 1'b1;",
        MemoryBug::RangeCheckLost => {
            "desc_lock <= 1'b0; // BUG(data-integrity): descriptor lock lost"
        }
    };
    format!(
        "module dma_engine(
  input clk,
  input rst_n,
  input go,
  input unlock,
  input [31:0] src,
  input [31:0] dst,
  input [7:0] len,
  output reg [31:0] bus_addr,
  output reg [31:0] bus_wdata,
  input [31:0] bus_rdata,
  output reg bus_we,
  output reg bus_stb,
  input bus_ack,
  output reg busy,
  output reg desc_lock
);
  localparam IDLE = 2'd0;
  localparam RD   = 2'd1;
  localparam WR   = 2'd2;
  reg [1:0] state;
  reg [31:0] cur_src;
  reg [31:0] cur_dst;
  reg [7:0] remaining;
  reg [31:0] hold;

  always @(posedge clk or negedge rst_n)
    if (!rst_n) begin
      state <= IDLE;
      busy <= 1'b0;
      bus_stb <= 1'b0;
      bus_we <= 1'b0;
      bus_addr <= 32'd0;
      bus_wdata <= 32'd0;
      cur_src <= 32'd0;
      cur_dst <= 32'd0;
      remaining <= 8'd0;
      hold <= 32'd0;
      {lock_reset}
    end else begin
      case (state)
        IDLE: begin
          bus_stb <= 1'b0;
          bus_we <= 1'b0;
          if (go & (~desc_lock | unlock) & (len != 8'd0)) begin
            cur_src <= src;
            cur_dst <= dst;
            remaining <= len;
            busy <= 1'b1;
            state <= RD;
          end else busy <= 1'b0;
        end
        RD: begin
          bus_addr <= cur_src;
          bus_we <= 1'b0;
          bus_stb <= 1'b1;
          if (bus_ack) begin
            hold <= bus_rdata;
            bus_stb <= 1'b0;
            state <= WR;
          end
        end
        WR: begin
          bus_addr <= cur_dst;
          bus_wdata <= hold;
          bus_we <= 1'b1;
          bus_stb <= 1'b1;
          if (bus_ack) begin
            bus_stb <= 1'b0;
            bus_we <= 1'b0;
            cur_src <= cur_src + 32'd4;
            cur_dst <= cur_dst + 32'd4;
            remaining <= remaining - 8'd1;
            if (remaining == 8'd1) begin
              busy <= 1'b0;
              state <= IDLE;
            end else state <= RD;
          end
        end
        default: state <= IDLE;
      endcase
    end
endmodule
",
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use soccar_rtl::value::LogicVec;
    use soccar_sim::{InitPolicy, Simulator};

    fn sim_dma(bug: MemoryBug, unlock: bool) -> bool {
        // Returns whether a transfer started after reset without unlock.
        let d = soccar_rtl::compile("dma.v", &dma(bug), "dma_engine")
            .unwrap_or_else(|e| panic!("{e}"))
            .0;
        let mut sim = Simulator::concrete(&d, InitPolicy::Ones);
        let n = |s: &str| d.find_net(&format!("dma_engine.{s}")).expect("net");
        let clk = n("clk");
        for (sig, w) in [
            ("go", 1u32),
            ("unlock", 1),
            ("src", 32),
            ("dst", 32),
            ("len", 8),
            ("bus_rdata", 32),
            ("bus_ack", 1),
        ] {
            sim.write_input(n(sig), LogicVec::zeros(w)).expect("in");
        }
        sim.write_input(clk, LogicVec::from_u64(1, 0)).expect("clk");
        sim.write_input(n("rst_n"), LogicVec::from_u64(1, 0))
            .expect("rst");
        sim.settle().expect("settle");
        sim.write_input(n("rst_n"), LogicVec::from_u64(1, 1))
            .expect("rst");
        sim.write_input(n("len"), LogicVec::from_u64(8, 2))
            .expect("len");
        sim.write_input(n("go"), LogicVec::from_u64(1, 1))
            .expect("go");
        sim.write_input(n("unlock"), LogicVec::from_u64(1, u64::from(unlock)))
            .expect("ul");
        sim.settle().expect("settle");
        sim.tick(clk).expect("tick");
        sim.net_logic(n("busy")).to_u64() == Some(1)
    }

    #[test]
    fn locked_descriptor_blocks_without_unlock() {
        assert!(!sim_dma(MemoryBug::None, false));
        assert!(sim_dma(MemoryBug::None, true));
    }

    #[test]
    fn buggy_reset_lets_stale_descriptor_fire() {
        assert!(sim_dma(MemoryBug::RangeCheckLost, false));
    }

    #[test]
    fn dma_copies_words() {
        let d = soccar_rtl::compile("dma.v", &dma(MemoryBug::None), "dma_engine")
            .expect("compile")
            .0;
        let mut sim = Simulator::concrete(&d, InitPolicy::Zeros);
        let n = |s: &str| d.find_net(&format!("dma_engine.{s}")).expect("net");
        let clk = n("clk");
        for (sig, w) in [
            ("go", 1u32),
            ("unlock", 1),
            ("src", 32),
            ("dst", 32),
            ("len", 8),
            ("bus_rdata", 32),
            ("bus_ack", 1),
        ] {
            sim.write_input(n(sig), LogicVec::zeros(w)).expect("in");
        }
        sim.write_input(clk, LogicVec::from_u64(1, 0)).expect("clk");
        sim.write_input(n("rst_n"), LogicVec::from_u64(1, 0))
            .expect("rst");
        sim.settle().expect("settle");
        sim.write_input(n("rst_n"), LogicVec::from_u64(1, 1))
            .expect("rst");
        sim.write_input(n("src"), LogicVec::from_u64(32, 0x100))
            .expect("src");
        sim.write_input(n("dst"), LogicVec::from_u64(32, 0x200))
            .expect("dst");
        sim.write_input(n("len"), LogicVec::from_u64(8, 1))
            .expect("len");
        sim.write_input(n("go"), LogicVec::from_u64(1, 1))
            .expect("go");
        sim.write_input(n("unlock"), LogicVec::from_u64(1, 1))
            .expect("ul");
        sim.settle().expect("settle");
        sim.tick(clk).expect("tick"); // IDLE → RD
        sim.write_input(n("go"), LogicVec::from_u64(1, 0))
            .expect("go");
        sim.write_input(n("bus_rdata"), LogicVec::from_u64(32, 0xFACE))
            .expect("rd");
        sim.write_input(n("bus_ack"), LogicVec::from_u64(1, 1))
            .expect("ack");
        sim.tick(clk).expect("tick"); // RD latches
        assert_eq!(sim.net_logic(n("bus_we")).to_u64(), Some(0));
        sim.tick(clk).expect("tick"); // WR drives
        assert_eq!(sim.net_logic(n("bus_addr")).to_u64(), Some(0x200));
        assert_eq!(sim.net_logic(n("bus_wdata")).to_u64(), Some(0xFACE));
        sim.tick(clk).expect("tick"); // WR acks, done
        assert_eq!(sim.net_logic(n("busy")).to_u64(), Some(0));
    }
}
