//! The SoCCAR pipeline — the paper's **Figure 1** workflow.
//!
//! The three published stages, preceded by a fast static pre-pass:
//!
//! 0. **Lint** ([`soccar_lint`]) — rule-based structural checks over the
//!    parsed design; catches reset-domain hazards (including the
//!    Section V-C implicit-governor blind spot) in milliseconds, before
//!    any simulation;
//! 1. **AR_CFG generation** (Algorithm 1) — per-module extraction of
//!    reset-governed events;
//! 2. **Module connection profile & composition** (Algorithm 2) — the
//!    SoC-level `AR(S)` with reset-domain analysis, bound onto the
//!    elaborated design;
//! 3. **Concolic testing** (Algorithm 3) — systematic exploration of the
//!    extracted design space with security-property checking.

use std::time::Duration;

use serde::Serialize;
use soccar_cfg::{bind_events_traced, compose_soc_resilient, GovernorAnalysis, ResetNaming};
use soccar_concolic::{ConcolicConfig, ConcolicEngine, ConcolicReport, SecurityProperty};
use soccar_lint::{LintConfig, LintReport, Linter};
use soccar_rtl::{elaborate::elaborate_traced, parser::parse_traced, span::SourceMap, Design};

use crate::error::SoccarError;

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct SoccarConfig {
    /// Governor-analysis level (Explicit = the published tool).
    pub analysis: GovernorAnalysis,
    /// Reset naming convention.
    pub naming: ResetNaming,
    /// Concolic engine parameters.
    pub concolic: ConcolicConfig,
    /// Per-rule allow/deny configuration for the lint pre-pass.
    pub lint: LintConfig,
    /// Worker threads for the parallel stages (AR_CFG extraction fan-out
    /// and per-round concolic flip solving). `0` resolves via
    /// [`soccar_exec::resolve_jobs`]: the `SOCCAR_JOBS` environment
    /// variable, then the machine's available parallelism. The resolved
    /// value also overwrites [`ConcolicConfig::jobs`] for the run.
    ///
    /// Reports are bit-identical across job counts — parallel stages
    /// merge by stable keys, never completion order — so this knob trades
    /// only wall-clock time, never results.
    pub jobs: usize,
    /// Degrade instead of aborting when a parallel worker panics: the
    /// extraction and flip pools run under
    /// [`soccar_exec::FailurePolicy::KeepGoing`], failed tasks become
    /// per-stage [`Health::Degraded`] reasons, and the analysis finishes
    /// with whatever survived. Off (fail-fast) by default.
    pub keep_going: bool,
    /// Deterministic fault-injection plan for chaos testing (see
    /// [`soccar_exec::FaultPlan`]). The default empty plan injects
    /// nothing. The CLI fills it from the `SOCCAR_FAULTS` environment
    /// variable.
    pub fault_plan: soccar_exec::FaultPlan,
}

impl Default for SoccarConfig {
    fn default() -> SoccarConfig {
        SoccarConfig {
            analysis: GovernorAnalysis::Explicit,
            naming: ResetNaming::new(),
            concolic: ConcolicConfig::default(),
            lint: LintConfig::default(),
            jobs: 0,
            keep_going: false,
            fault_plan: soccar_exec::FaultPlan::default(),
        }
    }
}

/// Health of one pipeline stage (or of the run as a whole): either
/// everything ran, or parts were skipped/lost and the report explains
/// what and why. Degradation never hides detected violations — it means
/// *coverage* may be lower than a healthy run, not that results are
/// wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Health {
    /// The stage ran in full.
    Ok,
    /// The stage lost work; each reason names what was skipped.
    Degraded(Vec<String>),
}

impl Health {
    /// Builds a health value from collected degradation reasons.
    #[must_use]
    pub fn from_reasons(reasons: Vec<String>) -> Health {
        if reasons.is_empty() {
            Health::Ok
        } else {
            Health::Degraded(reasons)
        }
    }

    /// `true` for [`Health::Degraded`].
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        matches!(self, Health::Degraded(_))
    }

    /// The degradation reasons (empty when healthy).
    #[must_use]
    pub fn reasons(&self) -> &[String] {
        match self {
            Health::Ok => &[],
            Health::Degraded(reasons) => reasons,
        }
    }
}

impl Serialize for Health {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::ser::SerializeStruct;
        match self {
            Health::Ok => {
                let mut s = serializer.serialize_struct("Health", 1)?;
                s.serialize_field("status", "ok")?;
                s.end()
            }
            Health::Degraded(reasons) => {
                let mut s = serializer.serialize_struct("Health", 2)?;
                s.serialize_field("status", "degraded")?;
                s.serialize_field("reasons", reasons)?;
                s.end()
            }
        }
    }
}

/// Worker-pool utilization of one parallel stage, for the stage report.
/// Wall-clock measurements: excluded from [`AnalysisReport::canonical_json`].
#[derive(Debug, Clone, Serialize)]
pub struct ExecSummary {
    /// Workers the stage ran with.
    pub jobs: usize,
    /// Tasks fanned out.
    pub tasks: usize,
    /// Summed task execution time across workers, in seconds.
    pub busy_secs: f64,
    /// Mean worker utilization in `[0, 1]`.
    pub utilization: f64,
}

impl From<&soccar_exec::PoolStats> for ExecSummary {
    fn from(stats: &soccar_exec::PoolStats) -> ExecSummary {
        ExecSummary {
            jobs: stats.jobs,
            tasks: stats.tasks,
            busy_secs: stats.busy.as_secs_f64(),
            utilization: stats.utilization(),
        }
    }
}

/// Timing of one pipeline stage (for the Figure 1 report).
#[derive(Debug, Clone, Serialize)]
pub struct StageReport {
    /// Stage name.
    pub stage: String,
    /// Wall-clock duration.
    #[serde(with = "duration_secs")]
    pub elapsed: Duration,
    /// One-line summary.
    pub detail: String,
    /// Worker-pool counters, for stages that fanned out.
    pub exec: Option<ExecSummary>,
    /// Whether the stage ran in full or lost work.
    pub health: Health,
}

mod duration_secs {
    use serde::Serializer;
    use std::time::Duration;

    pub fn serialize<S: Serializer>(d: &Duration, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_f64(d.as_secs_f64())
    }
}

/// Summary of the extraction stages.
#[derive(Debug, Clone, Serialize)]
pub struct ExtractionSummary {
    /// Modules in the source.
    pub modules: usize,
    /// Instances after composition.
    pub instances: usize,
    /// Reset-governed events in `AR(S)`.
    pub ar_events: usize,
    /// Reset domains found.
    pub reset_domains: usize,
    /// Events bound onto the elaborated design.
    pub bound_events: usize,
}

/// The complete result of one SoCCAR run.
#[derive(Debug, Clone)]
pub struct AnalysisReport {
    /// Per-stage timing (Figure 1).
    pub stages: Vec<StageReport>,
    /// Static lint findings from the pre-pass.
    pub lint: LintReport,
    /// Extraction summary.
    pub extraction: ExtractionSummary,
    /// Concolic testing outcome (violations, coverage, witnesses).
    pub concolic: ConcolicReport,
    /// Total wall-clock time.
    pub total: Duration,
}

impl AnalysisReport {
    /// All invalidation messages.
    #[must_use]
    pub fn violations(&self) -> &[soccar_concolic::Violation] {
        &self.concolic.violations
    }

    /// Aggregated health of the run: [`Health::Ok`] when every stage ran
    /// in full, otherwise the union of all stage reasons, each prefixed
    /// with its stage name.
    #[must_use]
    pub fn health(&self) -> Health {
        Health::from_reasons(
            self.stages
                .iter()
                .flat_map(|s| {
                    s.health
                        .reasons()
                        .iter()
                        .map(move |r| format!("{}: {r}", s.stage))
                })
                .collect(),
        )
    }

    /// `true` if any stage degraded.
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        self.stages.iter().any(|s| s.health.is_degraded())
    }

    /// The deterministic view of this report: every analysis result, but
    /// no wall-clock timing and no worker-pool counters. Two runs of the
    /// same design with the same configuration produce identical
    /// canonical views regardless of `jobs`.
    #[must_use]
    pub fn canonical(&self) -> CanonicalReport<'_> {
        CanonicalReport {
            stages: self
                .stages
                .iter()
                .map(|s| CanonicalStage {
                    stage: &s.stage,
                    detail: &s.detail,
                    health: &s.health,
                })
                .collect(),
            lint: &self.lint,
            extraction: &self.extraction,
            concolic: CanonicalConcolic {
                rounds: self.concolic.rounds,
                targets_total: self.concolic.targets_total,
                targets_covered: self.concolic.targets_covered,
                targets_unreachable: self.concolic.targets_unreachable,
                solver_calls: self.concolic.solver_calls,
                solver_sat: self.concolic.solver_sat,
                solver_unknown: self.concolic.solver_unknown,
                flips_failed: self.concolic.flips_failed,
                degraded_rounds: self.concolic.degraded_rounds,
                first_violation_round: self.concolic.first_violation_round,
                violations: self
                    .concolic
                    .violations
                    .iter()
                    .map(|v| CanonicalViolation {
                        property: &v.property,
                        module: &v.module,
                        cycle: v.cycle,
                        details: &v.details,
                    })
                    .collect(),
                witnesses: self
                    .concolic
                    .witnesses
                    .iter()
                    .map(|w| CanonicalWitness {
                        property: &w.property,
                        round: w.round,
                        schedule: w.schedule.summary(),
                    })
                    .collect(),
            },
        }
    }

    /// Canonical pretty-printed JSON (via [`crate::json`]) — byte-identical
    /// across runs and job counts for the same design and configuration.
    ///
    /// # Errors
    ///
    /// Propagates serialization failures.
    pub fn canonical_json(&self) -> Result<String, crate::json::JsonError> {
        crate::json::to_json_pretty(&self.canonical())
    }
}

/// Timing-free view of an [`AnalysisReport`] (see
/// [`AnalysisReport::canonical`]).
#[derive(Debug, Serialize)]
pub struct CanonicalReport<'a> {
    /// Stage names and one-line summaries, in pipeline order.
    pub stages: Vec<CanonicalStage<'a>>,
    /// Static lint findings.
    pub lint: &'a LintReport,
    /// Extraction summary.
    pub extraction: &'a ExtractionSummary,
    /// Concolic outcome, minus timing.
    pub concolic: CanonicalConcolic<'a>,
}

/// One stage of a [`CanonicalReport`]: name and summary, no timing.
#[derive(Debug, Serialize)]
pub struct CanonicalStage<'a> {
    /// Stage name.
    pub stage: &'a str,
    /// One-line summary.
    pub detail: &'a str,
    /// Stage health (degradation reasons are deterministic, so they
    /// belong to the canonical view).
    pub health: &'a Health,
}

/// Timing-free view of a [`ConcolicReport`].
#[derive(Debug, Serialize)]
pub struct CanonicalConcolic<'a> {
    /// Rounds executed.
    pub rounds: usize,
    /// Total coverage targets.
    pub targets_total: usize,
    /// Targets covered.
    pub targets_covered: usize,
    /// Targets proven unreachable.
    pub targets_unreachable: usize,
    /// Solver invocations (job-count invariant).
    pub solver_calls: usize,
    /// Of which SAT.
    pub solver_sat: usize,
    /// Flip solves abandoned on budget exhaustion (or injected faults).
    pub solver_unknown: usize,
    /// Flip tasks lost to worker panics under keep-going.
    pub flips_failed: usize,
    /// Rounds that lost at least one flip, hit a cap, or timed out.
    pub degraded_rounds: usize,
    /// Round of the first violation, if any.
    pub first_violation_round: Option<usize>,
    /// All distinct invalidation messages.
    pub violations: Vec<CanonicalViolation<'a>>,
    /// One witness per violated property.
    pub witnesses: Vec<CanonicalWitness<'a>>,
}

/// One violation of a [`CanonicalReport`].
#[derive(Debug, Serialize)]
pub struct CanonicalViolation<'a> {
    /// Violated property name.
    pub property: &'a str,
    /// Module blamed.
    pub module: &'a str,
    /// Cycle at which the violation was observed.
    pub cycle: u64,
    /// Human-readable details.
    pub details: &'a str,
}

/// One witness of a [`CanonicalReport`].
#[derive(Debug, Serialize)]
pub struct CanonicalWitness<'a> {
    /// Violated property name.
    pub property: &'a str,
    /// Round (1-based) of first observation.
    pub round: usize,
    /// Rendered reproducing schedule.
    pub schedule: String,
}

/// The SoCCAR framework facade.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use soccar::{Soccar, SoccarConfig};
/// use soccar_concolic::{PropertyKind, SecurityProperty};
/// use soccar_rtl::LogicVec;
///
/// let src = "
///   module ip(input clk, input rst_n, output reg [7:0] key);
///     always @(posedge clk or negedge rst_n)
///       if (!rst_n) key <= 8'd0;   // correct: reset scrubs the key
///       else key <= 8'hA5;
///   endmodule
///   module top(input clk, input sec_rst_n);
///     ip u (.clk(clk), .rst_n(sec_rst_n));
///   endmodule";
/// let property = SecurityProperty {
///     name: "key-cleared".into(),
///     module: "ip".into(),
///     kind: PropertyKind::ClearedAfterReset {
///         domain: "top.sec_rst_n".into(),
///         signal: "top.u.key".into(),
///         expected: LogicVec::zeros(8),
///         window: 0,
///     },
/// };
/// let soccar = Soccar::new(SoccarConfig::default());
/// let report = soccar.analyze("t.v", src, "top", vec![property])?;
/// assert!(report.violations().is_empty());
/// assert_eq!(report.extraction.reset_domains, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct Soccar {
    config: SoccarConfig,
    recorder: soccar_obs::Recorder,
}

impl Soccar {
    /// Creates the framework with the given configuration.
    #[must_use]
    pub fn new(config: SoccarConfig) -> Soccar {
        Soccar {
            config,
            recorder: soccar_obs::Recorder::disabled(),
        }
    }

    /// Attaches an observability recorder: every stage of
    /// [`Soccar::analyze`] opens a span under `pipeline.analyze`, the
    /// traced variants of the stage entry points feed their counters and
    /// histograms, and worker-pool utilization lands in gauges. Snapshot
    /// the recorder after the run for the `--verbose` tree or the
    /// `--trace-out` NDJSON stream (see `docs/OBSERVABILITY.md`).
    #[must_use]
    pub fn with_recorder(mut self, recorder: soccar_obs::Recorder) -> Soccar {
        self.recorder = recorder;
        self
    }

    /// The attached recorder ([`soccar_obs::Recorder::disabled`] unless
    /// [`Soccar::with_recorder`] was called).
    #[must_use]
    pub fn recorder(&self) -> &soccar_obs::Recorder {
        &self.recorder
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &SoccarConfig {
        &self.config
    }

    /// Runs the full pipeline on Verilog source text.
    ///
    /// # Errors
    ///
    /// Propagates frontend, composition, binding, engine-setup and
    /// simulation failures.
    pub fn analyze(
        &self,
        file_name: &str,
        source: &str,
        top: &str,
        properties: Vec<SecurityProperty>,
    ) -> Result<AnalysisReport, SoccarError> {
        let jobs = soccar_exec::resolve_jobs(Some(self.config.jobs));
        // Stage timing and the trace share one code path: every stage is
        // a span, and `SpanGuard::close` returns the wall-clock duration
        // even when the recorder is disabled, so `StageReport::elapsed`
        // is the span's duration by construction.
        let analyze_span = soccar_obs::span!(
            self.recorder,
            "pipeline.analyze",
            file = file_name,
            top = top,
            jobs = jobs
        );
        let mut stages = Vec::new();

        // Frontend.
        let frontend_span = soccar_obs::span!(self.recorder, "pipeline.frontend");
        let mut map = SourceMap::new();
        let file = map.add_file(file_name, source);
        let unit = parse_traced(file, source, &self.recorder)?;
        let design: Design = elaborate_traced(&unit, top, &self.recorder)?;
        stages.push(StageReport {
            stage: "frontend".into(),
            elapsed: frontend_span.close(),
            detail: format!("{} modules; {}", unit.modules.len(), design.stats()),
            exec: None,
            health: Health::Ok,
        });

        // Stage 0: static lint pre-pass (structural reset-domain checks).
        let lint_span = soccar_obs::span!(self.recorder, "pipeline.lint");
        let lint = Linter::new()
            .with_naming(self.config.naming.clone())
            .with_config(self.config.lint.clone())
            .lint_unit(&unit, &map);
        self.recorder
            .counter_add("lint.diagnostics", lint.diagnostics.len() as u64);
        stages.push(StageReport {
            stage: "lint".into(),
            elapsed: lint_span.close(),
            detail: lint.summary(),
            exec: None,
            health: Health::Ok,
        });

        // Stage 1+2: AR_CFG generation and composition (Algorithms 1–2).
        // Per-module extraction fans out across the worker pool; the
        // compose step stays serial and consumes modules in source order.
        let ar_cfg_span = soccar_obs::span!(self.recorder, "pipeline.ar_cfg");
        let policy = if self.config.keep_going {
            soccar_exec::FailurePolicy::KeepGoing
        } else {
            soccar_exec::FailurePolicy::FailFast
        };
        let (soc, extract_stats, extract_degraded) = compose_soc_resilient(
            &unit,
            top,
            &self.config.naming,
            self.config.analysis,
            jobs,
            policy,
            &self.config.fault_plan,
            &self.recorder,
        )
        .map_err(SoccarError::Cfg)?;
        let bound = bind_events_traced(&design, &soc, &self.recorder)
            .map_err(|e| SoccarError::Cfg(e.to_string()))?;
        self.record_pool_stats("exec.extract", &extract_stats);
        stages.push(StageReport {
            stage: "ar_cfg".into(),
            elapsed: ar_cfg_span.close(),
            detail: format!(
                "{} reset-governed events across {} instances; {} reset domains",
                soc.event_count(),
                soc.instances.len(),
                soc.reset_domains.len()
            ),
            exec: Some(ExecSummary::from(&extract_stats)),
            health: Health::from_reasons(extract_degraded),
        });
        let extraction = ExtractionSummary {
            modules: unit.modules.len(),
            instances: soc.instances.len(),
            ar_events: soc.event_count(),
            reset_domains: soc.reset_domains.len(),
            bound_events: bound.len(),
        };

        // Stage 3: concolic testing (Algorithm 3).
        let concolic_span = soccar_obs::span!(self.recorder, "pipeline.concolic");
        let mut concolic_config = self.config.concolic.clone();
        concolic_config.jobs = jobs;
        if self.config.keep_going {
            concolic_config.failure_policy = soccar_exec::FailurePolicy::KeepGoing;
        }
        if concolic_config.fault_plan.is_empty() {
            concolic_config.fault_plan = self.config.fault_plan.clone();
        }
        let mut engine = ConcolicEngine::new(&design, &bound, properties, concolic_config)
            .map_err(SoccarError::Config)?
            .with_recorder(self.recorder.clone());
        let concolic = engine.run()?;
        self.record_pool_stats("exec.flips", &concolic.flip_exec);
        stages.push(StageReport {
            stage: "concolic".into(),
            elapsed: concolic_span.close(),
            detail: format!(
                "{} rounds, {}/{} targets covered, {} violations",
                concolic.rounds,
                concolic.targets_covered,
                concolic.targets_total,
                concolic.violations.len()
            ),
            exec: Some(ExecSummary::from(&concolic.flip_exec)),
            health: Health::from_reasons(concolic.degraded_reasons.clone()),
        });

        Ok(AnalysisReport {
            stages,
            lint,
            extraction,
            concolic,
            total: analyze_span.close(),
        })
    }

    /// Records one parallel stage's pool counters. Task counts are
    /// deterministic (the fan-out never depends on worker count) and go
    /// into a counter; the worker count and wall-clock-derived values are
    /// gauges, which every canonical serialization drops.
    fn record_pool_stats(&self, prefix: &str, stats: &soccar_exec::PoolStats) {
        self.recorder
            .counter_add(&format!("{prefix}.tasks"), stats.tasks as u64);
        self.recorder
            .gauge_set(&format!("{prefix}.jobs"), stats.jobs as f64);
        self.recorder
            .gauge_set(&format!("{prefix}.busy_secs"), stats.busy.as_secs_f64());
        self.recorder
            .gauge_set(&format!("{prefix}.utilization"), stats.utilization());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soccar_concolic::{PropertyKind, SecurityProperty};
    use soccar_rtl::LogicVec;

    const LEAKY: &str = "
        module ip(input clk, input rst_n, output reg [7:0] key);
          always @(posedge clk or negedge rst_n)
            if (!rst_n) key <= key;   // BUG: not scrubbed
            else key <= 8'hA5;
        endmodule
        module top(input clk, input sec_rst_n);
          ip u (.clk(clk), .rst_n(sec_rst_n));
        endmodule";

    fn key_property() -> SecurityProperty {
        SecurityProperty {
            name: "key-cleared".into(),
            module: "ip".into(),
            kind: PropertyKind::ClearedAfterReset {
                domain: "top.sec_rst_n".into(),
                signal: "top.u.key".into(),
                expected: LogicVec::zeros(8),
                window: 0,
            },
        }
    }

    #[test]
    fn pipeline_detects_and_reports_stages() {
        let soccar = Soccar::new(SoccarConfig::default());
        let report = soccar
            .analyze("t.v", LEAKY, "top", vec![key_property()])
            .expect("analyze");
        assert_eq!(report.stages.len(), 4);
        assert_eq!(report.stages[0].stage, "frontend");
        assert_eq!(report.stages[1].stage, "lint");
        assert_eq!(report.stages[2].stage, "ar_cfg");
        assert_eq!(report.stages[3].stage, "concolic");
        assert_eq!(report.extraction.ar_events, 1);
        assert_eq!(report.extraction.reset_domains, 1);
        assert_eq!(report.violations().len(), 1);
        assert_eq!(report.violations()[0].module, "ip");
        assert!(report.total >= report.stages[3].elapsed);
    }

    #[test]
    fn lint_pre_pass_flags_the_unscrubbed_key() {
        // The LEAKY design's reset arm re-assigns `key` to itself, so the
        // partial-reset-domain structural diff stays silent; the Info-level
        // secondary check and the pipeline plumbing are what we assert here.
        let soccar = Soccar::new(SoccarConfig::default());
        let report = soccar
            .analyze("t.v", LEAKY, "top", vec![key_property()])
            .expect("analyze");
        let stage = report
            .stages
            .iter()
            .find(|s| s.stage == "lint")
            .expect("lint stage present");
        assert_eq!(stage.detail, report.lint.summary());
    }

    #[test]
    fn lint_config_flows_through_the_pipeline() {
        let mut config = SoccarConfig::default();
        config.lint.allow = vec![
            "async-reset-unsynchronized".into(),
            "combinational-reset-gen".into(),
            "implicit-governor".into(),
            "partial-reset-domain".into(),
            "reset-crosses-domains".into(),
            "reset-name-shadowing".into(),
        ];
        let report = Soccar::new(config)
            .analyze("t.v", LEAKY, "top", vec![key_property()])
            .expect("analyze");
        assert!(report.lint.diagnostics.is_empty());
    }

    #[test]
    fn parallel_stages_report_exec_counters() {
        let config = SoccarConfig {
            jobs: 2,
            ..SoccarConfig::default()
        };
        let report = Soccar::new(config)
            .analyze("t.v", LEAKY, "top", vec![key_property()])
            .expect("analyze");
        assert!(report.stages[0].exec.is_none());
        assert!(report.stages[1].exec.is_none());
        let extract = report.stages[2].exec.as_ref().expect("ar_cfg exec");
        assert_eq!(extract.jobs, 2);
        assert_eq!(extract.tasks, 2); // ip + top modules
        let flips = report.stages[3].exec.as_ref().expect("concolic exec");
        assert_eq!(flips.tasks, report.concolic.flip_exec.tasks);
    }

    #[test]
    fn canonical_json_is_job_count_invariant() {
        let run = |jobs: usize| {
            let config = SoccarConfig {
                jobs,
                ..SoccarConfig::default()
            };
            Soccar::new(config)
                .analyze("t.v", LEAKY, "top", vec![key_property()])
                .expect("analyze")
                .canonical_json()
                .expect("canonical json")
        };
        let serial = run(1);
        assert_eq!(serial, run(4));
        // The canonical view carries results but no wall-clock fields.
        assert!(serial.contains("\"violations\""));
        assert!(!serial.contains("elapsed"));
        assert!(!serial.contains("busy_secs"));
    }

    #[test]
    fn healthy_run_reports_ok_everywhere() {
        let report = Soccar::new(SoccarConfig::default())
            .analyze("t.v", LEAKY, "top", vec![key_property()])
            .expect("analyze");
        assert!(!report.is_degraded());
        assert_eq!(report.health(), Health::Ok);
        assert!(report.stages.iter().all(|s| s.health == Health::Ok));
        let json = report.canonical_json().expect("json");
        assert!(json.contains("\"status\": \"ok\""));
        assert!(!json.contains("\"status\": \"degraded\""));
    }

    /// LEAKY with a data-guarded branch in the reset arm, so the engine
    /// has flip candidates for the fault plan's `solver_unknown` point.
    const LEAKY_GUARDED: &str = "
        module ip(input clk, input rst_n, input [7:0] magic, output reg [7:0] key);
          always @(posedge clk or negedge rst_n)
            if (!rst_n) begin
              if (magic == 8'h5A) key <= key;   // BUG: not scrubbed
            end else key <= 8'hA5;
        endmodule
        module top(input clk, input sec_rst_n, input [7:0] magic);
          ip u (.clk(clk), .rst_n(sec_rst_n), .magic(magic));
        endmodule";

    #[test]
    fn injected_faults_degrade_health_without_losing_the_bug() {
        let config = SoccarConfig {
            keep_going: true,
            fault_plan: soccar_exec::FaultPlan::parse("solver_unknown@1").expect("plan"),
            concolic: ConcolicConfig {
                symbolic_inputs: vec!["top.magic".into()],
                ..ConcolicConfig::default()
            },
            ..SoccarConfig::default()
        };
        let report = Soccar::new(config)
            .analyze("t.v", LEAKY_GUARDED, "top", vec![key_property()])
            .expect("analyze");
        assert!(report.is_degraded(), "stages: {:?}", report.stages);
        let health = report.health();
        assert!(health
            .reasons()
            .iter()
            .any(|r| r.starts_with("concolic: ") && r.contains("solver_unknown@1")));
        // Degradation loses coverage, never detections.
        assert_eq!(report.violations().len(), 1);
        let json = report.canonical_json().expect("json");
        assert!(json.contains("\"status\": \"degraded\""));
        assert!(json.contains("solver_unknown@1"));
    }

    #[test]
    fn extraction_faults_keep_going_and_degrade_ar_cfg_stage() {
        let config = SoccarConfig {
            keep_going: true,
            // Module index 1 is `ip` — the only reset-governed module.
            fault_plan: soccar_exec::FaultPlan::parse("task_panic@extract:1").expect("plan"),
            ..SoccarConfig::default()
        };
        let report = Soccar::new(config)
            .analyze("t.v", LEAKY, "top", vec![key_property()])
            .expect("analyze");
        let ar_cfg = report
            .stages
            .iter()
            .find(|s| s.stage == "ar_cfg")
            .expect("ar_cfg stage");
        assert!(ar_cfg.health.is_degraded(), "stages: {:?}", report.stages);
        assert!(ar_cfg.health.reasons()[0].contains("module `ip`"));
        // The dropped module contributed nothing, so no targets exist —
        // degraded coverage, not an abort.
        assert_eq!(report.extraction.ar_events, 0);
    }

    #[test]
    fn pipeline_errors_are_typed() {
        let soccar = Soccar::new(SoccarConfig::default());
        assert!(matches!(
            soccar.analyze("t.v", "module broken(", "broken", vec![]),
            Err(SoccarError::Rtl(_))
        ));
        assert!(matches!(
            soccar.analyze("t.v", "module a(input x); endmodule", "missing", vec![]),
            Err(SoccarError::Rtl(_))
        ));
    }
}
