//! Seeded, deterministic SoC topology generation (`gen:<seed>:<scale>`).
//!
//! The paper validates SoCCAR on two hand-built SoCs; this module scales
//! that universe. It composes the existing `ip/` library into an
//! N-cluster design — each cluster a private Wishbone island with a
//! RISC-V core, a DMA engine, two SRAMs, two crypto engines, a DSP
//! datapath, a peripheral and a coverage gate — behind a second,
//! top-level interconnect tier, with seeded bug-family injection drawn
//! from the Table III catalog. Alongside the RTL it emits a
//! machine-readable ground-truth [`Manifest`]: which bug, in which
//! module, of which [`ViolationType`], and at which pipeline stage
//! detection is expected. See `docs/GENERATOR.md`.
//!
//! Determinism contract: the same `(seed, scale)` pair yields
//! byte-identical RTL, checks, symbolic inputs and manifest JSON on
//! every platform. The internal RNG is a fixed splitmix64 — changing
//! the stream (or any draw order below) is a breaking change that
//! requires regenerating the stress-tier baselines.

use std::fmt::Write as _;

use crate::bugs::ViolationType;
use crate::checks::{CheckKind, CheckSpec};
use crate::ip::crypto::{self, CryptoBug};
use crate::ip::dma;
use crate::ip::dsp;
use crate::ip::periph;
use crate::ip::riscv::{self, CoreBug, CoreVariant};
use crate::ip::sram::{self, MemoryBug};
use crate::ip::wishbone::{self, BusBug};

/// Upper bound on `scale` (clusters). Keeps a typo like `gen:1:9999`
/// from allocating gigabytes of RTL text.
pub const MAX_SCALE: u32 = 128;

/// A parsed `gen:<seed>:<scale>` catalog name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GenSpec {
    /// RNG seed; selects topology rotation and bug injection.
    pub seed: u64,
    /// Cluster count. Each cluster contributes 11 modules.
    pub scale: u32,
}

impl GenSpec {
    /// Parses a `gen:<seed>:<scale>` name.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message when the name is not of that
    /// shape or `scale` is outside `1..=MAX_SCALE`.
    pub fn parse(name: &str) -> Result<GenSpec, String> {
        let rest = name
            .strip_prefix("gen:")
            .ok_or_else(|| format!("`{name}` is not a `gen:<seed>:<scale>` name"))?;
        let (seed, scale) = rest
            .split_once(':')
            .ok_or_else(|| format!("`{name}`: expected `gen:<seed>:<scale>`"))?;
        let seed: u64 = seed
            .parse()
            .map_err(|_| format!("`{name}`: seed `{seed}` is not a u64"))?;
        let scale: u32 = scale
            .parse()
            .map_err(|_| format!("`{name}`: scale `{scale}` is not a u32"))?;
        if scale == 0 || scale > MAX_SCALE {
            return Err(format!(
                "`{name}`: scale must be in 1..={MAX_SCALE}, got {scale}"
            ));
        }
        Ok(GenSpec { seed, scale })
    }

    /// The canonical catalog name, `gen:<seed>:<scale>`.
    #[must_use]
    pub fn name(&self) -> String {
        format!("gen:{}:{}", self.seed, self.scale)
    }

    /// A filename-safe slug, `gen_<seed>_<scale>` (bench records and
    /// pipeline file names cannot carry `:`).
    #[must_use]
    pub fn slug(&self) -> String {
        format!("gen_{}_{}", self.seed, self.scale)
    }
}

/// Where the pipeline is expected to catch a seeded bug.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectionStage {
    /// The concolic stage: one of the `detectors` checks is violated.
    Concolic,
    /// The lint pre-pass: `implicit-governor` flags the module (the
    /// Section V-C construct the Explicit analysis cannot see).
    Lint,
}

impl DetectionStage {
    /// Stable manifest token.
    #[must_use]
    pub fn token(self) -> &'static str {
        match self {
            DetectionStage::Concolic => "concolic",
            DetectionStage::Lint => "lint",
        }
    }
}

/// One seeded bug, as ground truth for recall scoring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestBug {
    /// Cluster index the bug lives in.
    pub cluster: u32,
    /// Violation class (Table III).
    pub violation: ViolationType,
    /// Uniquified module name carrying the bug (e.g. `aes192_c3`).
    pub module: String,
    /// Hierarchical instance path (e.g. `gen_soc.u_c3.u_aes192`).
    pub instance: String,
    /// Whether the implicit-governor construct was used.
    pub implicit: bool,
    /// Expected detection stage.
    pub stage: DetectionStage,
    /// Check names whose violation counts as detecting this bug.
    pub detectors: Vec<String>,
}

impl ManifestBug {
    /// One-line rendering for test-failure messages.
    #[must_use]
    pub fn describe(&self) -> String {
        format!(
            "cluster {} {} @ {} ({}){} — expect {}: [{}]",
            self.cluster,
            violation_token(self.violation),
            self.module,
            self.instance,
            if self.implicit { " implicit" } else { "" },
            self.stage.token(),
            self.detectors.join(", ")
        )
    }
}

/// The machine-readable ground truth emitted beside the RTL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Catalog name (`gen:<seed>:<scale>`).
    pub name: String,
    /// RNG seed.
    pub seed: u64,
    /// Cluster count.
    pub scale: u32,
    /// Total Verilog modules emitted.
    pub modules: u32,
    /// Top-level asynchronous reset domains.
    pub reset_domains: u32,
    /// The seeded bugs (at least one; clusters without a draw are clean).
    pub bugs: Vec<ManifestBug>,
}

/// Stable manifest token for a violation class.
#[must_use]
pub fn violation_token(v: ViolationType) -> &'static str {
    match v {
        ViolationType::InformationLeakage => "information-leakage",
        ViolationType::DataIntegrity => "data-integrity",
        ViolationType::PrivilegeMode => "privilege-mode",
    }
}

impl Manifest {
    /// Deterministic pretty JSON (hand-rolled: `soccar-soc` sits below
    /// the `soccar` JSON encoder in the crate graph).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"name\": \"{}\",", self.name);
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        let _ = writeln!(out, "  \"scale\": {},", self.scale);
        let _ = writeln!(out, "  \"modules\": {},", self.modules);
        let _ = writeln!(out, "  \"reset_domains\": {},", self.reset_domains);
        out.push_str("  \"bugs\": [\n");
        for (i, b) in self.bugs.iter().enumerate() {
            out.push_str("    {\n");
            let _ = writeln!(out, "      \"cluster\": {},", b.cluster);
            let _ = writeln!(
                out,
                "      \"violation\": \"{}\",",
                violation_token(b.violation)
            );
            let _ = writeln!(out, "      \"module\": \"{}\",", b.module);
            let _ = writeln!(out, "      \"instance\": \"{}\",", b.instance);
            let _ = writeln!(out, "      \"implicit\": {},", b.implicit);
            let _ = writeln!(out, "      \"stage\": \"{}\",", b.stage.token());
            let detectors: Vec<String> = b.detectors.iter().map(|d| format!("\"{d}\"")).collect();
            let _ = writeln!(out, "      \"detectors\": [{}]", detectors.join(", "));
            out.push_str(if i + 1 == self.bugs.len() {
                "    }\n"
            } else {
                "    },\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// A fully generated design: RTL plus everything the pipeline and the
/// evaluation harness need.
#[derive(Debug, Clone)]
pub struct GeneratedSoc {
    /// Catalog name (`gen:<seed>:<scale>`).
    pub name: String,
    /// Filename-safe slug (`gen_<seed>_<scale>`).
    pub slug: String,
    /// Complete Verilog source.
    pub source: String,
    /// Top module name (always `gen_soc`).
    pub top: String,
    /// The security regression for this design (variant-independent in
    /// spirit: checks cover every cluster, buggy or clean).
    pub checks: Vec<CheckSpec>,
    /// Symbolic top-level inputs for the concolic engine.
    pub symbolic: Vec<String>,
    /// Ground truth.
    pub manifest: Manifest,
}

/// The fixed pinned sweep shared by the tier-1 recall oracle test and
/// the CI stress tier: 5 seeds × 3 scales.
#[must_use]
pub fn pinned_sweep() -> Vec<GenSpec> {
    let mut out = Vec::new();
    for seed in [3, 17, 29, 97, 1913] {
        for scale in [1, 2, 4] {
            out.push(GenSpec { seed, scale });
        }
    }
    out
}

/// splitmix64 — the fixed, platform-independent RNG stream behind the
/// determinism contract. Do not swap for `rand`: its stub stream is not
/// part of this crate's API stability surface.
struct SplitMix64(u64);

impl SplitMix64 {
    fn new(seed: u64) -> SplitMix64 {
        SplitMix64(seed)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform-ish pick in `0..n` (modulo bias is irrelevant here).
    fn pick(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Renames the single module declared in `src` from `base` to `unique`.
fn uniquify(src: &str, base: &str, unique: &str) -> String {
    let needle = format!("module {base}");
    assert!(
        src.contains(&needle),
        "IP source for `{base}` has no `{needle}` declaration"
    );
    src.replacen(&needle, &format!("module {unique}"), 1)
}

const CORE_SET: [CoreVariant; 5] = [
    CoreVariant::Rv32i,
    CoreVariant::Rv32e,
    CoreVariant::Rv32ic,
    CoreVariant::Rv32im,
    CoreVariant::Rv32imc,
];

const DSP_SET: [&str; 4] = ["fir_filter", "dft_core", "idft_core", "iir_filter"];
const PERIPH_SET: [&str; 3] = ["uart", "spi_ctrl", "eth_mac"];

/// The seven injectable bug families, one per `BugFamily::pick` arm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BugFamily {
    CryptoExplicit,
    CryptoImplicit,
    MemorySp,
    MemoryDp,
    MemoryDma,
    CorePriv,
    BusMask,
}

const FAMILIES: [BugFamily; 7] = [
    BugFamily::CryptoExplicit,
    BugFamily::CryptoImplicit,
    BugFamily::MemorySp,
    BugFamily::MemoryDp,
    BugFamily::MemoryDma,
    BugFamily::CorePriv,
    BugFamily::BusMask,
];

/// Everything chosen for one cluster, fixed before any RTL is emitted
/// so the draw order is a stable part of the determinism contract.
struct ClusterPlan {
    core: CoreVariant,
    engines: [&'static str; 2],
    dsp: &'static str,
    periph: &'static str,
    magic: u8,
    bug: Option<BugFamily>,
}

fn plan_cluster(rng: &mut SplitMix64) -> ClusterPlan {
    let core = CORE_SET[rng.pick(CORE_SET.len() as u64) as usize];
    let e0 = rng.pick(crypto::ENGINE_NAMES.len() as u64) as usize;
    let e1 = (e0 + 1 + rng.pick(crypto::ENGINE_NAMES.len() as u64 - 1) as usize)
        % crypto::ENGINE_NAMES.len();
    let dsp = DSP_SET[rng.pick(DSP_SET.len() as u64) as usize];
    let periph = PERIPH_SET[rng.pick(PERIPH_SET.len() as u64) as usize];
    // 1..=254: the all-zeros/all-ones patterns are too easy for the
    // concolic engine to stumble onto concretely.
    let magic = 1 + rng.pick(254) as u8;
    let bug = if rng.pick(100) < 50 {
        Some(FAMILIES[rng.pick(FAMILIES.len() as u64) as usize])
    } else {
        None
    };
    ClusterPlan {
        core,
        engines: [crypto::ENGINE_NAMES[e0], crypto::ENGINE_NAMES[e1]],
        dsp,
        periph,
        magic,
        bug,
    }
}

/// Number of cluster reset-domain groups (`g<k>_rst_n` top inputs).
/// Bounded so the reset sweep stays O(domains × cycles) no matter the
/// scale; hierarchy depth, not domain count, grows with `scale`.
fn groups(scale: u32) -> u32 {
    scale.min(4)
}

/// Generates the design for a spec. Deterministic: same spec, same
/// bytes — RTL, checks, symbolic inputs and manifest alike.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn generate(spec: &GenSpec) -> GeneratedSoc {
    // Mix scale into the stream so `gen:7:2` is not a prefix of
    // `gen:7:4`'s topology.
    let mut rng = SplitMix64::new(spec.seed ^ (u64::from(spec.scale) << 32));
    let plans: Vec<ClusterPlan> = (0..spec.scale).map(|_| plan_cluster(&mut rng)).collect();
    let force_bug = plans.iter().all(|p| p.bug.is_none());

    let mut src = String::new();
    let mut modules = 0u32;
    let mut checks = Vec::new();
    let mut bugs = Vec::new();
    let g = groups(spec.scale);

    for (i, plan) in plans.iter().enumerate() {
        let i = i as u32;
        let bug = if force_bug && i == 0 {
            Some(BugFamily::CryptoExplicit)
        } else {
            plan.bug
        };
        let domain = format!("gen_soc.g{}_rst_n", i % g);
        emit_cluster(&mut src, &mut modules, &mut checks, i, plan, bug, &domain);
        if let Some(family) = bug {
            bugs.push(manifest_bug(i, plan, family));
        }
    }

    emit_shared(&mut src, &mut modules, &mut checks);
    emit_top(&mut src, &mut modules, spec.scale, g);

    let symbolic = vec![
        "gen_soc.tst_key".to_owned(),
        "gen_soc.tst_pt".to_owned(),
        "gen_soc.tst_start".to_owned(),
        "gen_soc.tst_magic".to_owned(),
    ];
    let manifest = Manifest {
        name: spec.name(),
        seed: spec.seed,
        scale: spec.scale,
        modules,
        reset_domains: g + 3,
        bugs,
    };
    GeneratedSoc {
        name: spec.name(),
        slug: spec.slug(),
        source: src,
        top: "gen_soc".to_owned(),
        checks,
        symbolic,
        manifest,
    }
}

fn manifest_bug(i: u32, plan: &ClusterPlan, family: BugFamily) -> ManifestBug {
    let (violation, base, inst, implicit, stage, detectors) = match family {
        BugFamily::CryptoExplicit => (
            ViolationType::InformationLeakage,
            plan.engines[0],
            format!("u_{}", plan.engines[0]),
            false,
            DetectionStage::Concolic,
            vec![
                format!("c{i}-{}-key-cleared", plan.engines[0]),
                format!("c{i}-{}-pt-cleared", plan.engines[0]),
            ],
        ),
        BugFamily::CryptoImplicit => (
            ViolationType::InformationLeakage,
            plan.engines[1],
            format!("u_{}", plan.engines[1]),
            true,
            DetectionStage::Lint,
            vec![format!("c{i}-{}-no-leak", plan.engines[1])],
        ),
        BugFamily::MemorySp => (
            ViolationType::DataIntegrity,
            "sram_sp",
            "u_sram0".to_owned(),
            false,
            DetectionStage::Concolic,
            vec![format!("c{i}-sram0-guard-armed")],
        ),
        BugFamily::MemoryDp => (
            ViolationType::DataIntegrity,
            "sram_dp",
            "u_sram1".to_owned(),
            false,
            DetectionStage::Concolic,
            vec![format!("c{i}-sram1-guard-armed")],
        ),
        BugFamily::MemoryDma => (
            ViolationType::DataIntegrity,
            "dma_engine",
            "u_dma".to_owned(),
            false,
            DetectionStage::Concolic,
            vec![format!("c{i}-dma-lock-armed")],
        ),
        BugFamily::CorePriv => (
            ViolationType::PrivilegeMode,
            plan.core.module_name(),
            "u_cpu".to_owned(),
            false,
            DetectionStage::Concolic,
            vec![format!("c{i}-priv-legal")],
        ),
        BugFamily::BusMask => (
            ViolationType::DataIntegrity,
            "wb_fabric",
            "u_fabric".to_owned(),
            false,
            DetectionStage::Concolic,
            vec![format!("c{i}-bus-mask-armed")],
        ),
    };
    ManifestBug {
        cluster: i,
        violation,
        module: format!("{base}_c{i}"),
        instance: format!("gen_soc.u_c{i}.{inst}"),
        implicit,
        stage,
        detectors,
    }
}

#[allow(clippy::too_many_lines)]
fn emit_cluster(
    src: &mut String,
    modules: &mut u32,
    checks: &mut Vec<CheckSpec>,
    i: u32,
    plan: &ClusterPlan,
    bug: Option<BugFamily>,
    domain: &str,
) {
    let core_base = plan.core.module_name();
    let core_bug = if bug == Some(BugFamily::CorePriv) {
        CoreBug::PrivUndefined
    } else {
        CoreBug::None
    };
    src.push_str(&uniquify(
        &riscv::core(plan.core, core_bug),
        core_base,
        &format!("{core_base}_c{i}"),
    ));
    let eng_bugs = [
        if bug == Some(BugFamily::CryptoExplicit) {
            CryptoBug::LeakExplicit
        } else {
            CryptoBug::None
        },
        if bug == Some(BugFamily::CryptoImplicit) {
            CryptoBug::LeakImplicit
        } else {
            CryptoBug::None
        },
    ];
    for (e, ebug) in plan.engines.iter().zip(eng_bugs) {
        src.push_str(&uniquify(
            &crypto::by_name(e, ebug),
            e,
            &format!("{e}_c{i}"),
        ));
    }
    let sp_bug = if bug == Some(BugFamily::MemorySp) {
        MemoryBug::RangeCheckLost
    } else {
        MemoryBug::None
    };
    let dp_bug = if bug == Some(BugFamily::MemoryDp) {
        MemoryBug::RangeCheckLost
    } else {
        MemoryBug::None
    };
    let dma_bug = if bug == Some(BugFamily::MemoryDma) {
        MemoryBug::RangeCheckLost
    } else {
        MemoryBug::None
    };
    src.push_str(&uniquify(
        &sram::sram_sp(sp_bug),
        "sram_sp",
        &format!("sram_sp_c{i}"),
    ));
    src.push_str(&uniquify(
        &sram::sram_dp(dp_bug),
        "sram_dp",
        &format!("sram_dp_c{i}"),
    ));
    src.push_str(&uniquify(
        &dma::dma(dma_bug),
        "dma_engine",
        &format!("dma_engine_c{i}"),
    ));
    let bus_bug = if bug == Some(BugFamily::BusMask) {
        BusBug::ProtMaskCleared
    } else {
        BusBug::None
    };
    src.push_str(&wishbone::wb_fabric(
        &format!("wb_fabric_c{i}"),
        2,
        2,
        bus_bug,
    ));
    let dsp_src = match plan.dsp {
        "fir_filter" => dsp::fir(),
        "dft_core" => dsp::dft(),
        "idft_core" => dsp::idft(),
        _ => dsp::iir(),
    };
    src.push_str(&uniquify(&dsp_src, plan.dsp, &format!("{}_c{i}", plan.dsp)));
    let periph_src = match plan.periph {
        "uart" => periph::uart(),
        "spi_ctrl" => periph::spi(),
        _ => periph::eth(),
    };
    src.push_str(&uniquify(
        &periph_src,
        plan.periph,
        &format!("{}_c{i}", plan.periph),
    ));
    // The coverage gate: a symbolic-condition branch inside the reset
    // arm. Observing it untaken gives the concolic engine a flippable
    // target whose only SAT assignment is this cluster's magic byte —
    // the construct that drives real solver work at every scale.
    let _ = write!(
        src,
        "module tst_gate_c{i}(
  input clk,
  input rst_n,
  input [7:0] magic,
  output reg armed,
  output reg [7:0] beat
);
  always @(posedge clk or negedge rst_n)
    if (!rst_n) begin
      if (magic == 8'h{magic:02X}) armed <= 1'b1;
      beat <= 8'd0;
    end else
      beat <= beat + 8'd1;
endmodule
",
        magic = plan.magic
    );
    emit_cluster_wrapper(src, i, plan);
    *modules += 11;
    cluster_checks(checks, i, plan, domain);
}

fn emit_cluster_wrapper(src: &mut String, i: u32, plan: &ClusterPlan) {
    let core = format!("{}_c{i}", plan.core.module_name());
    let dsp_ports = if plan.dsp == "dft_core" || plan.dsp == "idft_core" {
        ".out_sample(), .bin_index(), .out_valid()"
    } else {
        ".out_sample(), .out_valid()"
    };
    let periph_inst = match plan.periph {
        "uart" => format!(
            "uart_c{i} u_periph (
    .clk(clk), .rst_n(rst_n),
    .tx_start(tst_start[0]), .tx_data(tst_pt[7:0]),
    .txd(), .tx_busy(),
    .rxd(1'b0), .rx_data(), .rx_valid()
  );"
        ),
        "spi_ctrl" => format!(
            "spi_ctrl_c{i} u_periph (
    .clk(clk), .rst_n(rst_n),
    .start(tst_start[0]), .mosi_data(tst_pt[15:8]),
    .sck(), .mosi(), .miso(1'b0),
    .cs_n(), .miso_data(), .busy()
  );"
        ),
        _ => format!(
            "eth_mac_c{i} u_periph (
    .clk(clk), .rst_n(rst_n),
    .tx_start(tst_start[0]), .tx_len(8'd4),
    .tx_word(tst_pt[31:0]), .tx_word_valid(tst_start[1]), .tx_done(),
    .phy_tx_en(), .phy_txd(),
    .phy_rx_dv(1'b0), .phy_rxd(32'd0),
    .rx_word(), .rx_valid(), .csum()
  );"
        ),
    };
    let _ = write!(
        src,
        "module cluster_c{i}(
  input clk,
  input rst_n,
  input mem_rst_n,
  input crypto_rst_n,
  input bus_unlock,
  input mem_unlock,
  input [63:0] tst_key,
  input [63:0] tst_pt,
  input [1:0] tst_start,
  input [7:0] tst_magic,
  input dma_go,
  output [1:0] priv,
  output bus_viol,
  output [1:0] done,
  output [1:0] leak,
  output gate_armed
);
  wire [31:0] m0_addr;
  wire [31:0] m0_wdata;
  wire [31:0] m0_rdata;
  wire m0_we;
  wire m0_stb;
  wire m0_ack;
  wire [31:0] m1_addr;
  wire [31:0] m1_wdata;
  wire [31:0] m1_rdata;
  wire m1_we;
  wire m1_stb;
  wire m1_ack;
  wire [31:0] s0_addr;
  wire [31:0] s0_wdata;
  wire [31:0] s0_rdata;
  wire s0_we;
  wire s0_stb;
  wire s0_ack;
  wire [31:0] s1_addr;
  wire [31:0] s1_wdata;
  wire [31:0] s1_rdata;
  wire s1_we;
  wire s1_stb;
  wire s1_ack;
  wire [1:0] prot_mask_w;

  {core} #(.HARTID({i})) u_cpu (
    .clk(clk), .rst_n(rst_n),
    .bus_addr(m0_addr), .bus_wdata(m0_wdata), .bus_rdata(m0_rdata),
    .bus_we(m0_we), .bus_stb(m0_stb), .bus_ack(m0_ack),
    .irq(1'b0), .priv_mode(priv), .pc(), .halted()
  );
  dma_engine_c{i} u_dma (
    .clk(clk), .rst_n(mem_rst_n), .go(dma_go), .unlock(mem_unlock),
    .src(32'h00000100), .dst(32'h00000200), .len(8'd4),
    .bus_addr(m1_addr), .bus_wdata(m1_wdata), .bus_rdata(m1_rdata),
    .bus_we(m1_we), .bus_stb(m1_stb), .bus_ack(m1_ack),
    .busy(), .desc_lock()
  );
  wb_fabric_c{i} u_fabric (
    .clk(clk), .rst_n(rst_n), .bus_unlock(bus_unlock),
    .m0_addr(m0_addr), .m0_wdata(m0_wdata), .m0_rdata(m0_rdata),
    .m0_we(m0_we), .m0_stb(m0_stb), .m0_ack(m0_ack),
    .m1_addr(m1_addr), .m1_wdata(m1_wdata), .m1_rdata(m1_rdata),
    .m1_we(m1_we), .m1_stb(m1_stb), .m1_ack(m1_ack),
    .s0_addr(s0_addr), .s0_wdata(s0_wdata), .s0_rdata(s0_rdata),
    .s0_we(s0_we), .s0_stb(s0_stb), .s0_ack(s0_ack),
    .s1_addr(s1_addr), .s1_wdata(s1_wdata), .s1_rdata(s1_rdata),
    .s1_we(s1_we), .s1_stb(s1_stb), .s1_ack(s1_ack),
    .prot_mask(prot_mask_w), .bus_viol(bus_viol)
  );
  sram_sp_c{i} #(.AW(14)) u_sram0 (
    .clk(clk), .rst_n(mem_rst_n),
    .stb(s0_stb), .we(s0_we), .unlock(mem_unlock),
    .addr(s0_addr[15:2]), .wdata(s0_wdata), .rdata(s0_rdata),
    .ack(s0_ack), .prot_en(), .viol()
  );
  sram_dp_c{i} #(.AW(14)) u_sram1 (
    .clk(clk), .rst_n(mem_rst_n),
    .a_stb(s1_stb), .a_we(s1_we), .unlock(mem_unlock),
    .a_addr(s1_addr[15:2]), .a_wdata(s1_wdata), .a_rdata(s1_rdata),
    .a_ack(s1_ack),
    .b_stb(1'b0), .b_addr(14'd0), .b_rdata(), .b_ack(),
    .prot_en(), .viol()
  );
  {e0}_c{i} u_{e0} (
    .clk(clk), .rst_n(crypto_rst_n), .start(tst_start[0]),
    .key_in(tst_key), .pt_in(tst_pt),
    .ct_out(), .busy(), .done(done[0]), .leak_obs(leak[0])
  );
  {e1}_c{i} u_{e1} (
    .clk(clk), .rst_n(crypto_rst_n), .start(tst_start[1]),
    .key_in(tst_key), .pt_in(tst_pt),
    .ct_out(), .busy(), .done(done[1]), .leak_obs(leak[1])
  );
  {dsp}_c{i} u_dsp (
    .clk(clk), .rst_n(rst_n),
    .in_valid(tst_start[0]), .in_sample(tst_pt[15:0]),
    {dsp_ports}
  );
  {periph_inst}
  tst_gate_c{i} u_gate (
    .clk(clk), .rst_n(rst_n), .magic(tst_magic),
    .armed(gate_armed), .beat()
  );
endmodule
",
        e0 = plan.engines[0],
        e1 = plan.engines[1],
        dsp = plan.dsp,
    );
}

fn cluster_checks(checks: &mut Vec<CheckSpec>, i: u32, plan: &ClusterPlan, domain: &str) {
    let top = format!("gen_soc.u_c{i}");
    for e in plan.engines {
        let inst = format!("{top}.u_{e}");
        checks.push(CheckSpec {
            name: format!("c{i}-{e}-key-cleared"),
            module: format!("{e}_c{i}"),
            domain: "gen_soc.crypto_rst_n".to_owned(),
            kind: CheckKind::SecretCleared {
                signal: format!("{inst}.key_reg"),
                width: 192,
            },
        });
        checks.push(CheckSpec {
            name: format!("c{i}-{e}-pt-cleared"),
            module: format!("{e}_c{i}"),
            domain: "gen_soc.crypto_rst_n".to_owned(),
            kind: CheckKind::SecretCleared {
                signal: format!("{inst}.pt_reg"),
                width: 64,
            },
        });
        checks.push(CheckSpec {
            name: format!("c{i}-{e}-no-leak"),
            module: format!("{e}_c{i}"),
            domain: "gen_soc.crypto_rst_n".to_owned(),
            kind: CheckKind::NeverFlagged {
                signal: format!("{inst}.leak_obs"),
            },
        });
    }
    checks.push(CheckSpec {
        name: format!("c{i}-sram0-guard-armed"),
        module: format!("sram_sp_c{i}"),
        domain: "gen_soc.mem_rst_n".to_owned(),
        kind: CheckKind::GuardArmed {
            signal: format!("{top}.u_sram0.prot_en"),
        },
    });
    checks.push(CheckSpec {
        name: format!("c{i}-sram1-guard-armed"),
        module: format!("sram_dp_c{i}"),
        domain: "gen_soc.mem_rst_n".to_owned(),
        kind: CheckKind::GuardArmed {
            signal: format!("{top}.u_sram1.prot_en"),
        },
    });
    checks.push(CheckSpec {
        name: format!("c{i}-dma-lock-armed"),
        module: format!("dma_engine_c{i}"),
        domain: "gen_soc.mem_rst_n".to_owned(),
        kind: CheckKind::GuardArmed {
            signal: format!("{top}.u_dma.desc_lock"),
        },
    });
    checks.push(CheckSpec {
        name: format!("c{i}-bus-mask-armed"),
        module: format!("wb_fabric_c{i}"),
        domain: domain.to_owned(),
        kind: CheckKind::GuardArmed {
            signal: format!("{top}.u_fabric.prot_mask"),
        },
    });
    checks.push(CheckSpec {
        name: format!("c{i}-priv-legal"),
        module: format!("{}_c{i}", plan.core.module_name()),
        domain: domain.to_owned(),
        kind: CheckKind::LegalValues {
            signal: format!("{top}.u_cpu.priv_mode"),
            width: 2,
            allowed: vec![0b00, 0b01, 0b11],
        },
    });
}

/// The second interconnect tier: a shared fabric with a shared DMA
/// master and a shared SRAM slave, always clean (the manifest only
/// claims cluster bugs).
fn emit_shared(src: &mut String, modules: &mut u32, checks: &mut Vec<CheckSpec>) {
    src.push_str(&uniquify(
        &sram::sram_sp(MemoryBug::None),
        "sram_sp",
        "sram_sp_shr",
    ));
    src.push_str(&uniquify(
        &dma::dma(MemoryBug::None),
        "dma_engine",
        "dma_engine_shr",
    ));
    src.push_str(&wishbone::wb_fabric("wb_fabric_top", 2, 1, BusBug::None));
    *modules += 3;
    checks.push(CheckSpec {
        name: "shr-sram-guard-armed".to_owned(),
        module: "sram_sp_shr".to_owned(),
        domain: "gen_soc.mem_rst_n".to_owned(),
        kind: CheckKind::GuardArmed {
            signal: "gen_soc.u_sram_shr.prot_en".to_owned(),
        },
    });
    checks.push(CheckSpec {
        name: "shr-dma-lock-armed".to_owned(),
        module: "dma_engine_shr".to_owned(),
        domain: "gen_soc.sys_rst_n".to_owned(),
        kind: CheckKind::GuardArmed {
            signal: "gen_soc.u_dma_shr.desc_lock".to_owned(),
        },
    });
    checks.push(CheckSpec {
        name: "top-bus-mask-armed".to_owned(),
        module: "wb_fabric_top".to_owned(),
        domain: "gen_soc.sys_rst_n".to_owned(),
        kind: CheckKind::GuardArmed {
            signal: "gen_soc.u_bus_top.prot_mask".to_owned(),
        },
    });
}

#[allow(clippy::too_many_lines)]
fn emit_top(src: &mut String, modules: &mut u32, scale: u32, g: u32) {
    let n = scale;
    let mut ports = String::new();
    for k in 0..g {
        let _ = writeln!(ports, "  input g{k}_rst_n,");
    }
    let mut body = String::new();
    for i in 0..n {
        let _ = writeln!(
            body,
            "  wire [1:0] c{i}_priv;\n  wire c{i}_viol;\n  wire [1:0] c{i}_done;\n  \
             wire [1:0] c{i}_leak;\n  wire c{i}_armed;"
        );
    }
    for i in 0..n {
        let _ = writeln!(
            body,
            "  cluster_c{i} u_c{i} (
    .clk(clk), .rst_n(g{k}_rst_n), .mem_rst_n(mem_rst_n), .crypto_rst_n(crypto_rst_n),
    .bus_unlock(bus_unlock), .mem_unlock(mem_unlock),
    .tst_key(tst_key), .tst_pt(tst_pt), .tst_start(tst_start[1:0]), .tst_magic(tst_magic),
    .dma_go(tst_start[2]),
    .priv(c{i}_priv), .bus_viol(c{i}_viol),
    .done(c{i}_done), .leak(c{i}_leak), .gate_armed(c{i}_armed)
  );",
            k = i % g
        );
    }
    // The shared tier: DMA master 0, tied-off master 1, one SRAM slave.
    body.push_str(
        "  wire [31:0] t0_addr;
  wire [31:0] t0_wdata;
  wire [31:0] t0_rdata;
  wire t0_we;
  wire t0_stb;
  wire t0_ack;
  wire [31:0] ts0_addr;
  wire [31:0] ts0_wdata;
  wire [31:0] ts0_rdata;
  wire ts0_we;
  wire ts0_stb;
  wire ts0_ack;
  wire [0:0] shr_mask_w;
  dma_engine_shr u_dma_shr (
    .clk(clk), .rst_n(sys_rst_n), .go(tst_start[3]), .unlock(mem_unlock),
    .src(32'h00000400), .dst(32'h00000800), .len(8'd4),
    .bus_addr(t0_addr), .bus_wdata(t0_wdata), .bus_rdata(t0_rdata),
    .bus_we(t0_we), .bus_stb(t0_stb), .bus_ack(t0_ack),
    .busy(), .desc_lock()
  );
  wb_fabric_top u_bus_top (
    .clk(clk), .rst_n(sys_rst_n), .bus_unlock(bus_unlock),
    .m0_addr(t0_addr), .m0_wdata(t0_wdata), .m0_rdata(t0_rdata),
    .m0_we(t0_we), .m0_stb(t0_stb), .m0_ack(t0_ack),
    .m1_addr(32'd0), .m1_wdata(32'd0), .m1_rdata(),
    .m1_we(1'b0), .m1_stb(1'b0), .m1_ack(),
    .s0_addr(ts0_addr), .s0_wdata(ts0_wdata), .s0_rdata(ts0_rdata),
    .s0_we(ts0_we), .s0_stb(ts0_stb), .s0_ack(ts0_ack),
    .prot_mask(shr_mask_w), .bus_viol(shr_bus_viol)
  );
  sram_sp_shr #(.AW(14)) u_sram_shr (
    .clk(clk), .rst_n(mem_rst_n),
    .stb(ts0_stb), .we(ts0_we), .unlock(mem_unlock),
    .addr(ts0_addr[15:2]), .wdata(ts0_wdata), .rdata(ts0_rdata),
    .ack(ts0_ack), .prot_en(), .viol()
  );
",
    );
    let concat = |field: &str| {
        let parts: Vec<String> = (0..n).rev().map(|i| format!("c{i}_{field}")).collect();
        parts.join(", ")
    };
    let _ = writeln!(body, "  assign priv_all = {{{}}};", concat("priv"));
    let _ = writeln!(body, "  assign viol_all = {{{}}};", concat("viol"));
    let _ = writeln!(body, "  assign done_all = {{{}}};", concat("done"));
    let _ = writeln!(body, "  assign leak_all = {{{}}};", concat("leak"));
    let _ = writeln!(body, "  assign armed_all = {{{}}};", concat("armed"));
    let _ = write!(
        src,
        "module gen_soc(
  input clk,
  input sys_rst_n,
  input mem_rst_n,
  input crypto_rst_n,
{ports}  input bus_unlock,
  input mem_unlock,
  input [63:0] tst_key,
  input [63:0] tst_pt,
  input [3:0] tst_start,
  input [7:0] tst_magic,
  output [{pw}:0] priv_all,
  output [{nw}:0] viol_all,
  output [{pw}:0] done_all,
  output [{pw}:0] leak_all,
  output [{nw}:0] armed_all,
  output shr_bus_viol
);
{body}endmodule
",
        pw = 2 * n - 1,
        nw = n - 1,
    );
    *modules += 1;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        let spec = GenSpec::parse("gen:7:4").expect("parse");
        assert_eq!(spec, GenSpec { seed: 7, scale: 4 });
        assert_eq!(spec.name(), "gen:7:4");
        assert_eq!(spec.slug(), "gen_7_4");
        assert!(GenSpec::parse("gen:7").is_err());
        assert!(GenSpec::parse("gen:x:4").is_err());
        assert!(GenSpec::parse("gen:7:0").is_err());
        assert!(GenSpec::parse("gen:7:999").is_err());
        assert!(GenSpec::parse("clustersoc").is_err());
    }

    #[test]
    fn generation_is_byte_deterministic() {
        let spec = GenSpec { seed: 42, scale: 3 };
        let a = generate(&spec);
        let b = generate(&spec);
        assert_eq!(a.source, b.source);
        assert_eq!(a.manifest.to_json(), b.manifest.to_json());
        assert_eq!(a.checks, b.checks);
        assert_eq!(a.symbolic, b.symbolic);
    }

    #[test]
    fn seeds_and_scales_change_the_topology() {
        let base = generate(&GenSpec { seed: 1, scale: 2 }).source;
        assert_ne!(base, generate(&GenSpec { seed: 2, scale: 2 }).source);
        assert_ne!(base, generate(&GenSpec { seed: 1, scale: 3 }).source);
    }

    #[test]
    fn module_count_matches_the_manifest() {
        for spec in [GenSpec { seed: 5, scale: 1 }, GenSpec { seed: 5, scale: 4 }] {
            let gen = generate(&spec);
            let declared = gen.source.matches("\nmodule ").count()
                + usize::from(gen.source.starts_with("module "));
            assert_eq!(gen.manifest.modules as usize, declared, "{}", spec.name());
            assert_eq!(gen.manifest.modules, 11 * spec.scale + 4);
        }
    }

    #[test]
    fn every_generated_design_has_ground_truth() {
        for spec in pinned_sweep() {
            let gen = generate(&spec);
            assert!(
                !gen.manifest.bugs.is_empty(),
                "{}: a generated design always carries at least one bug",
                spec.name()
            );
            assert!(gen.source.contains("BUG("), "{}", spec.name());
            for bug in &gen.manifest.bugs {
                assert!(!bug.detectors.is_empty(), "{}", bug.describe());
                let class = crate::catalog::classify(&bug.module)
                    .unwrap_or_else(|| panic!("unclassified {}", bug.module));
                assert_eq!(class.violation(), Some(bug.violation), "{}", bug.describe());
            }
        }
    }

    #[test]
    fn generated_designs_elaborate_and_checks_resolve() {
        let gen = generate(&GenSpec { seed: 29, scale: 2 });
        let (d, _) =
            soccar_rtl::compile("gen.v", &gen.source, &gen.top).unwrap_or_else(|e| panic!("{e}"));
        for check in &gen.checks {
            let signal = match &check.kind {
                CheckKind::SecretCleared { signal, .. }
                | CheckKind::GuardArmed { signal }
                | CheckKind::LegalValues { signal, .. }
                | CheckKind::NeverFlagged { signal } => signal,
            };
            assert!(
                d.find_net(signal).is_some(),
                "check `{}` references missing `{signal}`",
                check.name
            );
            assert!(
                d.find_net(&check.domain).is_some(),
                "check `{}` references missing domain `{}`",
                check.name,
                check.domain
            );
        }
        for name in &gen.symbolic {
            assert!(d.find_net(name).is_some(), "missing input {name}");
        }
        for bug in &gen.manifest.bugs {
            assert!(
                d.instances().iter().any(|inst| inst.name == bug.instance),
                "manifest bug instance `{}` not in the design",
                bug.instance
            );
        }
    }

    #[test]
    fn manifest_json_is_stable_and_parsable_shape() {
        let gen = generate(&GenSpec { seed: 3, scale: 1 });
        let json = gen.manifest.to_json();
        assert!(json.contains("\"name\": \"gen:3:1\""));
        assert!(json.contains("\"seed\": 3"));
        assert!(json.contains("\"bugs\": ["));
        assert_eq!(
            json.matches("\"cluster\":").count(),
            gen.manifest.bugs.len()
        );
    }

    #[test]
    fn check_names_are_unique() {
        let gen = generate(&GenSpec { seed: 11, scale: 4 });
        let mut names: Vec<&str> = gen.checks.iter().map(|c| c.name.as_str()).collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate check names");
        // 11 per cluster + 3 shared.
        assert_eq!(before, 11 * 4 + 3);
    }
}
