//! End-to-end acceptance check: the `implicit-governor` rule statically
//! flags the implicit-reset construct seeded into the SHA256 engine of
//! AutoSoC Variant #2 — the Section V-C blind spot that Explicit AR_CFG
//! extraction (and hence the Explicit concolic pipeline) misses.

use soccar_lint::Linter;
use soccar_soc::{generate, SocModel};

#[test]
fn implicit_governor_flags_autosoc_variant_2_sha256() {
    let design = generate(SocModel::AutoSoc, Some(2));
    let report = Linter::new()
        .lint_source("autosoc_v2.v", &design.source)
        .expect("generated SoC parses");
    let hit = report
        .diagnostics
        .iter()
        .find(|d| d.rule == "implicit-governor" && d.module.contains("sha256"));
    assert!(
        hit.is_some(),
        "implicit-governor should flag the sha256 engine; diagnostics: {:#?}",
        report.diagnostics
    );
}

#[test]
fn implicit_governor_silent_on_clean_autosoc() {
    let design = generate(SocModel::AutoSoc, None);
    let report = Linter::new()
        .lint_source("autosoc_clean.v", &design.source)
        .expect("generated SoC parses");
    assert!(
        report
            .diagnostics
            .iter()
            .all(|d| d.rule != "implicit-governor"),
        "clean AutoSoC must not trip implicit-governor"
    );
}
