//! AR_CFG generation — the paper's **Algorithm 1**.
//!
//! For each module the extractor builds the full CFG of hardware events
//! (one event per procedural arm, with its governing condition `v`), then
//! projects out the events governed by asynchronous resets:
//!
//! 1. every `always` block is a hardware event source; its sensitivity
//!    list and leading conditional establish the governors;
//! 2. a *subCFG* connects a governor `v` to the events `e` it gates;
//! 3. the AR_CFG `AR[M_i]` keeps only events whose governor involves an
//!    identified reset signal.
//!
//! Two analysis levels mirror the paper:
//!
//! * [`GovernorAnalysis::Explicit`] — the published tool: a reset governs
//!   an event only when it appears edge-qualified in the sensitivity list
//!   **and** the block's leading conditional tests it. This is the rule
//!   that *misses* the implicit-governor SHA256 bug of AutoSoC Variant #2
//!   (Section V-C), and we reproduce that miss faithfully.
//! * [`GovernorAnalysis::Refined`] — the paper's proposed extension
//!   ("more refined comprehension of the RTL constructs and in particular
//!   the interplay of clock and asynchronous resets to create implicit
//!   governors"): a reset edge in the sensitivity list governs the whole
//!   block even without an explicit leading test, including blocks where
//!   the reset is composed with a clock level.

use soccar_rtl::ast::{AlwaysBlock, Expr, Module, Sensitivity, SourceUnit, Stmt};
use soccar_rtl::span::Span;

use crate::reset_id::{identify_resets, leading_if, ResetNaming, ResetSignal};

/// Which governor-detection rules to apply (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum GovernorAnalysis {
    /// The paper's published extraction rules.
    #[default]
    Explicit,
    /// The paper's proposed implicit-governor extension.
    Refined,
}

/// Identifies an extracted event within a module: `always` block index
/// plus arm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventArm {
    /// The reset arm of a guarded block (`if (!rst_n) ...`).
    ResetArm,
    /// The operational (non-reset) arm.
    OperationalArm,
    /// The entire block (implicit governor; Refined mode only).
    WholeBlock,
}

/// How a reset governs an event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Governor {
    /// The governing reset signal (local name).
    pub reset: String,
    /// Assertion polarity.
    pub active_low: bool,
    /// `true` if the governor is explicit (leading conditional tests the
    /// reset), `false` for implicit governors.
    pub explicit: bool,
    /// `true` if the event is additionally gated by a clock *level* inside
    /// the block (the SHA256-bug construct).
    pub composed_with_clock: bool,
}

/// A hardware event `e` of the paper: one procedural arm with its
/// governing condition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HardwareEvent {
    /// Declaring module.
    pub module: String,
    /// Index among the module's `always` blocks.
    pub always_index: u32,
    /// Which arm of the block.
    pub arm: EventArm,
    /// The reset governor, if this event is reset-governed.
    pub governor: Option<Governor>,
    /// Signals assigned within the arm (payload surface).
    pub assigned: Vec<String>,
    /// Source location of the arm.
    pub span: Span,
}

/// The full CFG of one module (`[M_i]` in Algorithm 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModuleCfg {
    /// Module name.
    pub module: String,
    /// All extracted events.
    pub events: Vec<HardwareEvent>,
    /// Identified reset signals.
    pub resets: Vec<ResetSignal>,
}

/// The asynchronous-reset projection (`AR[M_i]`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArCfg {
    /// Module name.
    pub module: String,
    /// Reset-governed events only.
    pub events: Vec<HardwareEvent>,
    /// Identified reset signals.
    pub resets: Vec<ResetSignal>,
}

impl ArCfg {
    /// `true` if the module has no reset-governed events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Extracts the full CFG of `module` (Algorithm 1, lines 2–9).
#[must_use]
pub fn extract_module_cfg(
    module: &Module,
    naming: &ResetNaming,
    analysis: GovernorAnalysis,
) -> ModuleCfg {
    let resets = identify_resets(module, naming);
    let mut events = Vec::new();
    for (idx, block) in module.always_blocks().enumerate() {
        extract_block_events(
            module,
            idx as u32,
            block,
            &resets,
            naming,
            analysis,
            &mut events,
        );
    }
    ModuleCfg {
        module: module.name.clone(),
        events,
        resets,
    }
}

/// Projects the AR_CFG out of a full module CFG (Algorithm 1, lines 10–15).
#[must_use]
pub fn project_ar_cfg(cfg: &ModuleCfg) -> ArCfg {
    ArCfg {
        module: cfg.module.clone(),
        events: cfg
            .events
            .iter()
            .filter(|e| e.governor.is_some())
            .cloned()
            .collect(),
        resets: cfg.resets.clone(),
    }
}

/// Convenience: extract and project every module of a source unit.
#[must_use]
pub fn extract_all(
    unit: &SourceUnit,
    naming: &ResetNaming,
    analysis: GovernorAnalysis,
) -> Vec<(ModuleCfg, ArCfg)> {
    extract_all_jobs(unit, naming, analysis, 1).0
}

/// Like [`extract_all`], fanning the per-module extraction (Algorithm 1 is
/// embarrassingly parallel across modules) over up to `jobs` workers.
///
/// Results come back in source order regardless of `jobs` — the pool
/// merges by module index, never by completion order — so the downstream
/// serial compose step sees an identical input either way. Also returns
/// the pool's utilization counters for stage reporting.
#[must_use]
pub fn extract_all_jobs(
    unit: &SourceUnit,
    naming: &ResetNaming,
    analysis: GovernorAnalysis,
    jobs: usize,
) -> (Vec<(ModuleCfg, ArCfg)>, soccar_exec::PoolStats) {
    let (cfgs, stats, reasons) = extract_all_resilient(
        unit,
        naming,
        analysis,
        jobs,
        soccar_exec::FailurePolicy::FailFast,
        &soccar_exec::FaultPlan::default(),
    );
    debug_assert!(reasons.is_empty(), "FailFast never degrades");
    (cfgs, stats)
}

/// Like [`extract_all_jobs`] under an explicit [`FailurePolicy`] and
/// [`FaultPlan`].
///
/// Under [`FailurePolicy::KeepGoing`] a module whose extraction panics
/// contributes an *empty* CFG (its name resolves, it governs nothing)
/// plus a degradation reason, instead of aborting the stage. The fault
/// plan's `task_panic@extract:N` point fires on the 1-based *source
/// index* of the module — a deterministic key, independent of worker
/// scheduling.
///
/// [`FailurePolicy`]: soccar_exec::FailurePolicy
/// [`FaultPlan`]: soccar_exec::FaultPlan
/// [`FailurePolicy::KeepGoing`]: soccar_exec::FailurePolicy::KeepGoing
#[must_use]
pub fn extract_all_resilient(
    unit: &SourceUnit,
    naming: &ResetNaming,
    analysis: GovernorAnalysis,
    jobs: usize,
    policy: soccar_exec::FailurePolicy,
    plan: &soccar_exec::FaultPlan,
) -> (Vec<(ModuleCfg, ArCfg)>, soccar_exec::PoolStats, Vec<String>) {
    let items: Vec<(u64, &Module)> = unit
        .modules
        .iter()
        .enumerate()
        .map(|(i, m)| ((i + 1) as u64, m))
        .collect();
    let (outcomes, stats) = soccar_exec::parallel_map_policy(jobs, &items, policy, |(idx, m)| {
        if plan.should_inject("task_panic:extract", *idx) {
            panic!("injected fault: task_panic@extract:{idx}");
        }
        let cfg = extract_module_cfg(m, naming, analysis);
        let ar = project_ar_cfg(&cfg);
        (cfg, ar)
    });
    let mut reasons = Vec::new();
    let cfgs = outcomes
        .into_iter()
        .zip(&items)
        .map(|(outcome, (_, m))| match outcome {
            soccar_exec::TaskOutcome::Ok(pair) => pair,
            soccar_exec::TaskOutcome::Failed { panic } => {
                reasons.push(format!("module `{}`: extraction failed: {panic}", m.name));
                (
                    ModuleCfg {
                        module: m.name.clone(),
                        events: Vec::new(),
                        resets: Vec::new(),
                    },
                    ArCfg {
                        module: m.name.clone(),
                        events: Vec::new(),
                        resets: Vec::new(),
                    },
                )
            }
        })
        .collect();
    (cfgs, stats, reasons)
}

fn extract_block_events(
    module: &Module,
    always_index: u32,
    block: &AlwaysBlock,
    resets: &[ResetSignal],
    naming: &ResetNaming,
    analysis: GovernorAnalysis,
    out: &mut Vec<HardwareEvent>,
) {
    let edge_resets: Vec<&ResetSignal> = match &block.sensitivity {
        Sensitivity::List(items) => items
            .iter()
            .filter(|i| i.edge.is_some())
            .filter_map(|i| resets.iter().find(|r| r.name == i.signal))
            .collect(),
        Sensitivity::Star => Vec::new(),
    };

    // Case A: edge-sensitive block with a reset in the sensitivity list.
    if !edge_resets.is_empty() {
        if let Some((cond, then_stmt, else_stmt)) = leading_if(&block.body) {
            if let Some(reset) = edge_resets.iter().find(|r| cond.is_signal_test(&r.name)) {
                // Explicit governor: classic reset template.
                out.push(HardwareEvent {
                    module: module.name.clone(),
                    always_index,
                    arm: EventArm::ResetArm,
                    governor: Some(Governor {
                        reset: reset.name.clone(),
                        active_low: reset.active_low,
                        explicit: true,
                        composed_with_clock: false,
                    }),
                    assigned: assigned_signals(then_stmt),
                    span: then_stmt.span(),
                });
                out.push(HardwareEvent {
                    module: module.name.clone(),
                    always_index,
                    arm: EventArm::OperationalArm,
                    governor: None,
                    assigned: else_stmt.map(assigned_signals).unwrap_or_default(),
                    span: else_stmt.map_or(block.span, Stmt::span),
                });
                return;
            }
        }
        // No leading test of the reset: implicit governor. The Explicit
        // analysis cannot see it — the exact blind spot of Section V-C.
        match analysis {
            GovernorAnalysis::Explicit => {
                out.push(HardwareEvent {
                    module: module.name.clone(),
                    always_index,
                    arm: EventArm::WholeBlock,
                    governor: None, // missed
                    assigned: assigned_signals(&block.body),
                    span: block.span,
                });
            }
            GovernorAnalysis::Refined => {
                let reset = edge_resets[0];
                let composed = tests_clock_level(&block.body, naming);
                out.push(HardwareEvent {
                    module: module.name.clone(),
                    always_index,
                    arm: EventArm::WholeBlock,
                    governor: Some(Governor {
                        reset: reset.name.clone(),
                        active_low: reset.active_low,
                        explicit: false,
                        composed_with_clock: composed,
                    }),
                    assigned: assigned_signals(&block.body),
                    span: block.span,
                });
            }
        }
        return;
    }

    // Case B: combinational / level block testing a reset in its leading
    // conditional (synchronous-style reset logic): explicit governor.
    if let Some((cond, then_stmt, else_stmt)) = leading_if(&block.body) {
        if let Some(reset) = resets.iter().find(|r| cond.is_signal_test(&r.name)) {
            out.push(HardwareEvent {
                module: module.name.clone(),
                always_index,
                arm: EventArm::ResetArm,
                governor: Some(Governor {
                    reset: reset.name.clone(),
                    active_low: reset.active_low,
                    explicit: true,
                    composed_with_clock: false,
                }),
                assigned: assigned_signals(then_stmt),
                span: then_stmt.span(),
            });
            out.push(HardwareEvent {
                module: module.name.clone(),
                always_index,
                arm: EventArm::OperationalArm,
                governor: None,
                assigned: else_stmt.map(assigned_signals).unwrap_or_default(),
                span: else_stmt.map_or(block.span, Stmt::span),
            });
            return;
        }
    }

    // Case C: ordinary block, no reset involvement.
    out.push(HardwareEvent {
        module: module.name.clone(),
        always_index,
        arm: EventArm::WholeBlock,
        governor: None,
        assigned: assigned_signals(&block.body),
        span: block.span,
    });
}

/// Collects target signal base names assigned anywhere in `stmt`.
#[must_use]
pub fn assigned_signals(stmt: &Stmt) -> Vec<String> {
    let mut out = Vec::new();
    walk_assigned(stmt, &mut out);
    out.sort();
    out.dedup();
    out
}

fn walk_assigned(stmt: &Stmt, out: &mut Vec<String>) {
    match stmt {
        Stmt::Block { stmts, .. } => {
            for s in stmts {
                walk_assigned(s, out);
            }
        }
        Stmt::If {
            then_stmt,
            else_stmt,
            ..
        } => {
            walk_assigned(then_stmt, out);
            if let Some(e) = else_stmt {
                walk_assigned(e, out);
            }
        }
        Stmt::Case { arms, .. } => {
            for arm in arms {
                walk_assigned(&arm.body, out);
            }
        }
        Stmt::Blocking { lhs, .. } | Stmt::NonBlocking { lhs, .. } => {
            lvalue_bases(lhs, out);
        }
        Stmt::For { var, body, .. } => {
            out.push(var.clone());
            walk_assigned(body, out);
        }
        Stmt::Null { .. } => {}
    }
}

fn lvalue_bases(e: &Expr, out: &mut Vec<String>) {
    match e {
        Expr::Ident { name, .. } => out.push(name.clone()),
        Expr::Index { base, .. }
        | Expr::PartSelect { base, .. }
        | Expr::IndexedPartSelect { base, .. } => out.push(base.clone()),
        Expr::Concat { parts, .. } => {
            for p in parts {
                lvalue_bases(p, out);
            }
        }
        _ => {}
    }
}

/// `true` if any `if` condition inside `stmt` tests a clock-named signal
/// at level (the clock-composition marker of the SHA256 construct).
///
/// Public so the lint rules (`implicit-governor`) can classify the same
/// construct the Refined extraction recognizes.
#[must_use]
pub fn tests_clock_level(stmt: &Stmt, naming: &ResetNaming) -> bool {
    match stmt {
        Stmt::Block { stmts, .. } => stmts.iter().any(|s| tests_clock_level(s, naming)),
        Stmt::If {
            cond,
            then_stmt,
            else_stmt,
            ..
        } => {
            let mut reads = Vec::new();
            cond.collect_reads(&mut reads);
            reads.iter().any(|r| naming.is_clock_name(r))
                || tests_clock_level(then_stmt, naming)
                || else_stmt
                    .as_deref()
                    .is_some_and(|e| tests_clock_level(e, naming))
        }
        Stmt::Case { arms, .. } => arms.iter().any(|a| tests_clock_level(&a.body, naming)),
        Stmt::For { body, .. } => tests_clock_level(body, naming),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soccar_rtl::parser::parse;
    use soccar_rtl::span::FileId;

    fn extract(src: &str, analysis: GovernorAnalysis) -> (ModuleCfg, ArCfg) {
        let unit = parse(FileId(0), src).expect("parse");
        let cfg = extract_module_cfg(&unit.modules[0], &ResetNaming::new(), analysis);
        let ar = project_ar_cfg(&cfg);
        (cfg, ar)
    }

    const CLASSIC: &str = "module m(input clk, rst_n, input [7:0] d, output reg [7:0] q, k);
        always @(posedge clk or negedge rst_n)
          if (!rst_n) begin q <= 8'd0; end
          else begin q <= d; k <= d; end
      endmodule";

    #[test]
    fn classic_reset_template_extracted() {
        let (cfg, ar) = extract(CLASSIC, GovernorAnalysis::Explicit);
        assert_eq!(cfg.events.len(), 2);
        assert_eq!(ar.events.len(), 1);
        let ev = &ar.events[0];
        assert_eq!(ev.arm, EventArm::ResetArm);
        let g = ev.governor.as_ref().expect("governed");
        assert_eq!(g.reset, "rst_n");
        assert!(g.explicit);
        assert!(g.active_low);
        assert_eq!(ev.assigned, vec!["q".to_owned()]);
        // Operational arm assigns both.
        let op = cfg
            .events
            .iter()
            .find(|e| e.arm == EventArm::OperationalArm)
            .expect("op arm");
        assert_eq!(op.assigned, vec!["k".to_owned(), "q".to_owned()]);
    }

    #[test]
    fn plain_clocked_block_not_in_ar_cfg() {
        let (cfg, ar) = extract(
            "module m(input clk, input [3:0] d, output reg [3:0] q);
               always @(posedge clk) q <= d;
             endmodule",
            GovernorAnalysis::Explicit,
        );
        assert_eq!(cfg.events.len(), 1);
        assert!(ar.is_empty());
    }

    const IMPLICIT: &str =
        "module sha(input clk, input sec_rst_n, input [7:0] pt, output reg [7:0] ct);
        always @(negedge sec_rst_n)
          if (clk) ct <= pt;
      endmodule";

    #[test]
    fn implicit_governor_missed_by_explicit_analysis() {
        // The Section V-C blind spot, reproduced.
        let (cfg, ar) = extract(IMPLICIT, GovernorAnalysis::Explicit);
        assert_eq!(cfg.events.len(), 1);
        assert!(
            ar.is_empty(),
            "explicit analysis must miss the implicit governor"
        );
    }

    #[test]
    fn implicit_governor_found_by_refined_analysis() {
        let (_, ar) = extract(IMPLICIT, GovernorAnalysis::Refined);
        assert_eq!(ar.events.len(), 1);
        let g = ar.events[0].governor.as_ref().expect("governed");
        assert!(!g.explicit);
        assert!(g.composed_with_clock);
        assert_eq!(ar.events[0].arm, EventArm::WholeBlock);
    }

    #[test]
    fn combinational_reset_logic_is_governed() {
        let (_, ar) = extract(
            "module m(input rst_n, input [3:0] d, output reg [3:0] y);
               always @* if (!rst_n) y = 4'd0; else y = d;
             endmodule",
            GovernorAnalysis::Explicit,
        );
        assert_eq!(ar.events.len(), 1);
        assert!(ar.events[0].governor.as_ref().expect("g").explicit);
    }

    #[test]
    fn multiple_blocks_indexed() {
        let src = "module m(input clk, rst_n, input [3:0] d, output reg [3:0] a, b);
            always @(posedge clk or negedge rst_n)
              if (!rst_n) a <= 4'd0; else a <= d;
            always @(posedge clk) b <= d;
          endmodule";
        let (cfg, ar) = extract(src, GovernorAnalysis::Explicit);
        assert_eq!(cfg.events.len(), 3);
        assert_eq!(ar.events.len(), 1);
        assert_eq!(ar.events[0].always_index, 0);
    }

    #[test]
    fn active_high_reset_governor() {
        let (_, ar) = extract(
            "module m(input clk, input reset, output reg q);
               always @(posedge clk or posedge reset)
                 if (reset) q <= 1'b0; else q <= 1'b1;
             endmodule",
            GovernorAnalysis::Explicit,
        );
        let g = ar.events[0].governor.as_ref().expect("g");
        assert!(!g.active_low);
    }

    #[test]
    fn extract_all_covers_every_module() {
        let unit = parse(FileId(0), &format!("{CLASSIC} {IMPLICIT}")).expect("parse");
        let all = extract_all(&unit, &ResetNaming::new(), GovernorAnalysis::Explicit);
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].1.events.len(), 1);
        assert!(all[1].1.is_empty());
    }

    #[test]
    fn case_and_for_assignments_collected() {
        let (cfg, _) = extract(
            "module m(input clk, input [1:0] s, output reg [3:0] a, b);
               integer i;
               always @(posedge clk) begin
                 case (s)
                   2'd0: a <= 4'd1;
                   default: b <= 4'd2;
                 endcase
                 for (i = 0; i < 2; i = i + 1) a <= a + 4'd1;
               end
             endmodule",
            GovernorAnalysis::Explicit,
        );
        let ev = &cfg.events[0];
        assert!(ev.assigned.contains(&"a".to_owned()));
        assert!(ev.assigned.contains(&"b".to_owned()));
        assert!(ev.assigned.contains(&"i".to_owned()));
    }
}
