//! **Table II** — Classification of IP class and violation types.

use soccar_bench::render_table;
use soccar_soc::catalog::table_ii;

fn main() {
    let rows: Vec<Vec<String>> = table_ii()
        .into_iter()
        .map(|class| {
            vec![
                class.name().to_owned(),
                class.example_ips().join(", "),
                class
                    .violation()
                    .map_or_else(|| "-".to_owned(), |v| format!("{v}.")),
            ]
        })
        .collect();
    println!("Table II — Classification of IP class and violation types");
    println!(
        "{}",
        render_table(&["IP Class", "Example IPs", "Violation Type"], &rows)
    );
}
