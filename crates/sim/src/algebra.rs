//! The value algebra abstraction.
//!
//! The simulator's interpreter is generic over an [`Algebra`]: a factory for
//! values and operations on them. The concrete simulator uses
//! [`ConcreteAlgebra`] whose values are plain [`LogicVec`]s; the concolic
//! engine (in `soccar-concolic`) supplies a *co-simulation* algebra whose
//! values pair a `LogicVec` with an optional symbolic term, and whose
//! [`Algebra::on_branch`] hook records path constraints. One interpreter,
//! two executions — exactly the "concrete execution with symbolic
//! piggybacking" of concolic testing.

use soccar_rtl::ast::{BinaryOp, UnaryOp};
use soccar_rtl::design::BranchSiteId;
use soccar_rtl::value::LogicVec;

/// Factory and operation set for simulation values.
///
/// Every value carries a concrete [`LogicVec`] interpretation (exposed via
/// [`Algebra::concrete`]); branch decisions during simulation are always
/// made on the concrete part. Implementations may attach extra state
/// (symbolic terms, taint, coverage) that is threaded through every
/// operation.
pub trait Algebra {
    /// The value type.
    type Value: Clone + std::fmt::Debug;

    /// Lifts a constant.
    fn constant(&mut self, c: LogicVec) -> Self::Value;

    /// The concrete interpretation of a value.
    fn concrete<'a>(&self, v: &'a Self::Value) -> &'a LogicVec;

    /// Applies a unary operator.
    fn unary(&mut self, op: UnaryOp, a: &Self::Value) -> Self::Value;

    /// Applies a binary operator. Operands are pre-widened to equal width
    /// for arithmetic/bitwise/relational operators (the elaborator
    /// guarantees this); shift amounts keep their self-determined width.
    fn binary(&mut self, op: BinaryOp, a: &Self::Value, b: &Self::Value) -> Self::Value;

    /// Two-way multiplexer: `cond ? t : e` (an unknown condition produces
    /// the Verilog X-merge of both arms on the concrete side).
    fn mux(&mut self, cond: &Self::Value, t: &Self::Value, e: &Self::Value) -> Self::Value;

    /// Concatenation with `hi` in the upper bits.
    fn concat(&mut self, hi: &Self::Value, lo: &Self::Value) -> Self::Value;

    /// Constant-position slice `[lo +: width]`.
    fn slice(&mut self, a: &Self::Value, lo: u32, width: u32) -> Self::Value;

    /// Zero-extend or truncate.
    fn resize(&mut self, a: &Self::Value, width: u32) -> Self::Value;

    /// Notification that the interpreter took (`taken = true`) or skipped a
    /// branch guarded by `cond` at `site`. Default: ignore.
    fn on_branch(&mut self, site: BranchSiteId, cond: &Self::Value, taken: bool) {
        let _ = (site, cond, taken);
    }

    /// Whether a stored value should be considered changed when replaced by
    /// `new` (drives re-evaluation of level-sensitive processes).
    fn changed(old: &Self::Value, new: &Self::Value) -> bool;
}

/// The plain concrete algebra: values are [`LogicVec`]s.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConcreteAlgebra;

impl ConcreteAlgebra {
    /// Creates the concrete algebra.
    #[must_use]
    pub fn new() -> ConcreteAlgebra {
        ConcreteAlgebra
    }
}

/// Applies `op` to two concrete values (shared by [`ConcreteAlgebra`] and
/// the concolic co-algebra).
#[must_use]
pub fn concrete_binary(op: BinaryOp, a: &LogicVec, b: &LogicVec) -> LogicVec {
    match op {
        BinaryOp::Add => a.add(b),
        BinaryOp::Sub => a.sub(b),
        BinaryOp::Mul => a.mul(b),
        BinaryOp::Div => a.udiv(b),
        BinaryOp::Mod => a.urem(b),
        BinaryOp::Pow => unreachable!("`**` rejected at elaboration"),
        BinaryOp::And => a.and(b),
        BinaryOp::Or => a.or(b),
        BinaryOp::Xor => a.xor(b),
        BinaryOp::Xnor => a.xor(b).not(),
        BinaryOp::LogicalAnd => a.logical_and(b),
        BinaryOp::LogicalOr => a.logical_or(b),
        BinaryOp::Eq => a.eq_logic(b),
        BinaryOp::Ne => a.ne_logic(b),
        BinaryOp::CaseEq => a.case_eq(b),
        BinaryOp::CaseNe => a.case_eq(b).logical_not(),
        BinaryOp::Lt => a.ult(b),
        BinaryOp::Le => a.ule(b),
        BinaryOp::Gt => b.ult(a),
        BinaryOp::Ge => b.ule(a),
        BinaryOp::Shl => a.shl(b),
        BinaryOp::Shr => a.lshr(b),
        BinaryOp::AShr => a.ashr(b),
    }
}

/// Applies `op` to one concrete value.
#[must_use]
pub fn concrete_unary(op: UnaryOp, a: &LogicVec) -> LogicVec {
    match op {
        UnaryOp::Not => a.not(),
        UnaryOp::LogicalNot => a.logical_not(),
        UnaryOp::Neg => a.neg(),
        UnaryOp::Plus => a.clone(),
        UnaryOp::RedAnd => a.reduce_and(),
        UnaryOp::RedOr => a.reduce_or(),
        UnaryOp::RedXor => a.reduce_xor(),
        UnaryOp::RedNand => a.reduce_and().not(),
        UnaryOp::RedNor => a.reduce_or().not(),
        UnaryOp::RedXnor => a.reduce_xor().not(),
    }
}

/// Verilog mux on concrete values: an unknown condition X-merges the arms
/// (bitwise: equal bits survive, differing bits become X).
#[must_use]
pub fn concrete_mux(cond: &LogicVec, t: &LogicVec, e: &LogicVec) -> LogicVec {
    match cond.truthy() {
        Some(true) => t.clone(),
        Some(false) => e.clone(),
        None => {
            let w = t.width().max(e.width());
            let t = t.resize(w);
            let e = e.resize(w);
            let mut out = LogicVec::xes(w);
            for i in 0..w {
                let (bt, be) = (t.bit(i), e.bit(i));
                if bt == be && !bt.is_unknown() {
                    out.set_bit(i, bt);
                }
            }
            out
        }
    }
}

impl Algebra for ConcreteAlgebra {
    type Value = LogicVec;

    fn constant(&mut self, c: LogicVec) -> LogicVec {
        c
    }

    fn concrete<'a>(&self, v: &'a LogicVec) -> &'a LogicVec {
        v
    }

    fn unary(&mut self, op: UnaryOp, a: &LogicVec) -> LogicVec {
        concrete_unary(op, a)
    }

    fn binary(&mut self, op: BinaryOp, a: &LogicVec, b: &LogicVec) -> LogicVec {
        concrete_binary(op, a, b)
    }

    fn mux(&mut self, cond: &LogicVec, t: &LogicVec, e: &LogicVec) -> LogicVec {
        concrete_mux(cond, t, e)
    }

    fn concat(&mut self, hi: &LogicVec, lo: &LogicVec) -> LogicVec {
        hi.concat(lo)
    }

    fn slice(&mut self, a: &LogicVec, lo: u32, width: u32) -> LogicVec {
        a.slice(lo, width)
    }

    fn resize(&mut self, a: &LogicVec, width: u32) -> LogicVec {
        a.resize(width)
    }

    fn changed(old: &LogicVec, new: &LogicVec) -> bool {
        old != new
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concrete_ops_match_logicvec() {
        let mut alg = ConcreteAlgebra::new();
        let a = alg.constant(LogicVec::from_u64(8, 12));
        let b = alg.constant(LogicVec::from_u64(8, 5));
        assert_eq!(alg.binary(BinaryOp::Add, &a, &b).to_u64(), Some(17));
        assert_eq!(alg.binary(BinaryOp::Gt, &a, &b).to_u64(), Some(1));
        assert_eq!(alg.binary(BinaryOp::Ge, &a, &b).to_u64(), Some(1));
        assert_eq!(alg.unary(UnaryOp::RedOr, &a).to_u64(), Some(1));
        assert_eq!(alg.slice(&a, 2, 2).to_u64(), Some(0b11));
        assert_eq!(alg.concat(&a, &b).width(), 16);
    }

    #[test]
    fn mux_with_unknown_condition_merges() {
        let mut alg = ConcreteAlgebra::new();
        let x = LogicVec::xes(1);
        let t = LogicVec::from_u64(4, 0b1010);
        let e = LogicVec::from_u64(4, 0b1001);
        let m = alg.mux(&x, &t, &e);
        // Equal bits survive the X-merge; differing bits go X.
        assert_eq!(m.bit(3), soccar_rtl::Bit::One); // 1 == 1
        assert_eq!(m.bit(2), soccar_rtl::Bit::Zero); // 0 == 0
        assert!(m.bit(1).is_unknown()); // 1 vs 0
        assert!(m.bit(0).is_unknown()); // 0 vs 1
    }

    #[test]
    fn changed_detects_x_transitions() {
        let x = LogicVec::xes(4);
        let v = LogicVec::from_u64(4, 0);
        assert!(ConcreteAlgebra::changed(&x, &v));
        assert!(!ConcreteAlgebra::changed(&v, &v.clone()));
    }
}
