//! Cryptographic IP cores: AES192, SHA256, MD5, DES3 and RSA.
//!
//! Every engine follows the same reduced-round but *state-faithful*
//! template: a genuine key register (loaded over three beats for the wide
//! keys), a plaintext register, a mixing datapath iterated over rounds by
//! an FSM, and a ciphertext output port. Cryptographic strength is
//! irrelevant to the security experiments — what matters is that secret
//! state lives in registers an asynchronous reset is supposed to scrub.
//!
//! Each engine also emits a synthesizable observation wire `leak_obs`
//! (ciphertext port equals non-trivial plaintext), the kind of security
//! observation point industrial regressions instrument; the corresponding
//! "Restricts" is `AlwaysOneOf(leak_obs, {0})`.
//!
//! Bug hooks (Table III, *Information Leakage*):
//!
//! * [`CryptoBug::LeakExplicit`] — the asynchronous reset arm fails to
//!   clear `key_reg`/`pt_reg`;
//! * [`CryptoBug::LeakImplicit`] — the AutoSoC Variant #2 SHA256 defect:
//!   the cipher assignment moves into a procedure block that executes only
//!   under an asynchronous reset composed with a clock level, invisible to
//!   the Explicit governor analysis.

/// Information-leakage bug selector for a crypto engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CryptoBug {
    /// Correct RTL.
    #[default]
    None,
    /// Reset arm omits clearing the secret registers.
    LeakExplicit,
    /// Cipher assignment only under reset-composed-with-clock (the
    /// implicit-governor construct of Section V-C).
    LeakImplicit,
}

/// Parameters shared by the engine generators.
#[derive(Debug, Clone, Copy)]
struct EngineSpec {
    name: &'static str,
    /// Mixing rounds before the result is released.
    rounds: u32,
    /// Round function over `state_reg`, `key_reg`, `pt_reg`, `round`.
    round_fn: &'static str,
    /// Final ciphertext expression.
    ct_fn: &'static str,
}

fn engine(spec: &EngineSpec, bug: CryptoBug) -> String {
    let clear_secrets = match bug {
        CryptoBug::LeakExplicit => {
            "      // BUG(info-leakage): key_reg / pt_reg deliberately not cleared\n"
        }
        _ => "      key_reg <= 192'd0;\n      pt_reg <= 64'd0;\n",
    };
    let (ct_reset, ct_fin, rogue_block) = match bug {
        CryptoBug::LeakImplicit => (
            String::new(),
            "// BUG(info-leakage, implicit governor): cipher assignment moved below\n".to_owned(),
            format!(
                "\n  // Defective procedure block declaration: the cipher assignment\n  \
                 // executes only under an asynchronous reset composed with a\n  \
                 // specific clock level (cf. SoCCAR Section V-C).\n  \
                 always @(negedge rst_n)\n    if (clk) ct_out <= {};\n",
                "pt_reg"
            ),
        ),
        _ => (
            "      ct_out <= 64'd0;\n".to_owned(),
            format!("ct_out <= {};\n", spec.ct_fn),
            String::new(),
        ),
    };
    format!(
        "module {name}(
  input clk,
  input rst_n,
  input start,
  input [63:0] key_in,
  input [63:0] pt_in,
  output reg [63:0] ct_out,
  output reg busy,
  output reg done,
  output leak_obs
);
  reg [191:0] key_reg;
  reg [63:0] pt_reg;
  reg [63:0] state_reg;
  reg [5:0] round;
  reg [1:0] fsm;
  localparam IDLE = 2'd0;
  localparam RUN  = 2'd1;
  localparam FIN  = 2'd2;

  // Security observation point (a verification monitor, not functional
  // logic): the ciphertext port must never expose the most recently
  // loaded non-trivial plaintext. The shadow register deliberately has no
  // reset so the check survives the scrubbing of pt_reg itself.
  reg [63:0] pt_shadow;
  always @(posedge clk)
    if (start & ~busy) pt_shadow <= pt_in;
  assign leak_obs = (ct_out == pt_shadow) & (|pt_shadow) & ~(&pt_shadow);

  always @(posedge clk or negedge rst_n)
    if (!rst_n) begin
      fsm <= IDLE;
      busy <= 1'b0;
      done <= 1'b0;
      round <= 6'd0;
      state_reg <= 64'd0;
{ct_reset}{clear_secrets}    end else begin
      done <= 1'b0;
      case (fsm)
        IDLE: if (start) begin
          key_reg <= {{key_reg[127:0], key_in}};
          pt_reg <= pt_in;
          state_reg <= pt_in;
          round <= 6'd0;
          busy <= 1'b1;
          fsm <= RUN;
        end
        RUN: begin
          state_reg <= {round_fn};
          round <= round + 6'd1;
          if (round == 6'd{rounds}) fsm <= FIN;
        end
        FIN: begin
          {ct_fin}          busy <= 1'b0;
          done <= 1'b1;
          fsm <= IDLE;
        end
        default: fsm <= IDLE;
      endcase
    end
{rogue_block}endmodule
",
        name = spec.name,
        rounds = spec.rounds,
        round_fn = spec.round_fn,
        ct_reset = ct_reset,
        clear_secrets = clear_secrets,
        ct_fin = ct_fin,
        rogue_block = rogue_block,
    )
}

/// AES-192: 12 reduced rounds of byte-rotate / round-key mixing.
#[must_use]
pub fn aes192(bug: CryptoBug) -> String {
    engine(
        &EngineSpec {
            name: "aes192",
            rounds: 12,
            round_fn: "({state_reg[55:0], state_reg[63:56]} ^ key_reg[63:0]) \
                       + ({state_reg[31:0], state_reg[63:32]} ^ key_reg[127:64])",
            ct_fn: "state_reg ^ key_reg[191:128]",
        },
        bug,
    )
}

/// SHA-256: 16 reduced rounds of sigma-style rotate-xor compression.
#[must_use]
pub fn sha256(bug: CryptoBug) -> String {
    engine(
        &EngineSpec {
            name: "sha256",
            rounds: 16,
            round_fn: "state_reg + ({state_reg[5:0], state_reg[63:6]} \
                       ^ {state_reg[10:0], state_reg[63:11]}) \
                       + key_reg[63:0] + {58'd0, round}",
            ct_fn: "state_reg + key_reg[127:64]",
        },
        bug,
    )
}

/// MD5: 16 reduced rounds of add-rotate mixing with the classic constants.
#[must_use]
pub fn md5(bug: CryptoBug) -> String {
    engine(
        &EngineSpec {
            name: "md5",
            rounds: 16,
            round_fn: "{state_reg[31:0], state_reg[63:32]} \
                       + (pt_reg ^ key_reg[63:0]) + 64'h67452301EFCDAB89",
            ct_fn: "state_reg ^ 64'h98BADCFE10325476",
        },
        bug,
    )
}

/// Triple-DES: 24 reduced rounds of Feistel-style rotate/xor staging.
#[must_use]
pub fn des3(bug: CryptoBug) -> String {
    engine(
        &EngineSpec {
            name: "des3",
            rounds: 24,
            round_fn: "((state_reg ^ key_reg[63:0]) \
                       ^ {state_reg[27:0], state_reg[63:28]}) + key_reg[127:64]",
            ct_fn: "state_reg ^ key_reg[191:128]",
        },
        bug,
    )
}

/// RSA: 8 rounds of square-and-conditionally-add modular-style arithmetic.
#[must_use]
pub fn rsa(bug: CryptoBug) -> String {
    engine(
        &EngineSpec {
            name: "rsa",
            rounds: 8,
            round_fn: "(state_reg * state_reg) \
                       + (key_reg[63:0] & {64{round[0]}})",
            ct_fn: "state_reg + key_reg[63:0]",
        },
        bug,
    )
}

/// All engine generator names, for catalog/table use.
pub const ENGINE_NAMES: [&str; 5] = ["aes192", "sha256", "md5", "des3", "rsa"];

/// Generates the named engine.
///
/// # Panics
///
/// Panics if `name` is not one of [`ENGINE_NAMES`].
#[must_use]
pub fn by_name(name: &str, bug: CryptoBug) -> String {
    match name {
        "aes192" => aes192(bug),
        "sha256" => sha256(bug),
        "md5" => md5(bug),
        "des3" => des3(bug),
        "rsa" => rsa(bug),
        other => panic!("unknown crypto engine `{other}`"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soccar_rtl::value::LogicVec;
    use soccar_sim::{InitPolicy, Simulator};

    fn compile(src: &str, top: &str) -> soccar_rtl::Design {
        soccar_rtl::compile("crypto.v", src, top)
            .unwrap_or_else(|e| panic!("compile {top}: {e}"))
            .0
    }

    #[test]
    fn all_engines_compile_clean_and_buggy() {
        for name in ENGINE_NAMES {
            for bug in [
                CryptoBug::None,
                CryptoBug::LeakExplicit,
                CryptoBug::LeakImplicit,
            ] {
                let src = by_name(name, bug);
                let d = compile(&src, name);
                assert!(d.find_net(&format!("{name}.key_reg")).is_some());
                assert!(d.find_net(&format!("{name}.leak_obs")).is_some());
            }
        }
    }

    fn run_engine(src: &str, name: &str) -> u64 {
        let d = compile(src, name);
        let mut sim = Simulator::concrete(&d, InitPolicy::Ones);
        let n = |s: &str| d.find_net(&format!("{name}.{s}")).expect("net");
        let clk = n("clk");
        sim.write_input(n("rst_n"), LogicVec::from_u64(1, 0))
            .expect("rst");
        sim.settle().expect("settle");
        sim.write_input(n("rst_n"), LogicVec::from_u64(1, 1))
            .expect("rst");
        sim.write_input(n("key_in"), LogicVec::from_u64(64, 0xDEAD_BEEF_CAFE_F00D))
            .expect("key");
        sim.write_input(n("pt_in"), LogicVec::from_u64(64, 0x0123_4567_89AB_CDEF))
            .expect("pt");
        sim.write_input(n("start"), LogicVec::from_u64(1, 1))
            .expect("start");
        sim.write_input(clk, LogicVec::from_u64(1, 0)).expect("clk");
        sim.settle().expect("settle");
        sim.tick(clk).expect("tick");
        sim.write_input(n("start"), LogicVec::from_u64(1, 0))
            .expect("start");
        sim.settle().expect("settle");
        for _ in 0..40 {
            sim.tick(clk).expect("tick");
        }
        sim.net_logic(n("ct_out")).to_u64().expect("ct defined")
    }

    #[test]
    fn engines_produce_ciphertext() {
        for name in ENGINE_NAMES {
            let ct = run_engine(&by_name(name, CryptoBug::None), name);
            assert_ne!(ct, 0x0123_4567_89AB_CDEF, "{name} must mix the plaintext");
            assert_ne!(ct, 0, "{name} must produce a nonzero ciphertext");
        }
    }

    #[test]
    fn engines_are_deterministic_and_distinct() {
        let cts: Vec<u64> = ENGINE_NAMES
            .iter()
            .map(|n| run_engine(&by_name(n, CryptoBug::None), n))
            .collect();
        let again: Vec<u64> = ENGINE_NAMES
            .iter()
            .map(|n| run_engine(&by_name(n, CryptoBug::None), n))
            .collect();
        assert_eq!(cts, again, "deterministic");
        let mut dedup = cts.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), cts.len(), "distinct algorithms: {cts:x?}");
    }

    #[test]
    fn reset_scrubs_secrets_only_when_clean() {
        for (bug, expect_scrubbed) in [(CryptoBug::None, true), (CryptoBug::LeakExplicit, false)] {
            let src = aes192(bug);
            let d = compile(&src, "aes192");
            let mut sim = Simulator::concrete(&d, InitPolicy::Ones);
            let n = |s: &str| d.find_net(&format!("aes192.{s}")).expect("net");
            // Load a key first.
            let clk = n("clk");
            sim.write_input(n("rst_n"), LogicVec::from_u64(1, 1))
                .expect("rst");
            sim.write_input(n("key_in"), LogicVec::from_u64(64, 0x1111_2222_3333_4444))
                .expect("k");
            sim.write_input(n("pt_in"), LogicVec::from_u64(64, 0x5555))
                .expect("p");
            sim.write_input(n("start"), LogicVec::from_u64(1, 1))
                .expect("s");
            sim.write_input(clk, LogicVec::from_u64(1, 0)).expect("c");
            sim.settle().expect("settle");
            sim.tick(clk).expect("tick");
            // Asynchronous reset strikes mid-operation.
            sim.write_input(n("rst_n"), LogicVec::from_u64(1, 0))
                .expect("rst");
            sim.settle().expect("settle");
            let key = sim.net_logic(n("key_reg"));
            assert_eq!(key.is_all_zero(), expect_scrubbed, "bug={bug:?}, key={key}");
        }
    }

    #[test]
    fn implicit_bug_leaks_only_on_clock_high_reset() {
        let src = sha256(CryptoBug::LeakImplicit);
        let d = compile(&src, "sha256");
        let mut sim = Simulator::concrete(&d, InitPolicy::Ones);
        let n = |s: &str| d.find_net(&format!("sha256.{s}")).expect("net");
        let clk = n("clk");
        let rst = n("rst_n");
        let pt = LogicVec::from_u64(64, 0x0BAD_5EED_0BAD_5EED);
        sim.write_input(rst, LogicVec::from_u64(1, 1)).expect("rst");
        sim.write_input(n("key_in"), LogicVec::from_u64(64, 7))
            .expect("k");
        sim.write_input(n("pt_in"), pt.clone()).expect("p");
        sim.write_input(n("start"), LogicVec::from_u64(1, 1))
            .expect("s");
        sim.write_input(clk, LogicVec::from_u64(1, 0)).expect("c");
        sim.settle().expect("settle");
        sim.tick(clk).expect("tick"); // pt_reg loaded
                                      // Reset asserted while the clock is LOW: no leak.
        sim.write_input(rst, LogicVec::from_u64(1, 0)).expect("rst");
        sim.settle().expect("settle");
        assert_ne!(
            sim.net_logic(n("ct_out")),
            &pt,
            "clock-low reset must not leak"
        );
        // Release, reload, then assert while the clock is HIGH: leak.
        sim.write_input(rst, LogicVec::from_u64(1, 1)).expect("rst");
        sim.settle().expect("settle");
        sim.tick(clk).expect("tick");
        sim.write_input(clk, LogicVec::from_u64(1, 1)).expect("clk");
        sim.settle().expect("settle");
        sim.write_input(rst, LogicVec::from_u64(1, 0)).expect("rst");
        sim.settle().expect("settle");
        assert_eq!(sim.net_logic(n("ct_out")), &pt, "clock-high reset dumps pt");
        assert_eq!(sim.net_logic(n("leak_obs")).to_u64(), Some(1));
    }
}
