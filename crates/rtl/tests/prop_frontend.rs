//! Frontend robustness properties: the lexer/parser/elaborator must never
//! panic — arbitrary input produces either a tree or a diagnostic — and
//! structured random programs round-trip through elaboration.

use proptest::prelude::*;
use soccar_rtl::parser::parse;
use soccar_rtl::span::FileId;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary ASCII never panics the frontend.
    #[test]
    fn parser_total_on_arbitrary_ascii(s in "[ -~\n\t]{0,200}") {
        let _ = parse(FileId(0), &s);
    }

    /// Arbitrary bytes drawn from Verilog-ish alphabet never panic.
    #[test]
    fn parser_total_on_verilogish_soup(
        tokens in proptest::collection::vec(
            prop_oneof![
                Just("module"), Just("endmodule"), Just("input"), Just("output"),
                Just("wire"), Just("reg"), Just("always"), Just("assign"),
                Just("begin"), Just("end"), Just("if"), Just("else"),
                Just("case"), Just("endcase"), Just("posedge"), Just("negedge"),
                Just("("), Just(")"), Just("["), Just("]"), Just("{"), Just("}"),
                Just(";"), Just(","), Just(":"), Just("="), Just("<="),
                Just("@"), Just("*"), Just("+"), Just("-"), Just("?"),
                Just("8'hFF"), Just("4'bx0z1"), Just("42"), Just("foo"),
                Just("clk"), Just("rst_n"), Just("=="), Just("==="),
            ],
            0..60,
        )
    ) {
        let src = tokens.join(" ");
        let _ = parse(FileId(0), &src);
    }

    /// Structured random counters always parse, elaborate and expose the
    /// declared nets with the right widths.
    #[test]
    fn random_counters_elaborate(
        width in 1u32..64,
        resets in 1usize..4,
        step in 1u64..15,
    ) {
        let mut ports = String::from("input clk");
        let mut sens = String::from("posedge clk");
        let mut guard = String::new();
        for i in 0..resets {
            ports.push_str(&format!(", input rst{i}_n"));
            sens.push_str(&format!(" or negedge rst{i}_n"));
            if i == 0 {
                guard = format!("if (!rst{i}_n) q <= {width}'d0;");
            }
        }
        let src = format!(
            "module t({ports}, output reg [{msb}:0] q);
               always @({sens})
                 {guard}
                 else q <= q + {width}'d{step};
             endmodule",
            msb = width - 1,
        );
        let unit = parse(FileId(0), &src).expect("parse");
        let design = soccar_rtl::elaborate::elaborate(&unit, "t").expect("elaborate");
        let q = design.find_net("t.q").expect("q");
        prop_assert_eq!(design.net(q).width, width);
        prop_assert_eq!(design.processes().len(), 1);
        let _ = step;
    }

    /// The pretty-printer round-trips every tree the structured generator
    /// produces (beyond the fixed corpus in the unit tests).
    #[test]
    fn printer_roundtrips_random_expressions(
        a in 0u64..256, b in 0u64..256,
        op in prop_oneof![Just("+"), Just("&"), Just("^"), Just("<<"), Just("==")],
        w in 1u32..16,
    ) {
        let src = format!(
            "module t(input [{msb}:0] x, output [{msb}:0] y);
               assign y = (x {op} {w}'d{a}) + {w}'d{b};
             endmodule",
            msb = w - 1,
        );
        let u1 = parse(FileId(0), &src).expect("parse");
        let printed = soccar_rtl::printer::print_unit(&u1);
        let u2 = parse(FileId(0), &printed).expect("reparse");
        prop_assert_eq!(
            soccar_rtl::printer::print_unit(&u2),
            printed
        );
    }
}
