//! Client side of the `soccar serve` protocol — what `soccar client`
//! and CI harnesses use to talk to a running daemon.
//!
//! Beyond the bare [`Client`] connection, this module carries the retry
//! contract: [`RetryPolicy`] retries connection failures, mid-exchange
//! I/O errors (a dropped or truncated response), and structured `busy`
//! envelopes with **deterministic** seeded exponential backoff + jitter.
//! Determinism matters here for the same reason it does everywhere else
//! in soccar: a chaos run with a fixed fault plan and a fixed seed
//! replays the exact same wire timeline.

use std::io::{BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::proto::{read_frame, write_frame, Envelope, Request};

/// A connection to a running `soccar serve` daemon. One connection can
/// pipeline any number of requests.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connects to `addr` (`host:port`, as printed by the daemon or
    /// written to its `--port-file`).
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: &str) -> std::io::Result<Client> {
        Client::connect_with(addr, None)
    }

    /// Like [`Client::connect`], with an optional per-operation
    /// deadline: it bounds the connect itself and every subsequent
    /// frame read/write, so a wedged daemon surfaces as a timed-out
    /// I/O error instead of a hang.
    ///
    /// # Errors
    ///
    /// Propagates connection failures and unresolvable addresses.
    pub fn connect_with(addr: &str, timeout: Option<Duration>) -> std::io::Result<Client> {
        let stream = match timeout {
            None => TcpStream::connect(addr)?,
            Some(limit) => {
                let resolved = addr.to_socket_addrs()?.next().ok_or_else(|| {
                    std::io::Error::new(
                        std::io::ErrorKind::InvalidInput,
                        format!("{addr}: no addresses"),
                    )
                })?;
                TcpStream::connect_timeout(&resolved, limit)?
            }
        };
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(timeout)?;
        stream.set_write_timeout(timeout)?;
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
        })
    }

    /// Sends one request and reads the two response frames:
    /// `(envelope, body)`. The body is the deliverable verbatim —
    /// print it as-is for byte-identical parity with the batch CLI.
    ///
    /// # Errors
    ///
    /// On I/O failure, a server-closed connection, or an undecodable
    /// envelope.
    pub fn roundtrip(&mut self, request: &Request) -> Result<(Envelope, Vec<u8>), String> {
        let payload = request.to_json().map_err(|e| e.to_string())?;
        write_frame(&mut self.writer, payload.as_bytes()).map_err(|e| e.to_string())?;
        let envelope_frame = read_frame(&mut self.reader)
            .map_err(|e| e.to_string())?
            .ok_or_else(|| "server closed the connection before responding".to_owned())?;
        let envelope_text = String::from_utf8(envelope_frame)
            .map_err(|_| "envelope frame is not utf-8".to_owned())?;
        let envelope = Envelope::from_json(&envelope_text)?;
        let body = read_frame(&mut self.reader)
            .map_err(|e| e.to_string())?
            .ok_or_else(|| "server closed the connection before the body frame".to_owned())?;
        Ok((envelope, body))
    }
}

/// Deterministic retry policy for [`roundtrip_with_retry`]: seeded
/// exponential backoff with jitter. Attempt `n` (0-based) sleeps a
/// pseudo-random duration in `[exp/2, exp]` where
/// `exp = min(base_delay << n, max_delay)`; the jitter stream is
/// [splitmix64](https://prng.di.unimi.it/splitmix64.c) over
/// `seed + n`, so a fixed seed replays the exact schedule.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Additional attempts after the first (0 = never retry).
    pub retries: u32,
    /// Backoff base — the cap of the first retry's sleep.
    pub base_delay: Duration,
    /// Upper bound the exponential never exceeds.
    pub max_delay: Duration,
    /// Per-attempt connect/read/write deadline (`None` = unbounded).
    pub timeout: Option<Duration>,
    /// Jitter seed; fixed default for replayable CI timelines.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            retries: 0,
            base_delay: Duration::from_millis(100),
            max_delay: Duration::from_millis(2_000),
            timeout: None,
            seed: 0x5CCA_12AB,
        }
    }
}

impl RetryPolicy {
    /// The backoff before retry `attempt` (0-based): jittered into
    /// `[exp/2, exp]`. Pure — same policy and attempt, same answer.
    #[must_use]
    pub fn backoff(&self, attempt: u32) -> Duration {
        let exp = self
            .base_delay
            .saturating_mul(1u32.checked_shl(attempt).unwrap_or(u32::MAX))
            .min(self.max_delay)
            .max(Duration::from_millis(1));
        let exp_us = exp.as_micros() as u64;
        let half = exp_us / 2;
        let jitter = splitmix64(self.seed.wrapping_add(u64::from(attempt))) % (half + 1);
        Duration::from_micros(half + jitter)
    }
}

/// The splitmix64 mixer — the standard cheap seedable PRNG step.
fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Performs one request against `addr` under `policy`: a fresh
/// connection per attempt (a failed exchange leaves the old socket in
/// an unknown framing state), retrying connect failures, I/O errors
/// mid-exchange, and `busy` envelopes. The request's `attempt` field is
/// stamped with the 0-based attempt number so the server can count
/// `server.retries`. Non-busy error envelopes are *returned*, not
/// retried — the daemon answered definitively.
///
/// # Errors
///
/// The last attempt's error once retries are exhausted.
pub fn roundtrip_with_retry(
    addr: &str,
    request: &Request,
    policy: &RetryPolicy,
) -> Result<(Envelope, Vec<u8>), String> {
    let mut request = request.clone();
    let mut last_err = String::new();
    for attempt in 0..=policy.retries {
        if attempt > 0 {
            std::thread::sleep(policy.backoff(attempt - 1));
        }
        request.attempt = u64::from(attempt);
        let mut client = match Client::connect_with(addr, policy.timeout) {
            Ok(client) => client,
            Err(e) => {
                last_err = format!("connect {addr}: {e}");
                continue;
            }
        };
        match client.roundtrip(&request) {
            Ok((envelope, body)) => {
                if envelope.is_busy() && attempt < policy.retries {
                    last_err = envelope.error.clone();
                    continue;
                }
                return Ok((envelope, body));
            }
            Err(e) => last_err = e,
        }
    }
    Err(if last_err.is_empty() {
        format!("connect {addr}: no attempts made")
    } else {
        last_err
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let policy = RetryPolicy {
            retries: 5,
            base_delay: Duration::from_millis(100),
            max_delay: Duration::from_millis(800),
            timeout: None,
            seed: 42,
        };
        let replay = RetryPolicy {
            seed: 42,
            ..policy.clone()
        };
        for attempt in 0..8 {
            let d = policy.backoff(attempt);
            assert_eq!(d, replay.backoff(attempt), "same seed, same schedule");
            let exp = Duration::from_millis((100u64 << attempt.min(3)).min(800));
            assert!(d <= exp, "attempt {attempt}: {d:?} > {exp:?}");
            assert!(
                d * 2 >= exp,
                "attempt {attempt}: {d:?} below half of {exp:?}"
            );
        }
        let other = RetryPolicy { seed: 43, ..policy };
        assert!(
            (0..8).any(|a| other.backoff(a) != replay.backoff(a)),
            "different seeds should jitter differently"
        );
    }

    #[test]
    fn backoff_saturates_at_max_delay_for_huge_attempts() {
        let policy = RetryPolicy::default();
        let d = policy.backoff(63);
        assert!(d <= policy.max_delay);
        assert!(d * 2 >= policy.max_delay);
    }

    #[test]
    fn exhausted_retries_surface_the_connect_error() {
        // A port from the ephemeral range with nothing listening —
        // bind-then-drop guarantees it was just free.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        drop(listener);
        let policy = RetryPolicy {
            retries: 2,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(2),
            timeout: Some(Duration::from_millis(200)),
            ..RetryPolicy::default()
        };
        let err = roundtrip_with_retry(&addr, &Request::new("status"), &policy)
            .expect_err("nothing is listening");
        assert!(err.contains("connect"), "{err}");
    }
}
