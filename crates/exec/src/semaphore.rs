//! A counting semaphore for bounded concurrent admission.
//!
//! `std::sync` has no semaphore, and the offline-crate policy rules out
//! `tokio`/`parking_lot`; this is the minimal Condvar-based one the
//! analysis server uses to cap in-flight connections. Permits are
//! released by RAII guard, so a panicking handler can never leak one.

use std::sync::{Arc, Condvar, Mutex};

/// A counting semaphore handing out at most `permits` concurrent
/// [`SemaphoreGuard`]s.
///
/// # Examples
///
/// ```
/// use soccar_exec::Semaphore;
///
/// let sem = Semaphore::new(2);
/// let a = sem.acquire();
/// let b = sem.acquire();
/// assert!(sem.try_acquire().is_none()); // full
/// drop(a);
/// assert!(sem.try_acquire().is_some()); // released by RAII
/// # drop(b);
/// ```
#[derive(Debug, Clone)]
pub struct Semaphore {
    inner: Arc<SemInner>,
}

#[derive(Debug)]
struct SemInner {
    available: Mutex<usize>,
    freed: Condvar,
}

impl Semaphore {
    /// Creates a semaphore with `permits` concurrent permits (minimum 1).
    #[must_use]
    pub fn new(permits: usize) -> Semaphore {
        Semaphore {
            inner: Arc::new(SemInner {
                available: Mutex::new(permits.max(1)),
                freed: Condvar::new(),
            }),
        }
    }

    /// Blocks until a permit is available, then takes it.
    ///
    /// # Panics
    ///
    /// Panics if the internal lock is poisoned (a holder panicked while
    /// releasing — unreachable from the public API, which only touches
    /// the lock inside this module).
    #[must_use]
    pub fn acquire(&self) -> SemaphoreGuard {
        let mut available = self.inner.available.lock().expect("semaphore poisoned");
        while *available == 0 {
            available = self
                .inner
                .freed
                .wait(available)
                .expect("semaphore poisoned");
        }
        *available -= 1;
        SemaphoreGuard {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Blocks up to `timeout` for a permit; `None` if the wait expires.
    /// A zero timeout degenerates to [`Semaphore::try_acquire`]. This is
    /// the admission primitive behind load shedding: callers queue
    /// briefly, then shed instead of queueing unboundedly.
    #[must_use]
    pub fn acquire_timeout(&self, timeout: std::time::Duration) -> Option<SemaphoreGuard> {
        let deadline = std::time::Instant::now() + timeout;
        let mut available = self.inner.available.lock().expect("semaphore poisoned");
        while *available == 0 {
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            if remaining.is_zero() {
                return None;
            }
            let (guard, result) = self
                .inner
                .freed
                .wait_timeout(available, remaining)
                .expect("semaphore poisoned");
            available = guard;
            if result.timed_out() && *available == 0 {
                return None;
            }
        }
        *available -= 1;
        Some(SemaphoreGuard {
            inner: Arc::clone(&self.inner),
        })
    }

    /// Takes a permit if one is free, without blocking.
    #[must_use]
    pub fn try_acquire(&self) -> Option<SemaphoreGuard> {
        let mut available = self.inner.available.lock().expect("semaphore poisoned");
        if *available == 0 {
            return None;
        }
        *available -= 1;
        Some(SemaphoreGuard {
            inner: Arc::clone(&self.inner),
        })
    }

    /// Permits currently free (racy — informational only).
    #[must_use]
    pub fn available(&self) -> usize {
        *self.inner.available.lock().expect("semaphore poisoned")
    }
}

/// RAII permit returned by [`Semaphore::acquire`]; dropping it releases
/// the permit and wakes one waiter.
#[derive(Debug)]
pub struct SemaphoreGuard {
    inner: Arc<SemInner>,
}

impl Drop for SemaphoreGuard {
    fn drop(&mut self) {
        let mut available = match self.inner.available.lock() {
            Ok(g) => g,
            // Propagating a second panic from Drop would abort; a
            // poisoned count is unrecoverable anyway, so leave it.
            Err(_) => return,
        };
        *available += 1;
        self.inner.freed.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn permits_are_bounded_and_released() {
        let sem = Semaphore::new(2);
        assert_eq!(sem.available(), 2);
        let a = sem.acquire();
        let b = sem.acquire();
        assert_eq!(sem.available(), 0);
        assert!(sem.try_acquire().is_none());
        drop(a);
        assert_eq!(sem.available(), 1);
        let c = sem.try_acquire().expect("freed permit");
        drop(b);
        drop(c);
        assert_eq!(sem.available(), 2);
    }

    #[test]
    fn zero_permits_clamps_to_one() {
        let sem = Semaphore::new(0);
        assert_eq!(sem.available(), 1);
    }

    #[test]
    fn concurrent_holders_never_exceed_cap() {
        let sem = Semaphore::new(3);
        let in_flight = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..16 {
                s.spawn(|| {
                    let _g = sem.acquire();
                    let now = in_flight.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::yield_now();
                    in_flight.fetch_sub(1, Ordering::SeqCst);
                });
            }
        });
        assert!(peak.load(Ordering::SeqCst) <= 3);
        assert_eq!(sem.available(), 3);
    }

    #[test]
    fn acquire_timeout_expires_when_saturated_and_succeeds_when_freed() {
        let sem = Semaphore::new(1);
        let held = sem.acquire();
        let start = std::time::Instant::now();
        assert!(sem
            .acquire_timeout(std::time::Duration::from_millis(50))
            .is_none());
        assert!(start.elapsed() >= std::time::Duration::from_millis(45));
        assert!(sem.acquire_timeout(std::time::Duration::ZERO).is_none());
        drop(held);
        assert!(sem
            .acquire_timeout(std::time::Duration::from_millis(50))
            .is_some());
    }

    #[test]
    fn panicking_holder_releases_its_permit() {
        let sem = Semaphore::new(1);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = sem.acquire();
            panic!("handler died");
        }));
        assert!(result.is_err());
        assert_eq!(sem.available(), 1, "RAII must survive the panic");
    }
}
