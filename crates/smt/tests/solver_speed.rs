//! Property tests for the solver-speed passes of `crates/smt`: bounded
//! variable elimination (BVE) during inprocessing, and trail reuse
//! between `check_assuming` calls. Both are pure optimizations — on any
//! random formula and assumption sequence the optimized solver must
//! return the same answers as the unoptimized one, and every model it
//! returns must satisfy the word-level constraints. The formulas here
//! deliberately include multiplications so the blasted CNF crosses the
//! inprocessing growth trigger and BVE genuinely runs.

use proptest::prelude::*;
use soccar_smt::{model_satisfies, BvVal, CheckResult, SolveBudget, Solver, TermGraph, TermId};

/// A multiplication-heavy expression over three variables (so blasting
/// emits enough clauses to cross the inprocessing trigger), plus 1-bit
/// goal terms `expr == target` for each requested target.
fn build_goals(g: &mut TermGraph, width: u32, seeds: &[u64], targets: &[u64]) -> Vec<TermId> {
    let vars: Vec<TermId> = (0..3).map(|i| g.var(format!("v{i}"), width)).collect();
    let mut acc = g.mul(vars[0], vars[1]);
    for (i, s) in seeds.iter().enumerate() {
        let c = g.constant(BvVal::from_u64(width, *s));
        acc = match i % 4 {
            0 => {
                let m = g.mul(acc, c);
                g.add(m, vars[2])
            }
            1 => g.xor(acc, vars[1]),
            2 => g.mul(acc, vars[2]),
            _ => {
                let a = g.add(acc, c);
                g.and(a, vars[0])
            }
        };
    }
    targets
        .iter()
        .map(|t| {
            let c = g.constant(BvVal::from_u64(width, *t));
            g.eq(acc, c)
        })
        .collect()
}

/// The assumption set for step `i` of a sequence: single goals
/// alternating with overlapping pairs, so consecutive calls share
/// prefixes sometimes and diverge other times — the shape trail reuse
/// keys on.
fn step_set(goals: &[TermId], i: usize) -> Vec<TermId> {
    if i % 2 == 0 {
        vec![goals[i]]
    } else {
        vec![goals[i - 1], goals[i]]
    }
}

/// Incremental solver with the given solver-speed knob settings. The
/// knobs are pinned explicitly so the tests mean the same thing under
/// any `SOCCAR_BVE` / `SOCCAR_TRAIL_REUSE` environment.
fn tuned(bve: bool, trail_reuse: bool, budget: SolveBudget) -> Solver {
    let mut s = Solver::with_budget(budget);
    s.set_bve(bve);
    s.set_trail_reuse(trail_reuse);
    s
}

/// The mul-heavy formulas above must actually drive the BVE pass: an
/// enabled recorder sees `smt.eliminated_vars` (and trail reuse sees
/// `smt.trail_reused`) after a short assumption sequence. Guards the
/// proptests against silently testing a pass that never runs.
#[test]
fn speed_passes_engage_on_blasted_formulas() {
    let mut g = TermGraph::new();
    let goals = build_goals(&mut g, 6, &[3, 17, 9], &[5, 11, 23, 2]);
    let recorder = soccar_obs::Recorder::enabled();
    let mut s = tuned(true, true, SolveBudget::UNLIMITED);
    // Pre-blast the whole window like the flip loop does: trail reuse
    // needs a stable clause database (adding clauses between calls
    // resets the trail to level 0).
    s.preblast(&g, &goals);
    for _ in 0..3 {
        for i in 0..goals.len() {
            let mut set = vec![goals[0]];
            set.extend(step_set(&goals, i));
            set.dedup();
            s.check_assuming_traced(&g, &set, &recorder);
        }
    }
    let snap = recorder.snapshot();
    let counter = |n: &str| snap.counters.get(n).copied().unwrap_or(0);
    assert!(
        counter("smt.eliminated_vars") > 0,
        "BVE never engaged: {:?}",
        snap.counters
    );
    assert!(
        counter("smt.trail_reused") > 0,
        "trail reuse never engaged: {:?}",
        snap.counters
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// BVE on vs. off: the same assumption sequence through two
    /// incremental solvers must produce identical sat-ness at every
    /// step, and the BVE solver's models must satisfy the original
    /// (unsimplified) word-level constraints — which exercises model
    /// reconstruction for every eliminated gate variable. The traced
    /// entry point is used so inprocessing (and with it the BVE pass)
    /// actually triggers on clause-database growth.
    #[test]
    fn bve_assumption_sequence_agrees_with_bve_off(
        width in 4u32..7,
        seeds in proptest::collection::vec(0u64..64, 2..5),
        targets in proptest::collection::vec(0u64..64, 3..6),
    ) {
        let mut g = TermGraph::new();
        let goals = build_goals(&mut g, width, &seeds, &targets);
        let recorder = soccar_obs::Recorder::disabled();

        let mut with_bve = tuned(true, false, SolveBudget::UNLIMITED);
        let mut without = tuned(false, false, SolveBudget::UNLIMITED);
        for i in 0..goals.len() {
            let set = step_set(&goals, i);
            let got = with_bve.check_assuming_traced(&g, &set, &recorder);
            let want = without.check_assuming_traced(&g, &set, &recorder);
            prop_assert_eq!(
                got.is_sat(),
                want.is_sat(),
                "set {} disagreed: bve {:?} vs plain {:?}",
                i,
                got,
                want
            );
            if let CheckResult::Sat(model) = &got {
                prop_assert!(model_satisfies(&g, &set, model));
            }
        }
    }

    /// Budgeted BVE solving stays sound: a definite answer from the
    /// budgeted BVE solver matches the unbudgeted truth, Unknown is the
    /// only other option, and the sequence can resume after an Unknown
    /// without corrupting later answers.
    #[test]
    fn bve_budgeted_sequence_is_sound(
        width in 4u32..7,
        seeds in proptest::collection::vec(0u64..64, 2..5),
        targets in proptest::collection::vec(0u64..64, 3..5),
        max_conflicts in 1u64..24,
    ) {
        let budget = SolveBudget {
            max_conflicts: Some(max_conflicts),
            max_decisions: None,
        };
        let mut g = TermGraph::new();
        let goals = build_goals(&mut g, width, &seeds, &targets);
        let recorder = soccar_obs::Recorder::disabled();

        let mut budgeted = tuned(true, false, budget);
        let mut oracle = tuned(false, false, SolveBudget::UNLIMITED);
        for i in 0..goals.len() {
            let set = step_set(&goals, i);
            let truth = oracle.check_assuming_traced(&g, &set, &recorder);
            match budgeted.check_assuming_traced(&g, &set, &recorder) {
                CheckResult::Unknown { reason } => {
                    prop_assert!(reason.contains("budget exhausted"));
                }
                CheckResult::Unsat => prop_assert!(
                    !truth.is_sat(),
                    "set {} budgeted Unsat but truth Sat",
                    i
                ),
                CheckResult::Sat(model) => {
                    prop_assert!(truth.is_sat(), "set {i} budgeted Sat but truth Unsat");
                    prop_assert!(model_satisfies(&g, &set, &model));
                }
            }
        }
    }

    /// Trail reuse on vs. off over randomized divergent prefixes: the
    /// reusing solver walks an assumption sequence whose sets overlap,
    /// extend, shrink, and diverge, and must agree step-by-step with a
    /// floor-backtracking solver on the same sequence (and both with a
    /// fresh one-shot check).
    #[test]
    fn trail_reuse_sequence_agrees_with_floor_backtracking(
        width in 3u32..7,
        seeds in proptest::collection::vec(0u64..64, 1..4),
        targets in proptest::collection::vec(0u64..64, 4..7),
        order in proptest::collection::vec(0usize..6, 6..10),
    ) {
        let mut g = TermGraph::new();
        let goals = build_goals(&mut g, width, &seeds, &targets);
        let recorder = soccar_obs::Recorder::disabled();

        let mut reusing = tuned(true, true, SolveBudget::UNLIMITED);
        let mut classic = tuned(true, false, SolveBudget::UNLIMITED);
        // Stable clause database, like the flip loop's preblasted
        // window — the regime where trail reuse actually keeps prefixes.
        reusing.preblast(&g, &goals);
        classic.preblast(&g, &goals);
        for (i, pick) in order.iter().enumerate() {
            // Prefix growth/shrink/divergence: each step keeps goal 0,
            // varies the middle, and rotates the tail by `pick`.
            let mut set = vec![goals[0]];
            if i % 3 != 0 {
                set.push(goals[(i / 3) % goals.len()]);
            }
            set.push(goals[pick % goals.len()]);
            set.dedup();
            let got = reusing.check_assuming_traced(&g, &set, &recorder);
            let want = classic.check_assuming_traced(&g, &set, &recorder);
            prop_assert_eq!(
                got.is_sat(),
                want.is_sat(),
                "step {} disagreed: reuse {:?} vs classic {:?}",
                i,
                got,
                want
            );
            let mut one_shot = Solver::new();
            for t in &set {
                one_shot.assert(*t);
            }
            prop_assert_eq!(got.is_sat(), one_shot.check(&g).is_sat());
            if let CheckResult::Sat(model) = &got {
                prop_assert!(model_satisfies(&g, &set, model));
            }
        }
    }
}
