//! Property tests: the bit-blaster must agree with the reference term
//! evaluator on randomly generated term trees, and models returned by the
//! solver must satisfy the asserted formulas.

use std::collections::HashMap;

use proptest::prelude::*;
use soccar_smt::{model_satisfies, BvVal, CheckResult, SolveBudget, Solver, TermGraph, TermId};

/// A compact op encoding for random tree generation.
#[derive(Debug, Clone, Copy)]
enum OpPick {
    Add,
    Sub,
    Mul,
    And,
    Or,
    Xor,
    Shl,
    Lshr,
    Ashr,
    Udiv,
    Urem,
}

fn build_tree(
    g: &mut TermGraph,
    width: u32,
    ops: &[OpPick],
    leaves: &[u64],
    n_vars: u32,
) -> TermId {
    // Deterministically fold leaves with the given ops; leaf i is either a
    // variable (i < n_vars) or a constant.
    let mut nodes: Vec<TermId> = leaves
        .iter()
        .enumerate()
        .map(|(i, v)| {
            if (i as u32) < n_vars {
                g.var(format!("v{i}"), width)
            } else {
                g.constant(BvVal::from_u64(width, *v))
            }
        })
        .collect();
    let mut oi = 0;
    while nodes.len() > 1 {
        let b = nodes.pop().expect("b");
        let a = nodes.pop().expect("a");
        let op = ops[oi % ops.len()];
        oi += 1;
        let n = match op {
            OpPick::Add => g.add(a, b),
            OpPick::Sub => g.sub(a, b),
            OpPick::Mul => g.mul(a, b),
            OpPick::And => g.and(a, b),
            OpPick::Or => g.or(a, b),
            OpPick::Xor => g.xor(a, b),
            OpPick::Shl => g.shl(a, b),
            OpPick::Lshr => g.lshr(a, b),
            OpPick::Ashr => g.ashr(a, b),
            OpPick::Udiv => g.udiv(a, b),
            OpPick::Urem => g.urem(a, b),
        };
        nodes.push(n);
    }
    nodes[0]
}

fn op_strategy() -> impl Strategy<Value = OpPick> {
    prop_oneof![
        Just(OpPick::Add),
        Just(OpPick::Sub),
        Just(OpPick::Mul),
        Just(OpPick::And),
        Just(OpPick::Or),
        Just(OpPick::Xor),
        Just(OpPick::Shl),
        Just(OpPick::Lshr),
        Just(OpPick::Ashr),
        Just(OpPick::Udiv),
        Just(OpPick::Urem),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Forcing a random expression to equal its concretely-evaluated value
    /// must be SAT, and the model must reproduce the inputs' behaviour.
    #[test]
    fn blasted_circuit_matches_reference_eval(
        width in 1u32..10,
        ops in proptest::collection::vec(op_strategy(), 1..6),
        leaves in proptest::collection::vec(0u64..256, 2..7),
        var_values in proptest::collection::vec(0u64..256, 7),
    ) {
        let n_vars = (leaves.len() as u32).min(3);
        let mut g = TermGraph::new();
        let root = build_tree(&mut g, width, &ops, &leaves, n_vars);

        // Reference evaluation with fixed variable values.
        let mut env = HashMap::new();
        for i in 0..n_vars {
            let v = g.var(format!("v{i}"), width);
            env.insert(v, BvVal::from_u64(width, var_values[i as usize]));
        }
        let expected = g.eval(root, &env);

        // Assert (root == expected) ∧ (vars == their values): must be SAT.
        let c = g.constant(expected.clone());
        let eq = g.eq(root, c);
        let mut solver = Solver::new();
        solver.assert(eq);
        for i in 0..n_vars {
            let v = g.var(format!("v{i}"), width);
            let cv = g.constant(BvVal::from_u64(width, var_values[i as usize]));
            let veq = g.eq(v, cv);
            solver.assert(veq);
        }
        let res = solver.check(&g);
        prop_assert!(res.is_sat(), "forcing the concrete value must be SAT");
        let model = res.model().expect("model");
        prop_assert!(model_satisfies(&g, solver.assertions(), model));
    }

    /// Asserting root == expected+1 with pinned inputs must be UNSAT
    /// (functions are deterministic).
    #[test]
    fn determinism_unsat(
        width in 2u32..8,
        ops in proptest::collection::vec(op_strategy(), 1..5),
        leaves in proptest::collection::vec(0u64..64, 2..6),
        var_values in proptest::collection::vec(0u64..64, 6),
    ) {
        let n_vars = (leaves.len() as u32).min(2);
        let mut g = TermGraph::new();
        let root = build_tree(&mut g, width, &ops, &leaves, n_vars);
        let mut env = HashMap::new();
        for i in 0..n_vars {
            let v = g.var(format!("v{i}"), width);
            env.insert(v, BvVal::from_u64(width, var_values[i as usize]));
        }
        let expected = g.eval(root, &env);
        let wrong = expected.add(&BvVal::from_u64(width, 1));
        let c = g.constant(wrong);
        let eq = g.eq(root, c);
        let mut solver = Solver::new();
        solver.assert(eq);
        for i in 0..n_vars {
            let v = g.var(format!("v{i}"), width);
            let cv = g.constant(BvVal::from_u64(width, var_values[i as usize]));
            let veq = g.eq(v, cv);
            solver.assert(veq);
        }
        prop_assert_eq!(solver.check(&g), CheckResult::Unsat);
    }

    /// Models for underconstrained formulas still satisfy them.
    #[test]
    fn models_satisfy_assertions(
        width in 1u32..9,
        ops in proptest::collection::vec(op_strategy(), 1..5),
        leaves in proptest::collection::vec(0u64..256, 2..6),
        target in 0u64..256,
    ) {
        let n_vars = (leaves.len() as u32).min(3);
        let mut g = TermGraph::new();
        let root = build_tree(&mut g, width, &ops, &leaves, n_vars);
        let c = g.constant(BvVal::from_u64(width, target));
        let eq = g.eq(root, c);
        let mut solver = Solver::new();
        solver.assert(eq);
        if let CheckResult::Sat(model) = solver.check(&g) {
            prop_assert!(model_satisfies(&g, solver.assertions(), &model));
        }
        // UNSAT is fine: not every target is reachable.
    }

    /// Budgeted solving is *sound*: whenever a budgeted solve commits to
    /// Sat or Unsat (rather than Unknown), it agrees with the unbudgeted
    /// solve on the same formula, and any model it returns is real.
    #[test]
    fn budgeted_solve_agrees_when_definite(
        width in 1u32..9,
        ops in proptest::collection::vec(op_strategy(), 1..5),
        leaves in proptest::collection::vec(0u64..256, 2..6),
        target in 0u64..256,
        max_conflicts in 1u64..48,
        max_decisions in 1u64..96,
    ) {
        let n_vars = (leaves.len() as u32).min(3);
        let mut g = TermGraph::new();
        let root = build_tree(&mut g, width, &ops, &leaves, n_vars);
        let c = g.constant(BvVal::from_u64(width, target));
        let eq = g.eq(root, c);

        let mut reference = Solver::new();
        reference.assert(eq);
        let expected = reference.check(&g);

        let mut budgeted = Solver::with_budget(SolveBudget {
            max_conflicts: Some(max_conflicts),
            max_decisions: Some(max_decisions),
        });
        budgeted.assert(eq);
        match budgeted.check(&g) {
            CheckResult::Unknown { reason } => {
                prop_assert!(!reason.is_empty(), "Unknown must carry a reason");
            }
            CheckResult::Unsat => prop_assert_eq!(expected, CheckResult::Unsat),
            CheckResult::Sat(model) => {
                prop_assert!(expected.is_sat(), "budgeted Sat but reference Unsat");
                prop_assert!(model_satisfies(&g, budgeted.assertions(), &model));
            }
        }
    }
}
