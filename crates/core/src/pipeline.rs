//! The SoCCAR pipeline — the paper's **Figure 1** workflow.
//!
//! The three published stages, preceded by a fast static pre-pass:
//!
//! 0. **Lint** ([`soccar_lint`]) — rule-based structural checks over the
//!    parsed design; catches reset-domain hazards (including the
//!    Section V-C implicit-governor blind spot) in milliseconds, before
//!    any simulation;
//! 1. **AR_CFG generation** (Algorithm 1) — per-module extraction of
//!    reset-governed events;
//! 2. **Module connection profile & composition** (Algorithm 2) — the
//!    SoC-level `AR(S)` with reset-domain analysis, bound onto the
//!    elaborated design;
//! 3. **Concolic testing** (Algorithm 3) — systematic exploration of the
//!    extracted design space with security-property checking.

use std::time::{Duration, Instant};

use serde::Serialize;
use soccar_cfg::{bind_events, compose_soc, GovernorAnalysis, ResetNaming};
use soccar_concolic::{ConcolicConfig, ConcolicEngine, ConcolicReport, SecurityProperty};
use soccar_lint::{LintConfig, LintReport, Linter};
use soccar_rtl::{elaborate::elaborate, parser::parse, span::SourceMap, Design};

use crate::error::SoccarError;

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct SoccarConfig {
    /// Governor-analysis level (Explicit = the published tool).
    pub analysis: GovernorAnalysis,
    /// Reset naming convention.
    pub naming: ResetNaming,
    /// Concolic engine parameters.
    pub concolic: ConcolicConfig,
    /// Per-rule allow/deny configuration for the lint pre-pass.
    pub lint: LintConfig,
}

impl Default for SoccarConfig {
    fn default() -> SoccarConfig {
        SoccarConfig {
            analysis: GovernorAnalysis::Explicit,
            naming: ResetNaming::new(),
            concolic: ConcolicConfig::default(),
            lint: LintConfig::default(),
        }
    }
}

/// Timing of one pipeline stage (for the Figure 1 report).
#[derive(Debug, Clone, Serialize)]
pub struct StageReport {
    /// Stage name.
    pub stage: String,
    /// Wall-clock duration.
    #[serde(with = "duration_secs")]
    pub elapsed: Duration,
    /// One-line summary.
    pub detail: String,
}

mod duration_secs {
    use serde::Serializer;
    use std::time::Duration;

    pub fn serialize<S: Serializer>(d: &Duration, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_f64(d.as_secs_f64())
    }
}

/// Summary of the extraction stages.
#[derive(Debug, Clone, Serialize)]
pub struct ExtractionSummary {
    /// Modules in the source.
    pub modules: usize,
    /// Instances after composition.
    pub instances: usize,
    /// Reset-governed events in `AR(S)`.
    pub ar_events: usize,
    /// Reset domains found.
    pub reset_domains: usize,
    /// Events bound onto the elaborated design.
    pub bound_events: usize,
}

/// The complete result of one SoCCAR run.
#[derive(Debug)]
pub struct AnalysisReport {
    /// Per-stage timing (Figure 1).
    pub stages: Vec<StageReport>,
    /// Static lint findings from the pre-pass.
    pub lint: LintReport,
    /// Extraction summary.
    pub extraction: ExtractionSummary,
    /// Concolic testing outcome (violations, coverage, witnesses).
    pub concolic: ConcolicReport,
    /// Total wall-clock time.
    pub total: Duration,
}

impl AnalysisReport {
    /// All invalidation messages.
    #[must_use]
    pub fn violations(&self) -> &[soccar_concolic::Violation] {
        &self.concolic.violations
    }
}

/// The SoCCAR framework facade.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use soccar::{Soccar, SoccarConfig};
/// use soccar_concolic::{PropertyKind, SecurityProperty};
/// use soccar_rtl::LogicVec;
///
/// let src = "
///   module ip(input clk, input rst_n, output reg [7:0] key);
///     always @(posedge clk or negedge rst_n)
///       if (!rst_n) key <= 8'd0;   // correct: reset scrubs the key
///       else key <= 8'hA5;
///   endmodule
///   module top(input clk, input sec_rst_n);
///     ip u (.clk(clk), .rst_n(sec_rst_n));
///   endmodule";
/// let property = SecurityProperty {
///     name: "key-cleared".into(),
///     module: "ip".into(),
///     kind: PropertyKind::ClearedAfterReset {
///         domain: "top.sec_rst_n".into(),
///         signal: "top.u.key".into(),
///         expected: LogicVec::zeros(8),
///         window: 0,
///     },
/// };
/// let soccar = Soccar::new(SoccarConfig::default());
/// let report = soccar.analyze("t.v", src, "top", vec![property])?;
/// assert!(report.violations().is_empty());
/// assert_eq!(report.extraction.reset_domains, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct Soccar {
    config: SoccarConfig,
}

impl Soccar {
    /// Creates the framework with the given configuration.
    #[must_use]
    pub fn new(config: SoccarConfig) -> Soccar {
        Soccar { config }
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &SoccarConfig {
        &self.config
    }

    /// Runs the full pipeline on Verilog source text.
    ///
    /// # Errors
    ///
    /// Propagates frontend, composition, binding, engine-setup and
    /// simulation failures.
    pub fn analyze(
        &self,
        file_name: &str,
        source: &str,
        top: &str,
        properties: Vec<SecurityProperty>,
    ) -> Result<AnalysisReport, SoccarError> {
        let t0 = Instant::now();
        let mut stages = Vec::new();

        // Frontend.
        let t = Instant::now();
        let mut map = SourceMap::new();
        let file = map.add_file(file_name, source);
        let unit = parse(file, source)?;
        let design: Design = elaborate(&unit, top)?;
        stages.push(StageReport {
            stage: "frontend".into(),
            elapsed: t.elapsed(),
            detail: format!("{} modules; {}", unit.modules.len(), design.stats()),
        });

        // Stage 0: static lint pre-pass (structural reset-domain checks).
        let t = Instant::now();
        let lint = Linter::new()
            .with_naming(self.config.naming.clone())
            .with_config(self.config.lint.clone())
            .lint_unit(&unit, &map);
        stages.push(StageReport {
            stage: "lint".into(),
            elapsed: t.elapsed(),
            detail: lint.summary(),
        });

        // Stage 1+2: AR_CFG generation and composition (Algorithms 1–2).
        let t = Instant::now();
        let soc = compose_soc(&unit, top, &self.config.naming, self.config.analysis)
            .map_err(SoccarError::Cfg)?;
        let bound = bind_events(&design, &soc).map_err(|e| SoccarError::Cfg(e.to_string()))?;
        stages.push(StageReport {
            stage: "ar_cfg".into(),
            elapsed: t.elapsed(),
            detail: format!(
                "{} reset-governed events across {} instances; {} reset domains",
                soc.event_count(),
                soc.instances.len(),
                soc.reset_domains.len()
            ),
        });
        let extraction = ExtractionSummary {
            modules: unit.modules.len(),
            instances: soc.instances.len(),
            ar_events: soc.event_count(),
            reset_domains: soc.reset_domains.len(),
            bound_events: bound.len(),
        };

        // Stage 3: concolic testing (Algorithm 3).
        let t = Instant::now();
        let mut engine =
            ConcolicEngine::new(&design, &bound, properties, self.config.concolic.clone())
                .map_err(SoccarError::Config)?;
        let concolic = engine.run()?;
        stages.push(StageReport {
            stage: "concolic".into(),
            elapsed: t.elapsed(),
            detail: format!(
                "{} rounds, {}/{} targets covered, {} violations",
                concolic.rounds,
                concolic.targets_covered,
                concolic.targets_total,
                concolic.violations.len()
            ),
        });

        Ok(AnalysisReport {
            stages,
            lint,
            extraction,
            concolic,
            total: t0.elapsed(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soccar_concolic::{PropertyKind, SecurityProperty};
    use soccar_rtl::LogicVec;

    const LEAKY: &str = "
        module ip(input clk, input rst_n, output reg [7:0] key);
          always @(posedge clk or negedge rst_n)
            if (!rst_n) key <= key;   // BUG: not scrubbed
            else key <= 8'hA5;
        endmodule
        module top(input clk, input sec_rst_n);
          ip u (.clk(clk), .rst_n(sec_rst_n));
        endmodule";

    fn key_property() -> SecurityProperty {
        SecurityProperty {
            name: "key-cleared".into(),
            module: "ip".into(),
            kind: PropertyKind::ClearedAfterReset {
                domain: "top.sec_rst_n".into(),
                signal: "top.u.key".into(),
                expected: LogicVec::zeros(8),
                window: 0,
            },
        }
    }

    #[test]
    fn pipeline_detects_and_reports_stages() {
        let soccar = Soccar::new(SoccarConfig::default());
        let report = soccar
            .analyze("t.v", LEAKY, "top", vec![key_property()])
            .expect("analyze");
        assert_eq!(report.stages.len(), 4);
        assert_eq!(report.stages[0].stage, "frontend");
        assert_eq!(report.stages[1].stage, "lint");
        assert_eq!(report.stages[2].stage, "ar_cfg");
        assert_eq!(report.stages[3].stage, "concolic");
        assert_eq!(report.extraction.ar_events, 1);
        assert_eq!(report.extraction.reset_domains, 1);
        assert_eq!(report.violations().len(), 1);
        assert_eq!(report.violations()[0].module, "ip");
        assert!(report.total >= report.stages[3].elapsed);
    }

    #[test]
    fn lint_pre_pass_flags_the_unscrubbed_key() {
        // The LEAKY design's reset arm re-assigns `key` to itself, so the
        // partial-reset-domain structural diff stays silent; the Info-level
        // secondary check and the pipeline plumbing are what we assert here.
        let soccar = Soccar::new(SoccarConfig::default());
        let report = soccar
            .analyze("t.v", LEAKY, "top", vec![key_property()])
            .expect("analyze");
        let stage = report
            .stages
            .iter()
            .find(|s| s.stage == "lint")
            .expect("lint stage present");
        assert_eq!(stage.detail, report.lint.summary());
    }

    #[test]
    fn lint_config_flows_through_the_pipeline() {
        let mut config = SoccarConfig::default();
        config.lint.allow = vec![
            "async-reset-unsynchronized".into(),
            "combinational-reset-gen".into(),
            "implicit-governor".into(),
            "partial-reset-domain".into(),
            "reset-crosses-domains".into(),
            "reset-name-shadowing".into(),
        ];
        let report = Soccar::new(config)
            .analyze("t.v", LEAKY, "top", vec![key_property()])
            .expect("analyze");
        assert!(report.lint.diagnostics.is_empty());
    }

    #[test]
    fn pipeline_errors_are_typed() {
        let soccar = Soccar::new(SoccarConfig::default());
        assert!(matches!(
            soccar.analyze("t.v", "module broken(", "broken", vec![]),
            Err(SoccarError::Rtl(_))
        ));
        assert!(matches!(
            soccar.analyze("t.v", "module a(input x); endmodule", "missing", vec![]),
            Err(SoccarError::Rtl(_))
        ));
    }
}
