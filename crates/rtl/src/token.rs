//! Token definitions for the Verilog subset lexer.

use std::fmt;

use crate::span::Span;
use crate::value::LogicVec;

/// Verilog keywords recognized by the subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // each variant is the keyword it names
pub enum Keyword {
    Module,
    Endmodule,
    Input,
    Output,
    Inout,
    Wire,
    Reg,
    Integer,
    Parameter,
    Localparam,
    Assign,
    Always,
    Initial,
    Begin,
    End,
    If,
    Else,
    Case,
    Casez,
    Casex,
    Endcase,
    Default,
    Posedge,
    Negedge,
    Or,
    For,
    Signed,
}

impl Keyword {
    /// Looks up a keyword from its source spelling.
    #[must_use]
    pub fn lookup(s: &str) -> Option<Keyword> {
        Some(match s {
            "module" => Keyword::Module,
            "endmodule" => Keyword::Endmodule,
            "input" => Keyword::Input,
            "output" => Keyword::Output,
            "inout" => Keyword::Inout,
            "wire" => Keyword::Wire,
            "reg" => Keyword::Reg,
            "integer" => Keyword::Integer,
            "parameter" => Keyword::Parameter,
            "localparam" => Keyword::Localparam,
            "assign" => Keyword::Assign,
            "always" => Keyword::Always,
            "initial" => Keyword::Initial,
            "begin" => Keyword::Begin,
            "end" => Keyword::End,
            "if" => Keyword::If,
            "else" => Keyword::Else,
            "case" => Keyword::Case,
            "casez" => Keyword::Casez,
            "casex" => Keyword::Casex,
            "endcase" => Keyword::Endcase,
            "default" => Keyword::Default,
            "posedge" => Keyword::Posedge,
            "negedge" => Keyword::Negedge,
            "or" => Keyword::Or,
            "for" => Keyword::For,
            "signed" => Keyword::Signed,
            _ => return None,
        })
    }

    /// The source spelling of the keyword.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Keyword::Module => "module",
            Keyword::Endmodule => "endmodule",
            Keyword::Input => "input",
            Keyword::Output => "output",
            Keyword::Inout => "inout",
            Keyword::Wire => "wire",
            Keyword::Reg => "reg",
            Keyword::Integer => "integer",
            Keyword::Parameter => "parameter",
            Keyword::Localparam => "localparam",
            Keyword::Assign => "assign",
            Keyword::Always => "always",
            Keyword::Initial => "initial",
            Keyword::Begin => "begin",
            Keyword::End => "end",
            Keyword::If => "if",
            Keyword::Else => "else",
            Keyword::Case => "case",
            Keyword::Casez => "casez",
            Keyword::Casex => "casex",
            Keyword::Endcase => "endcase",
            Keyword::Default => "default",
            Keyword::Posedge => "posedge",
            Keyword::Negedge => "negedge",
            Keyword::Or => "or",
            Keyword::For => "for",
            Keyword::Signed => "signed",
        }
    }
}

/// Multi- and single-character punctuation/operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // each variant names its glyph
pub enum Punct {
    LParen,
    RParen,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    Semi,
    Comma,
    Colon,
    Dot,
    Hash,
    At,
    Question,
    Assign,    // =
    LtEq,      // <=  (also non-blocking assign)
    GtEq,      // >=
    Lt,        // <
    Gt,        // >
    EqEq,      // ==
    NotEq,     // !=
    CaseEq,    // ===
    CaseNotEq, // !==
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,        // &
    AmpAmp,     // &&
    Pipe,       // |
    PipePipe,   // ||
    Caret,      // ^
    Tilde,      // ~
    TildeCaret, // ~^ (xnor)
    Bang,       // !
    Shl,        // <<
    Shr,        // >>
    AShr,       // >>>
    Star2,      // ** (power; const contexts only)
    PlusColon,  // +: (indexed part-select)
    MinusColon, // -: (indexed part-select)
}

impl fmt::Display for Punct {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Punct::LParen => "(",
            Punct::RParen => ")",
            Punct::LBracket => "[",
            Punct::RBracket => "]",
            Punct::LBrace => "{",
            Punct::RBrace => "}",
            Punct::Semi => ";",
            Punct::Comma => ",",
            Punct::Colon => ":",
            Punct::Dot => ".",
            Punct::Hash => "#",
            Punct::At => "@",
            Punct::Question => "?",
            Punct::Assign => "=",
            Punct::LtEq => "<=",
            Punct::GtEq => ">=",
            Punct::Lt => "<",
            Punct::Gt => ">",
            Punct::EqEq => "==",
            Punct::NotEq => "!=",
            Punct::CaseEq => "===",
            Punct::CaseNotEq => "!==",
            Punct::Plus => "+",
            Punct::Minus => "-",
            Punct::Star => "*",
            Punct::Slash => "/",
            Punct::Percent => "%",
            Punct::Amp => "&",
            Punct::AmpAmp => "&&",
            Punct::Pipe => "|",
            Punct::PipePipe => "||",
            Punct::Caret => "^",
            Punct::Tilde => "~",
            Punct::TildeCaret => "~^",
            Punct::Bang => "!",
            Punct::Shl => "<<",
            Punct::Shr => ">>",
            Punct::AShr => ">>>",
            Punct::Star2 => "**",
            Punct::PlusColon => "+:",
            Punct::MinusColon => "-:",
        };
        f.write_str(s)
    }
}

/// What a token is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// A keyword such as `module`.
    Keyword(Keyword),
    /// An identifier (simple or escaped).
    Ident(String),
    /// A number literal. `sized` records whether an explicit width was
    /// written (`8'hFF`) as opposed to a bare decimal (`42`).
    Number {
        /// The literal's value; bare decimals are 32 bits wide.
        value: LogicVec,
        /// Whether the literal carried an explicit size.
        sized: bool,
    },
    /// Punctuation or operator.
    Punct(Punct),
    /// A string literal (used only in `$display`-style calls, kept for
    /// diagnostics; the subset has no string-valued expressions).
    Str(String),
    /// A system task/function name including the `$` (e.g. `$display`).
    SysName(String),
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Keyword(k) => write!(f, "`{}`", k.as_str()),
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Number { value, .. } => write!(f, "number `{value}`"),
            TokenKind::Punct(p) => write!(f, "`{p}`"),
            TokenKind::Str(_) => write!(f, "string literal"),
            TokenKind::SysName(s) => write!(f, "`{s}`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// A lexed token with its source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// Where it came from.
    pub span: Span,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_round_trip() {
        for kw in [
            Keyword::Module,
            Keyword::Endmodule,
            Keyword::Casez,
            Keyword::Posedge,
            Keyword::Localparam,
            Keyword::Signed,
        ] {
            assert_eq!(Keyword::lookup(kw.as_str()), Some(kw));
        }
        assert_eq!(Keyword::lookup("frobnicate"), None);
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(TokenKind::Punct(Punct::CaseEq).to_string(), "`===`");
        assert_eq!(TokenKind::Eof.to_string(), "end of input");
    }
}
