//! The `BENCH_<soc>.json` emitter: canonical, schema-versioned perf
//! records so the repository carries a benchmark trajectory CI can gate.
//!
//! Design rules (docs/OBSERVABILITY.md):
//!
//! * **counters are exact** — detection results, rounds, solver calls,
//!   coverage are deterministic for a given configuration, so the CI
//!   `bench-smoke` job compares them byte-for-byte against the checked-in
//!   baseline and fails on any drift;
//! * **timings are quantized, reported, never gated** — wall-clock fields
//!   end in `_q` and are bucketed to the nearest power-of-two
//!   milliseconds ([`quantize_seconds`]), which keeps the files stable
//!   enough to diff by eye while still charting a trajectory;
//! * the file is pretty-printed one field per line so [`strip_timing`]
//!   can neutralize timing fields textually — no JSON parser needed on
//!   the comparison side.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::sink::push_json_str;

/// Version of the bench-JSON schema. Bump on renamed/removed fields or
/// changed quantization; adding counters is additive and does not bump.
pub const BENCH_SCHEMA_VERSION: u32 = 1;

/// One benchmark unit (a bug-seeded SoC variant) inside a report.
#[derive(Debug, Clone, Default)]
pub struct BenchVariant {
    /// Display name (`ClusterSoC Variant #1`).
    pub variant: String,
    /// Exact, deterministic counters (`detected`, `rounds`,
    /// `solver_calls`, …), serialized sorted by name.
    pub counters: BTreeMap<String, u64>,
    /// Named quantized timings in seconds (key must end in `_q`, e.g.
    /// `flip_incremental_q`). Reported, not gated — [`strip_timing`]
    /// zeroes them before baseline comparison. Additive to schema v1.
    pub timings_q: BTreeMap<String, f64>,
    /// Quantized verification wall-clock, in seconds. Reported, not gated.
    pub seconds_q: f64,
}

/// A `BENCH_<soc>.json` document.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// SoC slug (`clustersoc`, `autosoc`) — lowercased into the file name.
    pub soc: String,
    /// `full` or `smoke` (the CI reduced-rounds mode). Baselines only
    /// compare against reports of the same mode.
    pub mode: String,
    /// Per-variant records, in `soccar_soc::variants()` order.
    pub variants: Vec<BenchVariant>,
}

impl BenchReport {
    /// The canonical file name for this report.
    #[must_use]
    pub fn file_name(&self) -> String {
        format!("BENCH_{}.json", self.soc.to_lowercase())
    }

    /// Pretty-printed JSON, one field per line, trailing newline.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": {BENCH_SCHEMA_VERSION},");
        out.push_str("  \"soc\": ");
        push_json_str(&mut out, &self.soc);
        out.push_str(",\n  \"mode\": ");
        push_json_str(&mut out, &self.mode);
        out.push_str(",\n  \"variants\": [");
        for (i, v) in self.variants.iter().enumerate() {
            out.push_str(if i > 0 { ",\n    {\n" } else { "\n    {\n" });
            out.push_str("      \"variant\": ");
            push_json_str(&mut out, &v.variant);
            out.push_str(",\n");
            for (name, value) in &v.counters {
                out.push_str("      ");
                push_json_str(&mut out, name);
                let _ = writeln!(out, ": {value},");
            }
            for (name, value) in &v.timings_q {
                debug_assert!(name.ends_with("_q"), "timing key must end in _q: {name}");
                out.push_str("      ");
                push_json_str(&mut out, name);
                let _ = writeln!(out, ": {value},");
            }
            let _ = writeln!(out, "      \"seconds_q\": {}", v.seconds_q);
            out.push_str("    }");
        }
        out.push_str(if self.variants.is_empty() {
            "]\n}\n"
        } else {
            "\n  ]\n}\n"
        });
        out
    }
}

/// Quantizes a duration in seconds to the nearest power-of-two
/// milliseconds bucket (minimum 1 ms), returned in seconds. Stable under
/// the ordinary run-to-run noise of a benchmark machine, coarse enough
/// that a real regression moves it a whole bucket.
#[must_use]
pub fn quantize_seconds(secs: f64) -> f64 {
    let ms = (secs * 1e3).max(1.0);
    let exp = ms.log2().round();
    2f64.powf(exp) / 1e3
}

/// Replaces the value of every `"*_q":` timing field with `0`, so two
/// reports can be compared exactly on everything that is gated.
#[must_use]
pub fn strip_timing(json: &str) -> String {
    let mut out = String::new();
    for line in json.lines() {
        let stripped = line.trim_start();
        if let Some(colon) = stripped.find("\": ") {
            if stripped[..colon].ends_with("_q\"") || stripped[..colon].ends_with("_q") {
                let indent = line.len() - stripped.len();
                let trailing_comma = stripped.ends_with(',');
                out.push_str(&line[..indent + colon + 3]);
                out.push('0');
                if trailing_comma {
                    out.push(',');
                }
                out.push('\n');
                continue;
            }
        }
        out.push_str(line);
        out.push('\n');
    }
    out
}

/// Compares a freshly generated report against a checked-in baseline,
/// ignoring timing fields. Returns a list of human-readable mismatch
/// descriptions — empty means the gate passes.
#[must_use]
pub fn diff_against_baseline(current: &str, baseline: &str) -> Vec<String> {
    let cur = strip_timing(current);
    let base = strip_timing(baseline);
    if cur == base {
        return Vec::new();
    }
    let mut diffs = Vec::new();
    let cur_lines: Vec<&str> = cur.lines().collect();
    let base_lines: Vec<&str> = base.lines().collect();
    let n = cur_lines.len().max(base_lines.len());
    for i in 0..n {
        let c = cur_lines.get(i).copied().unwrap_or("<missing>");
        let b = base_lines.get(i).copied().unwrap_or("<missing>");
        if c != b {
            diffs.push(format!(
                "line {}: baseline `{}` vs current `{}`",
                i + 1,
                b.trim(),
                c.trim()
            ));
        }
    }
    diffs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchReport {
        let mut counters = BTreeMap::new();
        counters.insert("detected".to_owned(), 2);
        counters.insert("rounds".to_owned(), 17);
        BenchReport {
            soc: "ClusterSoC".to_owned(),
            mode: "smoke".to_owned(),
            variants: vec![
                BenchVariant {
                    variant: "ClusterSoC Variant #1".to_owned(),
                    counters: counters.clone(),
                    timings_q: BTreeMap::from([("flip_incremental_q".to_owned(), 0.004)]),
                    seconds_q: 0.256,
                },
                BenchVariant {
                    variant: "ClusterSoC Variant #2".to_owned(),
                    counters,
                    timings_q: BTreeMap::new(),
                    seconds_q: 0.512,
                },
            ],
        }
    }

    #[test]
    fn json_shape_and_file_name() {
        let r = sample();
        assert_eq!(r.file_name(), "BENCH_clustersoc.json");
        let json = r.to_json();
        assert!(json.starts_with("{\n  \"schema\": 1,\n  \"soc\": \"ClusterSoC\","));
        assert!(json.contains("\"mode\": \"smoke\""));
        assert!(json.contains("\"variant\": \"ClusterSoC Variant #1\""));
        assert!(json.contains("\"detected\": 2,"));
        assert!(json.contains("\"flip_incremental_q\": 0.004,"));
        assert!(json.contains("\"seconds_q\": 0.256"));
        assert!(json.ends_with("  ]\n}\n"));
    }

    #[test]
    fn empty_report_is_valid() {
        let r = BenchReport {
            soc: "x".into(),
            mode: "full".into(),
            variants: Vec::new(),
        };
        assert!(r.to_json().ends_with("\"variants\": []\n}\n"));
    }

    #[test]
    fn quantization_buckets_to_powers_of_two_ms() {
        assert_eq!(quantize_seconds(0.0), 0.001); // floor at 1 ms
        assert_eq!(quantize_seconds(0.0009), 0.001);
        assert_eq!(quantize_seconds(0.1), 0.128); // 100 ms → 128 ms bucket
        assert_eq!(quantize_seconds(0.2), 0.256);
        assert_eq!(quantize_seconds(1.3), 1.024);
        assert_eq!(quantize_seconds(1.6), 2.048);
    }

    #[test]
    fn timing_fields_are_stripped_counters_are_not() {
        let json = sample().to_json();
        let stripped = strip_timing(&json);
        assert!(stripped.contains("\"seconds_q\": 0\n"));
        assert!(stripped.contains("\"flip_incremental_q\": 0,"));
        assert!(stripped.contains("\"detected\": 2,"));
        assert!(!stripped.contains("0.256"));
        assert!(!stripped.contains("0.004"));
    }

    #[test]
    fn diff_ignores_timing_but_gates_counters() {
        let a = sample();
        let mut b = sample();
        b.variants[0].seconds_q = 99.0;
        assert!(diff_against_baseline(&a.to_json(), &b.to_json()).is_empty());
        b.variants[0].counters.insert("detected".to_owned(), 1);
        let diffs = diff_against_baseline(&a.to_json(), &b.to_json());
        assert_eq!(diffs.len(), 1);
        assert!(diffs[0].contains("\"detected\": 1"));
    }
}
