//! Incremental re-analysis: the content-hashed session cache behind
//! `soccar serve`.
//!
//! [`AnalysisSession`] wraps the batch pipeline ([`Soccar::analyze`])
//! with four cache tiers, each keyed by content so an RTL edit
//! invalidates exactly what it touches:
//!
//! | tier | key | holds | invalidated by |
//! |------|-----|-------|----------------|
//! | report | raw source + request | full [`AnalysisReport`] | any byte change |
//! | parse | raw chunk hash | per-module AST (0-based spans) | editing that module's text |
//! | extract | structural module hash | per-module `ArCfg` | semantic edit to that module |
//! | design | ordered structural hashes + top | elaborated design, composed `SocArCfg`, bound events | semantic edit anywhere |
//! | concolic | design key + properties + config | [`ConcolicReport`] | semantic edit / request change |
//!
//! The contract — pinned by the `warm_equals_cold` tests and the server
//! integration suite — is that a warm [`AnalysisSession::analyze`]
//! returns a report whose [`AnalysisReport::canonical_json`] is
//! byte-identical to a cold batch run of the same request. Lint always
//! re-runs (it is span-dependent and milliseconds-cheap); cached module
//! ASTs are span-rebased into the new file so its diagnostics cannot
//! drift. Requests carrying a fault-injection plan bypass every tier and
//! delegate to the batch pipeline, because injected faults key on global
//! task indices the per-module warm path does not reproduce; requests
//! with a wall-clock round deadline keep the structural tiers but skip
//! the result tiers, since their outcome is timing-dependent.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use serde::Serialize;
use soccar_cfg::bind::BoundEvent;
use soccar_cfg::extract::{extract_module_cfg, project_ar_cfg, ArCfg};
use soccar_cfg::{bind_events, compose_soc_prepared};
use soccar_concolic::{ConcolicEngine, ConcolicReport, SecurityProperty, WarmBlastPool};
use soccar_lint::Linter;
use soccar_rtl::ast::Module;
use soccar_rtl::elaborate::elaborate;
use soccar_rtl::fingerprint::{assemble_unit, hash_bytes, module_fingerprint, split_modules};
use soccar_rtl::span::SourceMap;
use soccar_rtl::Design;
use soccar_smt::SolveBudget;

use crate::error::SoccarError;
use crate::pipeline::{
    AnalysisReport, ExecSummary, ExtractionSummary, Health, Soccar, SoccarConfig, StageReport,
};

/// Per-request quality-of-service overrides, layered over the session's
/// base [`SoccarConfig`] (the server fills this from request fields; the
/// CLI flags `--solver-budget`, `--keep-going`, `--round-deadline-ms`
/// have the same meaning in batch mode).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RequestQos {
    /// Per-flip-solve resource budget.
    pub solver_budget: Option<SolveBudget>,
    /// Degrade instead of aborting on worker panics.
    pub keep_going: Option<bool>,
    /// Wall-clock deadline per concolic round, in milliseconds. Setting
    /// this makes the outcome timing-dependent, so such requests skip
    /// the report/concolic cache tiers.
    pub round_deadline_ms: Option<u64>,
}

impl RequestQos {
    /// Applies the overrides to a copy of `base`.
    #[must_use]
    pub fn apply(&self, base: &SoccarConfig) -> SoccarConfig {
        let mut config = base.clone();
        if let Some(budget) = self.solver_budget {
            config.concolic.solver_budget = budget;
        }
        if let Some(keep_going) = self.keep_going {
            config.keep_going = keep_going;
        }
        if let Some(ms) = self.round_deadline_ms {
            config.concolic.round_deadline = Some(Duration::from_millis(ms));
        }
        config
    }
}

/// What one [`AnalysisSession::analyze`] call reused and recomputed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct RequestStats {
    /// The whole report came from the report tier.
    pub report_cache_hit: bool,
    /// The request fell back to the batch pipeline (unsplittable source
    /// or a fault-injection plan).
    pub fallback: bool,
    /// Modules in the source.
    pub modules_total: usize,
    /// Modules whose chunk text changed and were re-parsed.
    pub modules_reparsed: usize,
    /// Modules whose structure changed and were re-extracted.
    pub modules_reextracted: usize,
    /// Elaboration/composition/binding was reused from the design tier.
    pub design_cache_hit: bool,
    /// The concolic stage was reused from the result tier.
    pub concolic_cache_hit: bool,
    /// Concolic targets actually re-run (0 on a concolic cache hit).
    pub targets_rerun: usize,
}

/// Session-lifetime cache counters, for `status` responses and the
/// `server.*` observability counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct SessionCounters {
    /// Analyze requests served.
    pub requests: u64,
    /// Requests answered entirely from the report tier.
    pub cache_hits: u64,
    /// Requests that bypassed the session (fallback to batch).
    pub fallbacks: u64,
    /// Module re-parses across all requests.
    pub modules_reparsed: u64,
    /// Module re-extractions across all requests.
    pub modules_reextracted: u64,
    /// Concolic targets re-run across all requests.
    pub targets_rerun: u64,
    /// Entries dropped from any tier by capacity eviction.
    pub evictions: u64,
}

/// Capacity limits for the cache tiers (entries, not bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheCaps {
    /// Parse tier: per-module ASTs.
    pub parse: usize,
    /// Extract tier: per-module AR_CFGs.
    pub extract: usize,
    /// Design tier: elaborated designs with composed/bound AR_CFGs.
    pub design: usize,
    /// Concolic tier: engine reports.
    pub concolic: usize,
    /// Report tier: full analysis reports.
    pub report: usize,
    /// Warm-blast tier: retained pre-blasted solver bases.
    pub warm_blast: usize,
}

impl Default for CacheCaps {
    fn default() -> CacheCaps {
        CacheCaps {
            parse: 4096,
            extract: 4096,
            design: 8,
            concolic: 64,
            report: 64,
            warm_blast: 64,
        }
    }
}

/// A bounded map with cost-aware, recency-tiered eviction — the policy
/// every cache tier shares (it replaced the original FIFO once the serve
/// layer saw real mixed traffic).
///
/// Each entry carries a caller-supplied **cost**: an estimate of what
/// recomputing it takes, scaled by its size (bytes of source for the
/// structural tiers, targets × cycles for the concolic tier). Eviction
/// picks its victim in two tiers:
///
/// 1. **cold** entries — untouched for more than `cap` map operations —
///    are evicted first, cheapest first;
/// 2. only when no entry is cold does eviction reach into the **recent**
///    tier, again cheapest first.
///
/// Ties break on insertion sequence (oldest first), so the victim is a
/// pure function of the operation history: no wall clock, no hash-map
/// iteration order, no thread timing. Requests serialize over the
/// session mutex, which makes the operation history — and therefore
/// eviction — deterministic for a given request sequence, exactly like
/// the FIFO it replaced. Cached *results* are never policy-dependent;
/// the policy only decides what is recomputed.
#[derive(Debug)]
struct CostAwareMap<K, V> {
    entries: HashMap<K, CostSlot<V>>,
    cap: usize,
    /// Logical clock: bumps on every get/insert; drives the recency tier.
    clock: u64,
    /// Insertion sequence: the deterministic tie-breaker.
    seq: u64,
}

#[derive(Debug)]
struct CostSlot<V> {
    value: V,
    cost: u64,
    last_use: u64,
    seq: u64,
}

impl<K: Eq + Hash + Clone, V> CostAwareMap<K, V> {
    fn new(cap: usize) -> CostAwareMap<K, V> {
        CostAwareMap {
            entries: HashMap::new(),
            cap: cap.max(1),
            clock: 0,
            seq: 0,
        }
    }

    /// Looks up `key`, refreshing its recency on a hit.
    fn get(&mut self, key: &K) -> Option<&V> {
        self.clock += 1;
        let clock = self.clock;
        self.entries.get_mut(key).map(|slot| {
            slot.last_use = clock;
            &slot.value
        })
    }

    /// Inserts with a recompute-cost estimate, returning how many old
    /// entries were evicted to make room.
    fn insert(&mut self, key: K, value: V, cost: u64) -> u64 {
        self.clock += 1;
        let mut evicted = 0;
        if !self.entries.contains_key(&key) {
            while self.entries.len() >= self.cap {
                let Some(victim) = self.victim() else { break };
                self.entries.remove(&victim);
                evicted += 1;
            }
        }
        self.seq += 1;
        self.entries.insert(
            key,
            CostSlot {
                value,
                cost,
                last_use: self.clock,
                seq: self.seq,
            },
        );
        evicted
    }

    /// The deterministic eviction victim: cold before recent, cheap
    /// before expensive, oldest insertion as the final tie-break.
    fn victim(&self) -> Option<K> {
        let horizon = self.clock.saturating_sub(self.cap as u64);
        self.entries
            .iter()
            .min_by_key(|(_, slot)| (slot.last_use > horizon, slot.cost, slot.seq))
            .map(|(key, _)| key.clone())
    }

    fn len(&self) -> usize {
        self.entries.len()
    }
}

/// Everything derived from one structural design state: the elaborated
/// design, the composed SoC AR_CFG, and the bound events. Shared via
/// `Arc` so the concolic engine can borrow it while the session mutates
/// other tiers.
#[derive(Debug)]
struct DesignEntry {
    design: Design,
    soc: soccar_cfg::SocArCfg,
    bound: Vec<BoundEvent>,
}

/// Design-tier key: the ordered structural fingerprints of every module
/// plus the top module and the extraction-configuration fingerprint
/// (analysis flavor + reset naming). Comment/whitespace edits hash
/// identically and hit; any semantic edit misses.
type DesignKey = (Vec<u64>, String, u64);

/// Result-tier entry for the concolic stage.
#[derive(Debug, Clone)]
struct ConcolicEntry {
    report: ConcolicReport,
}

/// A persistent, content-hashed analysis session (see the
/// [module docs](self)).
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use soccar::incremental::AnalysisSession;
/// use soccar::SoccarConfig;
///
/// let src = "module top(input clk, input sys_rst_n, output reg q);
///   always @(posedge clk or negedge sys_rst_n)
///     if (!sys_rst_n) q <= 1'b0; else q <= 1'b1;
/// endmodule";
/// let mut session = AnalysisSession::new(SoccarConfig::default());
/// let (cold, s1) = session.analyze("t.v", src, "top", vec![], &Default::default())?;
/// let (warm, s2) = session.analyze("t.v", src, "top", vec![], &Default::default())?;
/// assert!(!s1.report_cache_hit);
/// assert!(s2.report_cache_hit);
/// assert_eq!(cold.canonical_json()?, warm.canonical_json()?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct AnalysisSession {
    config: SoccarConfig,
    recorder: soccar_obs::Recorder,
    caps: CacheCaps,
    parse_cache: CostAwareMap<u64, Module>,
    extract_cache: CostAwareMap<(u64, u64), ArCfg>,
    design_cache: CostAwareMap<DesignKey, Arc<DesignEntry>>,
    concolic_cache: CostAwareMap<u64, ConcolicEntry>,
    report_cache: CostAwareMap<u64, AnalysisReport>,
    warm_blast: Arc<Mutex<WarmBlastPool>>,
    counters: SessionCounters,
}

impl AnalysisSession {
    /// Creates a session with default cache capacities.
    #[must_use]
    pub fn new(config: SoccarConfig) -> AnalysisSession {
        AnalysisSession::with_caps(config, CacheCaps::default())
    }

    /// Creates a session with explicit cache capacities.
    #[must_use]
    pub fn with_caps(config: SoccarConfig, caps: CacheCaps) -> AnalysisSession {
        AnalysisSession {
            config,
            recorder: soccar_obs::Recorder::disabled(),
            caps,
            parse_cache: CostAwareMap::new(caps.parse),
            extract_cache: CostAwareMap::new(caps.extract),
            design_cache: CostAwareMap::new(caps.design),
            concolic_cache: CostAwareMap::new(caps.concolic),
            report_cache: CostAwareMap::new(caps.report),
            warm_blast: WarmBlastPool::shared(caps.warm_blast),
            counters: SessionCounters::default(),
        }
    }

    /// Attaches an observability recorder: cache effectiveness lands in
    /// `server.cache_hits` / `server.modules_reextracted` /
    /// `server.targets_rerun` / `server.evictions` counters, and
    /// fallback batch runs trace through it like batch CLI runs.
    #[must_use]
    pub fn with_recorder(mut self, recorder: soccar_obs::Recorder) -> AnalysisSession {
        self.recorder = recorder;
        self
    }

    /// The session's base configuration (before per-request QoS).
    #[must_use]
    pub fn config(&self) -> &SoccarConfig {
        &self.config
    }

    /// Session-lifetime cache counters.
    #[must_use]
    pub fn counters(&self) -> &SessionCounters {
        &self.counters
    }

    /// The cache capacity limits the session was built with.
    #[must_use]
    pub fn caps(&self) -> CacheCaps {
        self.caps
    }

    /// Entries currently held by each tier, in [`CacheCaps`] field
    /// order: `(parse, extract, design, concolic, report)`.
    #[must_use]
    pub fn tier_sizes(&self) -> (usize, usize, usize, usize, usize) {
        (
            self.parse_cache.len(),
            self.extract_cache.len(),
            self.design_cache.len(),
            self.concolic_cache.len(),
            self.report_cache.len(),
        )
    }

    /// Runs one analysis request against the session caches.
    ///
    /// The returned report's canonical form is byte-identical to
    /// `Soccar::new(qos.apply(config)).analyze(..)` on the same input.
    ///
    /// # Errors
    ///
    /// Exactly the batch pipeline's errors: frontend, composition,
    /// binding, engine-setup and simulation failures.
    pub fn analyze(
        &mut self,
        file_name: &str,
        source: &str,
        top: &str,
        properties: Vec<SecurityProperty>,
        qos: &RequestQos,
    ) -> Result<(AnalysisReport, RequestStats), SoccarError> {
        let config = qos.apply(&self.config);
        self.analyze_with_config(file_name, source, top, properties, &config)
    }

    /// Like [`AnalysisSession::analyze`], but with a fully explicit
    /// per-request configuration instead of QoS deltas over the session
    /// base — the entry point the analysis server uses, since requests
    /// carry their own cycles/rounds/symbolic-input/analysis knobs. Every
    /// cache key incorporates the configuration fields that influence its
    /// tier, so mixed-configuration request streams stay correct.
    ///
    /// # Errors
    ///
    /// Exactly the batch pipeline's errors: frontend, composition,
    /// binding, engine-setup and simulation failures.
    pub fn analyze_with_config(
        &mut self,
        file_name: &str,
        source: &str,
        top: &str,
        properties: Vec<SecurityProperty>,
        config: &SoccarConfig,
    ) -> Result<(AnalysisReport, RequestStats), SoccarError> {
        self.counters.requests += 1;
        self.recorder.counter_add("server.requests", 1);
        // A wall-clock deadline makes results timing-dependent: such
        // requests must never be served from (or poison) a result tier.
        let cacheable_results = config.concolic.round_deadline.is_none();

        // Fault plans key on global task indices that only the batch
        // fan-out reproduces; delegate wholesale.
        if !config.fault_plan.is_empty() || !config.concolic.fault_plan.is_empty() {
            return self.fallback(file_name, source, top, properties, config);
        }

        let request_fp = request_fingerprint(file_name, source, top, &properties, config);
        if cacheable_results {
            if let Some(report) = self.report_cache.get(&request_fp) {
                self.counters.cache_hits += 1;
                self.recorder.counter_add("server.cache_hits", 1);
                let stats = RequestStats {
                    report_cache_hit: true,
                    modules_total: report.extraction.modules,
                    ..RequestStats::default()
                };
                return Ok((report.clone(), stats));
            }
        }

        // Sources the chunk scanner cannot shape fall back to batch —
        // including anything that would not parse, so error reporting is
        // untouched.
        let Some(chunks) = split_modules(source) else {
            return self.fallback(file_name, source, top, properties, config);
        };

        let total_start = Instant::now();
        let mut stats = RequestStats {
            modules_total: chunks.len(),
            ..RequestStats::default()
        };
        let mut evictions = 0u64;

        // Frontend: assemble the unit from cached per-module ASTs.
        let frontend_start = Instant::now();
        let mut reparsed = 0usize;
        let assembled = assemble_unit(soccar_rtl::span::FileId(0), &chunks, |raw_fp| {
            let hit = self.parse_cache.get(&raw_fp).cloned();
            if hit.is_none() {
                reparsed += 1;
            }
            hit
        });
        let Some(unit) = assembled else {
            // A chunk failed to parse: the batch path reproduces the
            // exact diagnostic.
            return self.fallback(file_name, source, top, properties, config);
        };
        stats.modules_reparsed = reparsed;
        self.counters.modules_reparsed += reparsed as u64;
        // Refill the parse tier from the assembled unit: chunk ASTs are
        // the rebased modules shifted back to 0-based form, which is
        // exactly what a standalone chunk parse produces — but cheaper
        // to recover by re-parsing only the misses.
        for chunk in &chunks {
            let raw_fp = chunk.raw_fingerprint();
            if self.parse_cache.get(&raw_fp).is_none() {
                if let Ok(parsed) =
                    soccar_rtl::parser::parse(soccar_rtl::span::FileId(0), &chunk.text)
                {
                    if let [m] = parsed.modules.as_slice() {
                        // Re-parse cost scales with the chunk's size.
                        evictions +=
                            self.parse_cache
                                .insert(raw_fp, m.clone(), chunk.text.len() as u64);
                    }
                }
            }
        }
        let mut map = SourceMap::new();
        map.add_file(file_name, source);

        let fps: Vec<u64> = unit.modules.iter().map(module_fingerprint).collect();
        // Extraction depends on the analysis flavor and the reset naming
        // convention; both join the structural keys.
        let extract_cfg_fp =
            hash_bytes(format!("{:?}/{:?}", config.analysis, config.naming).as_bytes());
        let design_key: DesignKey = (fps.clone(), top.to_owned(), extract_cfg_fp);
        let design_entry = self.design_cache.get(&design_key).cloned();
        stats.design_cache_hit = design_entry.is_some();

        // On a design miss, elaboration runs inside the frontend stage,
        // mirroring the batch stage boundaries.
        let predesign = match &design_entry {
            Some(_) => None,
            None => Some(elaborate(&unit, top)?),
        };
        let frontend_elapsed = frontend_start.elapsed();

        // Lint always re-runs: it is span-dependent and cheap.
        let lint_start = Instant::now();
        let lint = Linter::new()
            .with_naming(config.naming.clone())
            .with_config(config.lint.clone())
            .lint_unit(&unit, &map);
        let lint_elapsed = lint_start.elapsed();

        // AR_CFG: per-module extraction through the extract tier, then
        // the serial compose walk and binding.
        let ar_cfg_start = Instant::now();
        let entry = match design_entry {
            Some(entry) => entry,
            None => {
                let design = predesign.expect("computed on design miss");
                let mut ar_cfgs: HashMap<String, ArCfg> = HashMap::new();
                // `assemble_unit` emits modules in chunk order, so each
                // module's chunk (its re-extraction cost proxy) rides
                // along by position.
                for ((module, fp), chunk) in unit.modules.iter().zip(&fps).zip(&chunks) {
                    let key = (*fp, extract_cfg_fp);
                    let ar = match self.extract_cache.get(&key) {
                        Some(ar) => ar.clone(),
                        None => {
                            stats.modules_reextracted += 1;
                            let ar = project_ar_cfg(&extract_module_cfg(
                                module,
                                &config.naming,
                                config.analysis,
                            ));
                            evictions +=
                                self.extract_cache
                                    .insert(key, ar.clone(), chunk.text.len() as u64);
                            ar
                        }
                    };
                    ar_cfgs.insert(module.name.clone(), ar);
                }
                let soc =
                    compose_soc_prepared(&unit, top, &config.naming, &ar_cfgs, &self.recorder)
                        .map_err(SoccarError::Cfg)?;
                let bound =
                    bind_events(&design, &soc).map_err(|e| SoccarError::Cfg(e.to_string()))?;
                let entry = Arc::new(DesignEntry { design, soc, bound });
                // Rebuilding a design entry re-elaborates and re-composes
                // the whole file: cost is the full source size.
                evictions += self.design_cache.insert(
                    design_key.clone(),
                    Arc::clone(&entry),
                    source.len() as u64,
                );
                entry
            }
        };
        self.counters.modules_reextracted += stats.modules_reextracted as u64;
        self.recorder.counter_add(
            "server.modules_reextracted",
            stats.modules_reextracted as u64,
        );
        let ar_cfg_elapsed = ar_cfg_start.elapsed();

        let extraction = ExtractionSummary {
            modules: unit.modules.len(),
            instances: entry.soc.instances.len(),
            ar_events: entry.soc.event_count(),
            reset_domains: entry.soc.reset_domains.len(),
            bound_events: entry.bound.len(),
        };

        // Concolic: the result tier keys on the design key plus every
        // request field that reaches the engine (properties and the
        // jobs-normalized engine config — reports are job-invariant).
        let concolic_start = Instant::now();
        let concolic_fp = {
            let mut normalized = config.concolic.clone();
            normalized.jobs = 0;
            let mut h = hash_bytes(format!("{design_key:?}").as_bytes());
            h ^= hash_bytes(format!("{properties:?}").as_bytes()).rotate_left(13);
            h ^= hash_bytes(format!("{normalized:?}/{}", config.keep_going).as_bytes())
                .rotate_left(29);
            h
        };
        let concolic_key = concolic_fp;
        let cached_concolic = if cacheable_results {
            self.concolic_cache.get(&concolic_key).cloned()
        } else {
            None
        };
        stats.concolic_cache_hit = cached_concolic.is_some();
        let concolic = match cached_concolic {
            Some(entry) => entry.report,
            None => {
                let jobs = soccar_exec::resolve_jobs(Some(config.jobs));
                let mut concolic_config = config.concolic.clone();
                concolic_config.jobs = jobs;
                if config.keep_going {
                    concolic_config.failure_policy = soccar_exec::FailurePolicy::KeepGoing;
                }
                let mut engine = ConcolicEngine::new(
                    &entry.design,
                    &entry.bound,
                    properties.clone(),
                    concolic_config,
                )
                .map_err(SoccarError::Config)?
                .with_recorder(self.recorder.clone())
                .with_warm_blast(Arc::clone(&self.warm_blast));
                let report = engine.run()?;
                stats.targets_rerun = report.targets_total;
                if cacheable_results {
                    // Re-running concolic costs roughly targets × cycles
                    // of simulate-and-solve work.
                    let cost = (report.targets_total as u64 + 1) * config.concolic.cycles.max(1);
                    evictions += self.concolic_cache.insert(
                        concolic_key,
                        ConcolicEntry {
                            report: report.clone(),
                        },
                        cost,
                    );
                }
                report
            }
        };
        self.counters.targets_rerun += stats.targets_rerun as u64;
        self.recorder
            .counter_add("server.targets_rerun", stats.targets_rerun as u64);
        let concolic_elapsed = concolic_start.elapsed();

        // Assemble the report with batch-identical stage names, details
        // and health; only the timing (non-canonical) differs.
        let stages = vec![
            StageReport {
                stage: "frontend".into(),
                elapsed: frontend_elapsed,
                detail: format!("{} modules; {}", unit.modules.len(), entry.design.stats()),
                exec: None,
                health: Health::Ok,
            },
            StageReport {
                stage: "lint".into(),
                elapsed: lint_elapsed,
                detail: lint.summary(),
                exec: None,
                health: Health::Ok,
            },
            StageReport {
                stage: "ar_cfg".into(),
                elapsed: ar_cfg_elapsed,
                detail: format!(
                    "{} reset-governed events across {} instances; {} reset domains",
                    entry.soc.event_count(),
                    entry.soc.instances.len(),
                    entry.soc.reset_domains.len()
                ),
                exec: Some(ExecSummary {
                    jobs: 1,
                    tasks: stats.modules_reextracted,
                    busy_secs: ar_cfg_elapsed.as_secs_f64(),
                    utilization: 1.0,
                }),
                health: Health::Ok,
            },
            StageReport {
                stage: "concolic".into(),
                elapsed: concolic_elapsed,
                detail: format!(
                    "{} rounds, {}/{} targets covered, {} violations",
                    concolic.rounds,
                    concolic.targets_covered,
                    concolic.targets_total,
                    concolic.violations.len()
                ),
                exec: Some(ExecSummary::from(&concolic.flip_exec)),
                health: Health::from_reasons(concolic.degraded_reasons.clone()),
            },
        ];
        let report = AnalysisReport {
            stages,
            lint,
            extraction,
            concolic,
            total: total_start.elapsed(),
        };
        if cacheable_results {
            evictions += self
                .report_cache
                .insert(request_fp, report.clone(), source.len() as u64);
        }
        if evictions > 0 {
            self.counters.evictions += evictions;
            self.recorder.counter_add("server.evictions", evictions);
        }
        Ok((report, stats))
    }

    /// Delegates a request to the batch pipeline (no structural caches),
    /// still counting it and caching the full report when safe.
    fn fallback(
        &mut self,
        file_name: &str,
        source: &str,
        top: &str,
        properties: Vec<SecurityProperty>,
        config: &SoccarConfig,
    ) -> Result<(AnalysisReport, RequestStats), SoccarError> {
        self.counters.fallbacks += 1;
        self.recorder.counter_add("server.fallbacks", 1);
        let report = Soccar::new(config.clone())
            .with_recorder(self.recorder.clone())
            .analyze(file_name, source, top, properties.clone())?;
        let stats = RequestStats {
            fallback: true,
            modules_total: report.extraction.modules,
            modules_reparsed: report.extraction.modules,
            modules_reextracted: report.extraction.modules,
            targets_rerun: report.concolic.targets_total,
            ..RequestStats::default()
        };
        self.counters.modules_reparsed += stats.modules_reparsed as u64;
        self.counters.modules_reextracted += stats.modules_reextracted as u64;
        self.counters.targets_rerun += stats.targets_rerun as u64;
        self.recorder.counter_add(
            "server.modules_reextracted",
            stats.modules_reextracted as u64,
        );
        self.recorder
            .counter_add("server.targets_rerun", stats.targets_rerun as u64);
        let cacheable = config.fault_plan.is_empty()
            && config.concolic.fault_plan.is_empty()
            && config.concolic.round_deadline.is_none();
        if cacheable {
            let fp = request_fingerprint(file_name, source, top, &properties, config);
            let evictions = self
                .report_cache
                .insert(fp, report.clone(), source.len() as u64);
            if evictions > 0 {
                self.counters.evictions += evictions;
                self.recorder.counter_add("server.evictions", evictions);
            }
        }
        Ok((report, stats))
    }
}

/// Report-tier key: every request field that can influence the result.
/// `Debug` renderings are stable within a build, which is the cache's
/// lifetime.
fn request_fingerprint(
    file_name: &str,
    source: &str,
    top: &str,
    properties: &[SecurityProperty],
    config: &SoccarConfig,
) -> u64 {
    let mut normalized = config.clone();
    normalized.jobs = 0;
    normalized.concolic.jobs = 0;
    let mut h = hash_bytes(source.as_bytes());
    h ^= hash_bytes(file_name.as_bytes()).rotate_left(7);
    h ^= hash_bytes(top.as_bytes()).rotate_left(17);
    h ^= hash_bytes(format!("{properties:?}").as_bytes()).rotate_left(27);
    h ^= hash_bytes(
        format!(
            "{:?}/{:?}/{:?}/{:?}/{}",
            normalized.analysis,
            normalized.naming,
            normalized.concolic,
            normalized.lint,
            normalized.keep_going
        )
        .as_bytes(),
    )
    .rotate_left(37);
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use soccar_concolic::PropertyKind;
    use soccar_rtl::LogicVec;

    /// The pipeline test design: an unscrubbed key register behind a
    /// reset-governed module, parameterized so tests can perturb one
    /// module without touching the other.
    fn leaky(ip_value: u8, top_comment: &str) -> String {
        format!(
            "module ip(input clk, input rst_n, output reg [7:0] key);
  always @(posedge clk or negedge rst_n)
    if (!rst_n) key <= key;
    else key <= 8'h{ip_value:02X};
endmodule
module top(input clk, input sec_rst_n);{top_comment}
  ip u (.clk(clk), .rst_n(sec_rst_n));
endmodule
"
        )
    }

    fn key_property() -> SecurityProperty {
        SecurityProperty {
            name: "key-cleared".into(),
            module: "ip".into(),
            kind: PropertyKind::ClearedAfterReset {
                domain: "top.sec_rst_n".into(),
                signal: "top.u.key".into(),
                expected: LogicVec::zeros(8),
                window: 0,
            },
        }
    }

    fn batch_canonical(source: &str, config: &SoccarConfig) -> String {
        Soccar::new(config.clone())
            .analyze("t.v", source, "top", vec![key_property()])
            .expect("batch analyze")
            .canonical_json()
            .expect("canonical json")
    }

    #[test]
    fn warm_session_matches_batch_byte_for_byte() {
        let src = leaky(0xA5, "");
        let config = SoccarConfig::default();
        let batch = batch_canonical(&src, &config);

        let mut session = AnalysisSession::new(config);
        let qos = RequestQos::default();
        let (cold, s1) = session
            .analyze("t.v", &src, "top", vec![key_property()], &qos)
            .expect("cold analyze");
        assert!(!s1.report_cache_hit);
        assert!(!s1.fallback);
        assert_eq!(s1.modules_total, 2);
        assert_eq!(s1.modules_reparsed, 2);
        assert_eq!(s1.modules_reextracted, 2);
        assert_eq!(cold.canonical_json().expect("json"), batch);

        let (warm, s2) = session
            .analyze("t.v", &src, "top", vec![key_property()], &qos)
            .expect("warm analyze");
        assert!(s2.report_cache_hit);
        assert_eq!(s2.modules_reextracted, 0);
        assert_eq!(warm.canonical_json().expect("json"), batch);
        assert_eq!(session.counters().requests, 2);
        assert_eq!(session.counters().cache_hits, 1);
    }

    #[test]
    fn comment_edit_keeps_structural_and_result_tiers() {
        let config = SoccarConfig::default();
        let mut session = AnalysisSession::new(config.clone());
        let qos = RequestQos::default();
        let v0 = leaky(0xA5, "");
        session
            .analyze("t.v", &v0, "top", vec![key_property()], &qos)
            .expect("prime");

        let v1 = leaky(0xA5, " // wiring only");
        let (report, stats) = session
            .analyze("t.v", &v1, "top", vec![key_property()], &qos)
            .expect("comment edit");
        assert!(!stats.report_cache_hit, "source bytes changed");
        assert_eq!(stats.modules_reparsed, 1, "only top's chunk changed");
        assert_eq!(stats.modules_reextracted, 0, "structure unchanged");
        assert!(stats.design_cache_hit);
        assert!(stats.concolic_cache_hit);
        assert_eq!(stats.targets_rerun, 0);
        assert_eq!(
            report.canonical_json().expect("json"),
            batch_canonical(&v1, &config)
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]

        /// Satellite: a perturbed edit to one module re-extracts exactly
        /// that module, and the warm report equals a cold batch run of
        /// the edited source byte-for-byte.
        #[test]
        fn single_module_edit_reextracts_only_that_module(
            v0 in 0u8..=255,
            v1 in 0u8..=255,
        ) {
            prop_assume!(v0 != v1);
            let config = SoccarConfig::default();
            let mut session = AnalysisSession::new(config.clone());
            let qos = RequestQos::default();
            let src0 = leaky(v0, "");
            session
                .analyze("t.v", &src0, "top", vec![key_property()], &qos)
                .expect("prime");

            let src1 = leaky(v1, "");
            let (warm, stats) = session
                .analyze("t.v", &src1, "top", vec![key_property()], &qos)
                .expect("edited analyze");
            prop_assert!(!stats.report_cache_hit);
            prop_assert_eq!(stats.modules_reparsed, 1);
            prop_assert_eq!(stats.modules_reextracted, 1);
            prop_assert!(!stats.design_cache_hit);
            prop_assert_eq!(
                warm.canonical_json().expect("json"),
                batch_canonical(&src1, &config)
            );
        }
    }

    #[test]
    fn fault_plan_requests_fall_back_to_batch() {
        let config = SoccarConfig {
            keep_going: true,
            fault_plan: soccar_exec::FaultPlan::parse("task_panic@extract:1").expect("plan"),
            ..SoccarConfig::default()
        };
        let src = leaky(0xA5, "");
        let batch = batch_canonical(&src, &config);
        let mut session = AnalysisSession::new(config);
        let (report, stats) = session
            .analyze(
                "t.v",
                &src,
                "top",
                vec![key_property()],
                &RequestQos::default(),
            )
            .expect("fallback analyze");
        assert!(stats.fallback);
        assert_eq!(report.canonical_json().expect("json"), batch);
        assert_eq!(session.counters().fallbacks, 1);
    }

    #[test]
    fn parse_errors_match_batch_via_fallback() {
        let mut session = AnalysisSession::new(SoccarConfig::default());
        let err = session
            .analyze(
                "t.v",
                "module broken(",
                "broken",
                vec![],
                &RequestQos::default(),
            )
            .expect_err("parse error");
        let batch_err = Soccar::new(SoccarConfig::default())
            .analyze("t.v", "module broken(", "broken", vec![])
            .expect_err("batch parse error");
        assert_eq!(err.to_string(), batch_err.to_string());
        assert!(matches!(err, SoccarError::Rtl(_)));
    }

    #[test]
    fn deadline_requests_skip_result_tiers_but_keep_structural_ones() {
        let mut session = AnalysisSession::new(SoccarConfig::default());
        let qos = RequestQos {
            round_deadline_ms: Some(60_000),
            ..RequestQos::default()
        };
        let src = leaky(0xA5, "");
        session
            .analyze("t.v", &src, "top", vec![key_property()], &qos)
            .expect("first deadline run");
        let (_, stats) = session
            .analyze("t.v", &src, "top", vec![key_property()], &qos)
            .expect("second deadline run");
        assert!(!stats.report_cache_hit, "deadline results are uncacheable");
        assert!(!stats.concolic_cache_hit);
        assert!(stats.design_cache_hit, "structural tiers stay valid");
        assert_eq!(stats.modules_reextracted, 0);
    }

    #[test]
    fn qos_overlays_the_session_config() {
        let base = SoccarConfig::default();
        let qos = RequestQos {
            solver_budget: Some(SolveBudget::conflicts(7)),
            keep_going: Some(true),
            round_deadline_ms: Some(123),
        };
        let applied = qos.apply(&base);
        assert_eq!(applied.concolic.solver_budget, SolveBudget::conflicts(7));
        assert!(applied.keep_going);
        assert_eq!(
            applied.concolic.round_deadline,
            Some(Duration::from_millis(123))
        );
        assert_eq!(
            RequestQos::default().apply(&base).keep_going,
            base.keep_going
        );
    }

    #[test]
    fn eviction_prefers_cold_entries_over_expensive_recent_ones() {
        let mut map: CostAwareMap<&str, ()> = CostAwareMap::new(2);
        map.insert("cheap_recent", (), 10);
        map.insert("costly_cold", (), 1000);
        // Touch the cheap entry; the costly one ages past the horizon.
        assert!(map.get(&"cheap_recent").is_some());
        map.insert("newcomer", (), 1);
        assert!(
            map.get(&"costly_cold").is_none(),
            "a cold entry is evicted before a recent one, whatever its cost"
        );
        assert!(map.get(&"cheap_recent").is_some());
        assert!(map.get(&"newcomer").is_some());
    }

    #[test]
    fn eviction_picks_the_cheapest_cold_entry_with_seq_tiebreak() {
        let mut map: CostAwareMap<&str, ()> = CostAwareMap::new(2);
        map.insert("expensive", (), 500);
        map.insert("cheap", (), 1);
        // Age both entries past the recency horizon with missed lookups.
        assert!(map.get(&"absent").is_none());
        assert!(map.get(&"absent").is_none());
        map.insert("newcomer", (), 7);
        assert!(
            map.get(&"cheap").is_none(),
            "cheapest cold entry goes first"
        );
        assert!(map.get(&"expensive").is_some());

        // Equal costs: the older insertion loses.
        let mut map: CostAwareMap<&str, ()> = CostAwareMap::new(2);
        map.insert("older", (), 3);
        map.insert("newer", (), 3);
        assert!(map.get(&"absent").is_none());
        assert!(map.get(&"absent").is_none());
        map.insert("newcomer", (), 3);
        assert!(map.get(&"older").is_none());
        assert!(map.get(&"newer").is_some());
    }

    #[test]
    fn reinserting_an_existing_key_never_evicts() {
        let mut map: CostAwareMap<&str, u32> = CostAwareMap::new(2);
        map.insert("a", 1, 1);
        map.insert("b", 2, 1);
        assert_eq!(map.insert("a", 3, 1), 0, "overwrite needs no room");
        assert_eq!(map.len(), 2);
        assert_eq!(map.get(&"a"), Some(&3));
    }

    #[test]
    fn report_tier_eviction_is_counted() {
        let caps = CacheCaps {
            report: 1,
            ..CacheCaps::default()
        };
        let mut session = AnalysisSession::with_caps(SoccarConfig::default(), caps);
        let qos = RequestQos::default();
        for value in [0x11u8, 0x22, 0x33] {
            let src = leaky(value, "");
            session
                .analyze("t.v", &src, "top", vec![key_property()], &qos)
                .expect("analyze");
        }
        assert!(session.counters().evictions >= 2);
        let (_, _, _, _, reports) = session.tier_sizes();
        assert_eq!(reports, 1);
    }
}
