//! Simulation error types.

use std::error::Error;
use std::fmt;

use soccar_rtl::design::{NetId, ProcessId};

/// An error raised during simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A `for` loop exceeded the iteration bound (likely non-terminating).
    LoopLimit {
        /// Process containing the loop.
        process: ProcessId,
    },
    /// The design did not stabilize within the activity budget (likely a
    /// combinational loop).
    Unstable {
        /// Process executions performed before giving up.
        executed: u64,
    },
    /// An attempt to drive a net that is not a top-level input.
    NotAnInput {
        /// The offending net.
        net: NetId,
    },
    /// A value of the wrong width was supplied for a net.
    WidthMismatch {
        /// Target net.
        net: NetId,
        /// Net width.
        expected: u32,
        /// Supplied width.
        got: u32,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::LoopLimit { process } => {
                write!(
                    f,
                    "for-loop iteration limit exceeded in process {}",
                    process.0
                )
            }
            SimError::Unstable { executed } => write!(
                f,
                "design did not stabilize after {executed} process executions (combinational loop?)"
            ),
            SimError::NotAnInput { net } => {
                write!(f, "net {} is not a top-level input", net.0)
            }
            SimError::WidthMismatch { net, expected, got } => write!(
                f,
                "width mismatch driving net {}: expected {expected} bits, got {got}",
                net.0
            ),
        }
    }
}

impl Error for SimError {}

/// Convenience alias for simulation results.
pub type SimResult<T> = Result<T, SimError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = SimError::Unstable { executed: 42 };
        assert!(e.to_string().contains("42"));
        let e = SimError::WidthMismatch {
            net: NetId(3),
            expected: 8,
            got: 4,
        };
        assert!(e.to_string().contains("expected 8"));
    }
}
