//! `implicit-governor` — an always block governed by an asynchronous reset
//! with no explicit leading reset test.
//!
//! This is the SoCCAR Section V-C blind spot, reproduced by AutoSoC
//! Variant #2's SHA256 engine:
//!
//! ```verilog
//! always @(negedge rst_n)
//!   if (clk) ct_out <= pt_reg;
//! ```
//!
//! The reset appears edge-qualified in the sensitivity list but is never
//! tested by the block's leading conditional, so the Explicit governor
//! analysis extracts **no** governor and the block's behavior under reset
//! goes unexplored. When the body additionally tests a clock at level, the
//! block fires only on a reset edge composed with a specific clock phase —
//! the exact construct used to exfiltrate plaintext in the paper. The
//! static rule flags the construct directly, naming the module, so it is
//! caught even when the concolic stage runs in Explicit mode.

use soccar_cfg::{leading_if, tests_clock_level};

use crate::context::LintContext;
use crate::diagnostic::{Diagnostic, Severity};
use crate::rules::LintRule;

/// See the module docs.
#[derive(Debug, Clone, Copy, Default)]
pub struct ImplicitGovernor;

impl LintRule for ImplicitGovernor {
    fn id(&self) -> &'static str {
        "implicit-governor"
    }

    fn description(&self) -> &'static str {
        "always block governed by an async reset with no leading reset test (Section V-C blind spot)"
    }

    fn default_severity(&self) -> Severity {
        Severity::Warning
    }

    fn check(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        for view in &ctx.modules {
            for block in view.module.always_blocks() {
                let resets = view.async_resets_of(block);
                if resets.is_empty() {
                    continue;
                }
                let explicit = leading_if(&block.body).is_some_and(|(cond, _, _)| {
                    resets.iter().any(|r| cond.is_signal_test(&r.signal))
                });
                if explicit {
                    continue;
                }
                let composed = tests_clock_level(&block.body, ctx.naming);
                let reset_names = resets
                    .iter()
                    .map(|r| format!("`{}`", r.signal))
                    .collect::<Vec<_>>()
                    .join(", ");
                let detail = if composed {
                    "; the body tests a clock at level, so the block fires only on a \
                     reset edge composed with that clock phase"
                } else {
                    ""
                };
                out.push(Diagnostic::new(
                    self.id(),
                    self.default_severity(),
                    &view.module.name,
                    block.span,
                    format!(
                        "module `{}` has an always block sensitive to reset {reset_names} \
                         with no leading reset test: the reset governs it only implicitly \
                         and the Explicit governor analysis extracts nothing{detail}",
                        view.module.name
                    ),
                ));
            }
        }
    }
}
