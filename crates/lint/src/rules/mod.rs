//! The lint rule trait and the built-in rule set.
//!
//! Each rule is a stateless object behind the [`LintRule`] trait; the
//! registry ([`crate::Linter`]) owns a `Vec<Box<dyn LintRule>>`, so new
//! rules — including rules defined outside this crate — plug in without
//! touching the runner. Rules emit [`Diagnostic`]s at their
//! [`LintRule::default_severity`]; per-rule `allow`/`deny` configuration is
//! applied afterwards by the registry.

use soccar_rtl::ast::Expr;

use crate::context::LintContext;
use crate::diagnostic::{Diagnostic, Severity};

mod async_sync;
mod comb_reset;
mod cross_domain;
mod implicit_governor;
mod name_shadowing;
mod partial_domain;

pub use async_sync::AsyncResetUnsynchronized;
pub use comb_reset::CombinationalResetGen;
pub use cross_domain::ResetCrossesDomains;
pub use implicit_governor::ImplicitGovernor;
pub use name_shadowing::ResetNameShadowing;
pub use partial_domain::PartialResetDomain;

/// A single static check over the design.
pub trait LintRule {
    /// Stable kebab-case identifier used in configuration and output.
    fn id(&self) -> &'static str;

    /// One-line description for `--help`-style listings and docs.
    fn description(&self) -> &'static str;

    /// Severity findings carry unless the registry overrides it.
    fn default_severity(&self) -> Severity;

    /// Runs the rule over the whole design, appending findings to `out`.
    fn check(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>);
}

impl std::fmt::Debug for dyn LintRule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "LintRule({})", self.id())
    }
}

/// The built-in rule set, in stable id order.
#[must_use]
pub fn default_rules() -> Vec<Box<dyn LintRule>> {
    vec![
        Box::new(AsyncResetUnsynchronized),
        Box::new(CombinationalResetGen),
        Box::new(ImplicitGovernor),
        Box::new(PartialResetDomain),
        Box::new(ResetCrossesDomains),
        Box::new(ResetNameShadowing),
    ]
}

/// Name fragments that mark a signal as a synchronizer stage or an
/// already-synchronized copy (cf. the learn_vhdl-style CDC rule sets).
pub(crate) const SYNC_MARKERS: [&str; 7] =
    ["_sync", "_synced", "_meta", "_d1", "_d2", "_ff1", "_ff2"];

/// Collects the base identifier names an lvalue expression writes.
pub(crate) fn lhs_base_names(e: &Expr, out: &mut Vec<String>) {
    match e {
        Expr::Ident { name, .. } => out.push(name.clone()),
        Expr::Index { base, .. }
        | Expr::PartSelect { base, .. }
        | Expr::IndexedPartSelect { base, .. } => out.push(base.clone()),
        Expr::Concat { parts, .. } => {
            for p in parts {
                lhs_base_names(p, out);
            }
        }
        _ => {}
    }
}
