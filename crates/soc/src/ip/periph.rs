//! Communication peripherals: UART, SPI controller and a lite Ethernet
//! MAC. They give both SoCs their off-chip connectivity (Section V-A) and
//! populate the peripheral reset domain.

/// UART with a baud-rate divider and 8N1 transmit/receive shift engines.
#[must_use]
pub fn uart() -> String {
    "module uart #(parameter DIV = 4)(
  input clk,
  input rst_n,
  input tx_start,
  input [7:0] tx_data,
  output reg txd,
  output reg tx_busy,
  input rxd,
  output reg [7:0] rx_data,
  output reg rx_valid
);
  reg [15:0] baud_cnt;
  reg baud_tick;
  reg [3:0] tx_state;
  reg [9:0] tx_shift;
  reg [3:0] rx_state;
  reg [7:0] rx_shift;

  always @(posedge clk or negedge rst_n)
    if (!rst_n) begin
      baud_cnt <= 16'd0;
      baud_tick <= 1'b0;
    end else begin
      if (baud_cnt == DIV - 1) begin
        baud_cnt <= 16'd0;
        baud_tick <= 1'b1;
      end else begin
        baud_cnt <= baud_cnt + 16'd1;
        baud_tick <= 1'b0;
      end
    end

  always @(posedge clk or negedge rst_n)
    if (!rst_n) begin
      tx_state <= 4'd0;
      tx_shift <= 10'h3FF;
      txd <= 1'b1;
      tx_busy <= 1'b0;
    end else begin
      if (tx_state == 4'd0) begin
        if (tx_start) begin
          tx_shift <= {1'b1, tx_data, 1'b0}; // stop, data, start
          tx_state <= 4'd10;
          tx_busy <= 1'b1;
        end
      end else if (baud_tick) begin
        txd <= tx_shift[0];
        tx_shift <= {1'b1, tx_shift[9:1]};
        tx_state <= tx_state - 4'd1;
        if (tx_state == 4'd1) tx_busy <= 1'b0;
      end
    end

  always @(posedge clk or negedge rst_n)
    if (!rst_n) begin
      rx_state <= 4'd0;
      rx_shift <= 8'd0;
      rx_data <= 8'd0;
      rx_valid <= 1'b0;
    end else begin
      rx_valid <= 1'b0;
      if (rx_state == 4'd0) begin
        if (~rxd & baud_tick) rx_state <= 4'd8;
      end else if (baud_tick) begin
        rx_shift <= {rxd, rx_shift[7:1]};
        rx_state <= rx_state - 4'd1;
        if (rx_state == 4'd1) begin
          rx_data <= {rxd, rx_shift[7:1]};
          rx_valid <= 1'b1;
        end
      end
    end
endmodule
"
    .to_owned()
}

/// SPI master with a programmable clock divider and an 8-bit shift engine.
#[must_use]
pub fn spi() -> String {
    "module spi_ctrl #(parameter DIV = 2)(
  input clk,
  input rst_n,
  input start,
  input [7:0] mosi_data,
  output reg sck,
  output reg mosi,
  input miso,
  output reg cs_n,
  output reg [7:0] miso_data,
  output reg busy
);
  reg [7:0] div_cnt;
  reg [7:0] sh_out;
  reg [7:0] sh_in;
  reg [3:0] bits;

  always @(posedge clk or negedge rst_n)
    if (!rst_n) begin
      sck <= 1'b0;
      mosi <= 1'b0;
      cs_n <= 1'b1;
      miso_data <= 8'd0;
      busy <= 1'b0;
      div_cnt <= 8'd0;
      sh_out <= 8'd0;
      sh_in <= 8'd0;
      bits <= 4'd0;
    end else begin
      if (~busy) begin
        if (start) begin
          sh_out <= mosi_data;
          bits <= 4'd8;
          busy <= 1'b1;
          cs_n <= 1'b0;
          div_cnt <= 8'd0;
        end
      end else if (div_cnt == DIV - 1) begin
        div_cnt <= 8'd0;
        sck <= ~sck;
        if (sck) begin
          // Falling edge: shift out the next bit.
          mosi <= sh_out[7];
          sh_out <= {sh_out[6:0], 1'b0};
          if (bits == 4'd0) begin
            busy <= 1'b0;
            cs_n <= 1'b1;
            miso_data <= sh_in;
          end
        end else begin
          // Rising edge: sample miso.
          sh_in <= {sh_in[6:0], miso};
          bits <= bits - 4'd1;
        end
      end else div_cnt <= div_cnt + 8'd1;
    end
endmodule
"
    .to_owned()
}

/// Lite Ethernet MAC: frame buffers in memories, a length/CRC-ish
/// checksum pipeline, tx/rx FSMs.
#[must_use]
pub fn eth() -> String {
    "module eth_mac(
  input clk,
  input rst_n,
  input tx_start,
  input [7:0] tx_len,
  input [31:0] tx_word,
  input tx_word_valid,
  output reg tx_done,
  output reg phy_tx_en,
  output reg [31:0] phy_txd,
  input phy_rx_dv,
  input [31:0] phy_rxd,
  output reg [31:0] rx_word,
  output reg rx_valid,
  output reg [31:0] csum
);
  reg [31:0] tx_buf [0:63];
  reg [31:0] rx_buf [0:63];
  reg [7:0] tx_wr;
  reg [7:0] tx_rd;
  reg [7:0] tx_rem;
  reg [7:0] rx_wr;
  reg sending;

  always @(posedge clk or negedge rst_n)
    if (!rst_n) begin
      tx_wr <= 8'd0;
      tx_rd <= 8'd0;
      tx_rem <= 8'd0;
      rx_wr <= 8'd0;
      sending <= 1'b0;
      tx_done <= 1'b0;
      phy_tx_en <= 1'b0;
      phy_txd <= 32'd0;
      rx_word <= 32'd0;
      rx_valid <= 1'b0;
      csum <= 32'd0;
    end else begin
      tx_done <= 1'b0;
      rx_valid <= 1'b0;
      if (tx_word_valid & ~sending) begin
        tx_buf[tx_wr[5:0]] <= tx_word;
        tx_wr <= tx_wr + 8'd1;
      end
      if (tx_start & ~sending & (tx_len != 8'd0)) begin
        sending <= 1'b1;
        tx_rd <= 8'd0;
        tx_rem <= tx_len;
      end
      if (sending) begin
        phy_tx_en <= 1'b1;
        phy_txd <= tx_buf[tx_rd[5:0]];
        csum <= csum + tx_buf[tx_rd[5:0]];
        tx_rd <= tx_rd + 8'd1;
        tx_rem <= tx_rem - 8'd1;
        if (tx_rem == 8'd1) begin
          sending <= 1'b0;
          phy_tx_en <= 1'b0;
          tx_done <= 1'b1;
        end
      end
      if (phy_rx_dv) begin
        rx_buf[rx_wr[5:0]] <= phy_rxd;
        rx_word <= phy_rxd;
        rx_wr <= rx_wr + 8'd1;
        rx_valid <= 1'b1;
      end
    end
endmodule
"
    .to_owned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use soccar_rtl::value::LogicVec;
    use soccar_sim::{InitPolicy, Simulator};

    fn compile(src: &str, top: &str) -> soccar_rtl::Design {
        soccar_rtl::compile("periph.v", src, top)
            .unwrap_or_else(|e| panic!("{top}: {e}"))
            .0
    }

    #[test]
    fn all_peripherals_compile() {
        compile(&uart(), "uart");
        compile(&spi(), "spi_ctrl");
        compile(&eth(), "eth_mac");
    }

    #[test]
    fn uart_transmits_start_bit() {
        let d = compile(&uart(), "uart");
        let mut sim = Simulator::concrete(&d, InitPolicy::Ones);
        let n = |s: &str| d.find_net(&format!("uart.{s}")).expect("net");
        let clk = n("clk");
        sim.write_input(clk, LogicVec::from_u64(1, 0)).expect("clk");
        sim.write_input(n("rxd"), LogicVec::from_u64(1, 1))
            .expect("rxd");
        sim.write_input(n("tx_start"), LogicVec::from_u64(1, 0))
            .expect("ts");
        sim.write_input(n("tx_data"), LogicVec::from_u64(8, 0xA5))
            .expect("td");
        sim.write_input(n("rst_n"), LogicVec::from_u64(1, 0))
            .expect("rst");
        sim.settle().expect("settle");
        assert_eq!(sim.net_logic(n("txd")).to_u64(), Some(1), "idle high");
        sim.write_input(n("rst_n"), LogicVec::from_u64(1, 1))
            .expect("rst");
        sim.write_input(n("tx_start"), LogicVec::from_u64(1, 1))
            .expect("ts");
        sim.settle().expect("settle");
        sim.tick(clk).expect("tick");
        assert_eq!(sim.net_logic(n("tx_busy")).to_u64(), Some(1));
        sim.write_input(n("tx_start"), LogicVec::from_u64(1, 0))
            .expect("ts");
        // Run past one baud tick (DIV=4): start bit (0) appears on txd.
        for _ in 0..6 {
            sim.tick(clk).expect("tick");
        }
        assert_eq!(sim.net_logic(n("txd")).to_u64(), Some(0), "start bit");
    }

    #[test]
    fn spi_shifts_eight_bits() {
        let d = compile(&spi(), "spi_ctrl");
        let mut sim = Simulator::concrete(&d, InitPolicy::Ones);
        let n = |s: &str| d.find_net(&format!("spi_ctrl.{s}")).expect("net");
        let clk = n("clk");
        sim.write_input(clk, LogicVec::from_u64(1, 0)).expect("clk");
        sim.write_input(n("miso"), LogicVec::from_u64(1, 1))
            .expect("miso");
        sim.write_input(n("start"), LogicVec::from_u64(1, 0))
            .expect("st");
        sim.write_input(n("mosi_data"), LogicVec::from_u64(8, 0xC3))
            .expect("md");
        sim.write_input(n("rst_n"), LogicVec::from_u64(1, 0))
            .expect("rst");
        sim.settle().expect("settle");
        assert_eq!(sim.net_logic(n("cs_n")).to_u64(), Some(1));
        sim.write_input(n("rst_n"), LogicVec::from_u64(1, 1))
            .expect("rst");
        sim.write_input(n("start"), LogicVec::from_u64(1, 1))
            .expect("st");
        sim.settle().expect("settle");
        sim.tick(clk).expect("tick");
        sim.write_input(n("start"), LogicVec::from_u64(1, 0))
            .expect("st");
        assert_eq!(sim.net_logic(n("cs_n")).to_u64(), Some(0), "selected");
        for _ in 0..80 {
            sim.tick(clk).expect("tick");
        }
        assert_eq!(sim.net_logic(n("busy")).to_u64(), Some(0), "done");
        // All-ones miso shifted in.
        assert_eq!(sim.net_logic(n("miso_data")).to_u64(), Some(0xFF));
    }

    #[test]
    fn eth_loops_frame_through_buffer() {
        let d = compile(&eth(), "eth_mac");
        let mut sim = Simulator::concrete(&d, InitPolicy::Zeros);
        let n = |s: &str| d.find_net(&format!("eth_mac.{s}")).expect("net");
        let clk = n("clk");
        sim.write_input(clk, LogicVec::from_u64(1, 0)).expect("clk");
        for (sig, w) in [
            ("tx_start", 1u32),
            ("tx_len", 8),
            ("tx_word", 32),
            ("tx_word_valid", 1),
            ("phy_rx_dv", 1),
            ("phy_rxd", 32),
        ] {
            sim.write_input(n(sig), LogicVec::zeros(w)).expect("in");
        }
        sim.write_input(n("rst_n"), LogicVec::from_u64(1, 0))
            .expect("rst");
        sim.settle().expect("settle");
        sim.write_input(n("rst_n"), LogicVec::from_u64(1, 1))
            .expect("rst");
        // Load two words.
        for w in [0x11u64, 0x22] {
            sim.write_input(n("tx_word"), LogicVec::from_u64(32, w))
                .expect("w");
            sim.write_input(n("tx_word_valid"), LogicVec::from_u64(1, 1))
                .expect("v");
            sim.tick(clk).expect("tick");
        }
        sim.write_input(n("tx_word_valid"), LogicVec::from_u64(1, 0))
            .expect("v");
        sim.write_input(n("tx_len"), LogicVec::from_u64(8, 2))
            .expect("len");
        sim.write_input(n("tx_start"), LogicVec::from_u64(1, 1))
            .expect("st");
        sim.tick(clk).expect("tick");
        sim.write_input(n("tx_start"), LogicVec::from_u64(1, 0))
            .expect("st");
        sim.tick(clk).expect("tick");
        assert_eq!(sim.net_logic(n("phy_txd")).to_u64(), Some(0x11));
        sim.tick(clk).expect("tick");
        assert_eq!(sim.net_logic(n("phy_txd")).to_u64(), Some(0x22));
        assert_eq!(sim.net_logic(n("tx_done")).to_u64(), Some(1));
        assert_eq!(sim.net_logic(n("csum")).to_u64(), Some(0x33));
        // Receive path.
        sim.write_input(n("phy_rx_dv"), LogicVec::from_u64(1, 1))
            .expect("dv");
        sim.write_input(n("phy_rxd"), LogicVec::from_u64(32, 0xBEEF))
            .expect("rx");
        sim.tick(clk).expect("tick");
        assert_eq!(sim.net_logic(n("rx_word")).to_u64(), Some(0xBEEF));
        assert_eq!(sim.net_logic(n("rx_valid")).to_u64(), Some(1));
    }
}
