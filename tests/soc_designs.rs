//! Cross-crate validation of the benchmark SoCs themselves: elaboration,
//! simulation, topology, area and check resolution for every variant.

use soccar_sim::{InitPolicy, Simulator};
use soccar_soc::topology::Topology;
use soccar_soc::SocModel;
use soccar_synth::{estimate, TechModel};

fn compile(model: SocModel, variant: Option<u32>) -> soccar_rtl::Design {
    let design = soccar_soc::generate(model, variant);
    soccar_rtl::compile("soc.v", &design.source, &design.top)
        .unwrap_or_else(|e| panic!("{}: {e}", design.name))
        .0
}

#[test]
fn every_variant_elaborates() {
    for spec in soccar_soc::variants() {
        let d = compile(spec.soc, Some(spec.number));
        assert!(d.stats().processes > 100, "{}: {}", spec.name(), d.stats());
    }
}

#[test]
fn table1_area_shape() {
    let cluster = estimate(&compile(SocModel::ClusterSoc, None), &TechModel::default());
    let auto = estimate(&compile(SocModel::AutoSoc, None), &TechModel::default());
    // Paper shape: ClusterSoC ~16k LUT, AutoSoC ~33k (≈2×); BRAM ~O(100).
    assert!(
        (12_000..=22_000).contains(&cluster.lut),
        "cluster: {cluster}"
    );
    assert!((25_000..=42_000).contains(&auto.lut), "auto: {auto}");
    assert!(
        auto.lut as f64 >= cluster.lut as f64 * 1.5,
        "auto {auto} vs cluster {cluster}"
    );
    assert!((60..=200).contains(&cluster.bram), "cluster: {cluster}");
    assert!((60..=200).contains(&auto.bram), "auto: {auto}");
}

#[test]
fn figure2_topology_shape() {
    let cluster = Topology::of(&compile(SocModel::ClusterSoc, None));
    let auto = Topology::of(&compile(SocModel::AutoSoc, None));
    // ClusterSoC: flat, 4 reset domains; AutoSoC: hierarchical
    // subsystems, 6 reset domains.
    assert_eq!(cluster.reset_inputs.len(), 4);
    assert_eq!(auto.reset_inputs.len(), 6);
    assert_eq!(cluster.subsystems.len(), 1);
    assert!(auto.subsystems.len() >= 6);
    assert!(auto.block_count() > cluster.block_count());
}

#[test]
fn security_checks_resolve_on_every_variant() {
    for spec in soccar_soc::variants() {
        let d = compile(spec.soc, Some(spec.number));
        for check in soccar_soc::security_checks(spec.soc) {
            let p = soccar::property_of(&check);
            let domains: Vec<(String, bool)> = d
                .top_inputs()
                .filter(|n| d.net(*n).local_name.contains("rst"))
                .map(|n| (d.net(n).name.clone(), true))
                .collect();
            assert!(
                soccar_concolic::PropertyMonitor::resolve(&d, p, &domains).is_ok(),
                "{}: check {} does not resolve",
                spec.name(),
                check.name
            );
        }
    }
}

#[test]
fn both_socs_run_and_stay_stable_under_partial_resets() {
    for model in [SocModel::ClusterSoc, SocModel::AutoSoc] {
        let d = compile(model, None);
        let top = model.top_module();
        let mut sim = Simulator::concrete(&d, InitPolicy::Ones);
        for net in d.top_inputs().collect::<Vec<_>>() {
            let w = d.net(net).width;
            sim.write_input(net, soccar_rtl::LogicVec::zeros(w))
                .expect("in");
        }
        sim.settle().expect("settle");
        let resets: Vec<_> = d
            .top_inputs()
            .filter(|n| d.net(*n).local_name.contains("rst"))
            .collect();
        for r in &resets {
            sim.write_input(*r, soccar_rtl::LogicVec::from_u64(1, 1))
                .expect("rst");
        }
        sim.settle().expect("settle");
        let clk = d.find_net(&format!("{top}.clk")).expect("clk");
        for _ in 0..10 {
            sim.tick(clk).expect("tick");
        }
        // Pulse each domain individually mid-run; the design must stay
        // simulable (no instability) and other domains keep counting.
        for r in &resets {
            sim.write_input(*r, soccar_rtl::LogicVec::from_u64(1, 0))
                .expect("rst");
            sim.settle().expect("settle");
            sim.tick(clk).expect("tick");
            sim.write_input(*r, soccar_rtl::LogicVec::from_u64(1, 1))
                .expect("rst");
            sim.settle().expect("settle");
            sim.tick(clk).expect("tick");
        }
    }
}

#[test]
fn bug_mutations_are_localized() {
    // A variant's source differs from clean only in the bug-marked
    // modules: line count within a small delta, and every added marker is
    // a BUG comment.
    for spec in soccar_soc::variants() {
        let clean = soccar_soc::generate(spec.soc, None).source;
        let buggy = soccar_soc::generate(spec.soc, Some(spec.number)).source;
        let delta = (buggy.lines().count() as i64 - clean.lines().count() as i64).abs();
        assert!(delta < 40, "{}: delta {delta}", spec.name());
        assert!(buggy.matches("BUG(").count() >= spec.bugs.len() - 1);
    }
}
