//! Run SoCCAR on AutoSoC Variant #2 under both governor analyses — the
//! paper's headline negative result and its proposed fix, live.
//!
//! ```sh
//! cargo run --release --example detect_auto_soc
//! ```

use soccar::evaluation::{evaluate_variant, render_outcomes};
use soccar::SoccarConfig;
use soccar_cfg::GovernorAnalysis;
use soccar_concolic::ConcolicConfig;
use soccar_soc::SocModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = soccar_soc::variant(SocModel::AutoSoc, 2).ok_or("variant exists")?;
    for analysis in [GovernorAnalysis::Explicit, GovernorAnalysis::Refined] {
        let config = SoccarConfig {
            analysis,
            concolic: ConcolicConfig {
                cycles: 16,
                max_rounds: 6,
                ..ConcolicConfig::default()
            },
            ..SoccarConfig::default()
        };
        let eval = evaluate_variant(&spec, config)?;
        println!("=== {analysis:?} governor analysis ===");
        print!("{}", render_outcomes(&eval));
        println!(
            "AR events: {}; verification: {:.2}s\n",
            eval.report.extraction.ar_events,
            eval.verification_time().as_secs_f64()
        );
    }
    println!(
        "The Explicit analysis reproduces the paper's Section V-C miss: the\n\
         SHA256 cipher assignment hides behind an implicit clock-composed\n\
         governor the published extraction rules cannot see. The Refined\n\
         extension recovers it by scheduling clock-high reset assertions."
    );
    Ok(())
}
