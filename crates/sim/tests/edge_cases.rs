//! Simulator edge cases: reset/clock races, X-propagation, write-drop
//! semantics, multi-driver ordering, and timing bookkeeping.

use soccar_rtl::value::LogicVec;
use soccar_sim::{InitPolicy, SimError, Simulator};

fn compile(src: &str, top: &str) -> soccar_rtl::Design {
    soccar_rtl::compile("t.v", src, top)
        .unwrap_or_else(|e| panic!("{e}"))
        .0
}

#[test]
fn reset_wins_when_asserted_during_clock_edge_settle() {
    // Assert reset and raise the clock in the same settle batch: the reset
    // branch must win (its edge fires, and the guarded body sees rst low).
    let d = compile(
        "module t(input clk, rst_n, output reg [3:0] q);
           always @(posedge clk or negedge rst_n)
             if (!rst_n) q <= 4'd0; else q <= q + 4'd1;
         endmodule",
        "t",
    );
    let mut s = Simulator::concrete(&d, InitPolicy::Ones);
    let clk = d.find_net("t.clk").expect("clk");
    let rst = d.find_net("t.rst_n").expect("rst");
    let q = d.find_net("t.q").expect("q");
    s.write_input(rst, LogicVec::from_u64(1, 1)).expect("rst");
    s.write_input(clk, LogicVec::from_u64(1, 0)).expect("clk");
    s.settle().expect("settle");
    // Both changes land before one settle.
    s.write_input(rst, LogicVec::from_u64(1, 0)).expect("rst");
    s.write_input(clk, LogicVec::from_u64(1, 1)).expect("clk");
    s.settle().expect("settle");
    assert_eq!(s.net_logic(q).to_u64(), Some(0), "reset dominates");
}

#[test]
fn x_reset_line_produces_x_edge_behaviour_not_crash() {
    let d = compile(
        "module t(input clk, rst_n, output reg [3:0] q);
           always @(posedge clk or negedge rst_n)
             if (!rst_n) q <= 4'd0; else q <= q + 4'd1;
         endmodule",
        "t",
    );
    let mut s = Simulator::concrete(&d, InitPolicy::Ones);
    let clk = d.find_net("t.clk").expect("clk");
    let rst = d.find_net("t.rst_n").expect("rst");
    // rst_n starts X (never driven): drive to X explicitly then to 0.
    s.write_input(clk, LogicVec::from_u64(1, 0)).expect("clk");
    s.write_input(rst, LogicVec::xes(1)).expect("rst");
    s.settle().expect("settle");
    // X→0 is a negedge per the 4-state table: reset arm runs.
    s.write_input(rst, LogicVec::from_u64(1, 0)).expect("rst");
    s.settle().expect("settle");
    let q = d.find_net("t.q").expect("q");
    assert_eq!(s.net_logic(q).to_u64(), Some(0));
}

#[test]
fn nba_with_x_memory_index_is_dropped() {
    let d = compile(
        "module t(input clk, input [3:0] addr, input [7:0] wd, output reg [7:0] rd);
           reg [7:0] mem [0:15];
           integer i;
           initial for (i = 0; i < 16; i = i + 1) mem[i] = 8'd7;
           always @(posedge clk) begin
             mem[addr] <= wd;
             rd <= mem[0];
           end
         endmodule",
        "t",
    );
    let mut s = Simulator::concrete(&d, InitPolicy::Zeros);
    let clk = d.find_net("t.clk").expect("clk");
    s.write_input(clk, LogicVec::from_u64(1, 0)).expect("clk");
    s.write_input(d.find_net("t.wd").expect("wd"), LogicVec::from_u64(8, 0xAA))
        .expect("wd");
    s.write_input(d.find_net("t.addr").expect("addr"), LogicVec::xes(4))
        .expect("addr");
    s.settle().expect("settle");
    s.tick(clk).expect("tick");
    // No element was clobbered by the X-indexed write.
    let mem = d.find_memory("t.mem").expect("mem");
    for a in 0..16 {
        assert_eq!(s.mem_logic(mem, a).to_u64(), Some(7), "element {a}");
    }
}

#[test]
fn out_of_range_memory_read_is_x() {
    let d = compile(
        "module t(input [4:0] addr, output [7:0] rd);
           reg [7:0] mem [0:15];
           assign rd = mem[addr];
         endmodule",
        "t",
    );
    let mut s = Simulator::concrete(&d, InitPolicy::Zeros);
    let addr = d.find_net("t.addr").expect("addr");
    s.write_input(addr, LogicVec::from_u64(5, 20))
        .expect("addr");
    s.settle().expect("settle");
    assert!(s.net_logic(d.find_net("t.rd").expect("rd")).is_all_x());
    s.write_input(addr, LogicVec::from_u64(5, 3)).expect("addr");
    s.settle().expect("settle");
    assert_eq!(
        s.net_logic(d.find_net("t.rd").expect("rd")).to_u64(),
        Some(0)
    );
}

#[test]
fn two_processes_one_target_last_nba_wins() {
    // IEEE 1364: multiple NBAs to the same register in the same time step
    // apply in execution order; our processes execute in ProcessId order.
    let d = compile(
        "module t(input clk, output reg [3:0] q);
           always @(posedge clk) q <= 4'd1;
           always @(posedge clk) q <= 4'd2;
         endmodule",
        "t",
    );
    let mut s = Simulator::concrete(&d, InitPolicy::Zeros);
    let clk = d.find_net("t.clk").expect("clk");
    s.write_input(clk, LogicVec::from_u64(1, 0)).expect("clk");
    s.settle().expect("settle");
    s.tick(clk).expect("tick");
    assert_eq!(
        s.net_logic(d.find_net("t.q").expect("q")).to_u64(),
        Some(2),
        "second process's NBA commits last"
    );
}

#[test]
fn time_advances_two_per_tick() {
    let d = compile(
        "module t(input clk, output y); assign y = clk; endmodule",
        "t",
    );
    let mut s = Simulator::concrete(&d, InitPolicy::X);
    let clk = d.find_net("t.clk").expect("clk");
    s.write_input(clk, LogicVec::from_u64(1, 0)).expect("clk");
    s.settle().expect("settle");
    assert_eq!(s.time(), 0);
    for i in 1..=5 {
        s.tick(clk).expect("tick");
        assert_eq!(s.time(), 2 * i);
    }
}

#[test]
fn poke_wakes_dependents() {
    let d = compile(
        "module t(input clk, output reg [3:0] q, output [3:0] y);
           assign y = q ^ 4'hF;
           always @(posedge clk) q <= q;
         endmodule",
        "t",
    );
    let mut s = Simulator::concrete(&d, InitPolicy::Zeros);
    s.settle().expect("settle");
    let q = d.find_net("t.q").expect("q");
    let y = d.find_net("t.y").expect("y");
    assert_eq!(s.net_logic(y).to_u64(), Some(0xF));
    s.poke_net(q, LogicVec::from_u64(4, 0b0101));
    s.settle().expect("settle");
    assert_eq!(s.net_logic(y).to_u64(), Some(0b1010));
}

#[test]
fn width_mismatch_and_non_input_errors_are_reported() {
    let d = compile(
        "module t(input [3:0] a, output [3:0] y); assign y = a; endmodule",
        "t",
    );
    let mut s = Simulator::concrete(&d, InitPolicy::X);
    let a = d.find_net("t.a").expect("a");
    let y = d.find_net("t.y").expect("y");
    assert!(matches!(
        s.write_input(a, LogicVec::from_u64(8, 1)),
        Err(SimError::WidthMismatch {
            expected: 4,
            got: 8,
            ..
        })
    ));
    assert!(matches!(
        s.write_input(y, LogicVec::from_u64(4, 1)),
        Err(SimError::NotAnInput { .. })
    ));
}

#[test]
fn partial_reset_does_not_disturb_other_domain() {
    let d = compile(
        "module t(input clk, input a_rst_n, input b_rst_n,
                  output reg [7:0] qa, output reg [7:0] qb);
           always @(posedge clk or negedge a_rst_n)
             if (!a_rst_n) qa <= 8'd0; else qa <= qa + 8'd1;
           always @(posedge clk or negedge b_rst_n)
             if (!b_rst_n) qb <= 8'd0; else qb <= qb + 8'd1;
         endmodule",
        "t",
    );
    let mut s = Simulator::concrete(&d, InitPolicy::Zeros);
    let clk = d.find_net("t.clk").expect("clk");
    let ra = d.find_net("t.a_rst_n").expect("ra");
    let rb = d.find_net("t.b_rst_n").expect("rb");
    s.write_input(clk, LogicVec::from_u64(1, 0)).expect("clk");
    s.write_input(ra, LogicVec::from_u64(1, 1)).expect("ra");
    s.write_input(rb, LogicVec::from_u64(1, 1)).expect("rb");
    s.settle().expect("settle");
    for _ in 0..5 {
        s.tick(clk).expect("tick");
    }
    // Partial reset of domain A only.
    s.write_input(ra, LogicVec::from_u64(1, 0)).expect("ra");
    s.settle().expect("settle");
    let qa = d.find_net("t.qa").expect("qa");
    let qb = d.find_net("t.qb").expect("qb");
    assert_eq!(s.net_logic(qa).to_u64(), Some(0));
    assert_eq!(s.net_logic(qb).to_u64(), Some(5), "domain B undisturbed");
}

#[test]
fn trace_and_vcd_capture_reset_event() {
    let d = compile(
        "module t(input clk, rst_n, output reg [3:0] q);
           always @(posedge clk or negedge rst_n)
             if (!rst_n) q <= 4'd0; else q <= q + 4'd1;
         endmodule",
        "t",
    );
    let mut s = Simulator::concrete(&d, InitPolicy::Zeros);
    s.enable_tracing();
    let clk = d.find_net("t.clk").expect("clk");
    let rst = d.find_net("t.rst_n").expect("rst");
    s.write_input(clk, LogicVec::from_u64(1, 0)).expect("clk");
    s.write_input(rst, LogicVec::from_u64(1, 1)).expect("rst");
    s.settle().expect("settle");
    s.tick(clk).expect("tick"); // q: 0 → 1
    s.tick(clk).expect("tick"); // q: 1 → 2
    s.write_input(rst, LogicVec::from_u64(1, 0)).expect("rst");
    s.settle().expect("settle");
    let q = d.find_net("t.q").expect("q");
    let q_changes: Vec<_> = s.trace().iter().filter(|e| e.net == q).collect();
    assert!(q_changes.len() >= 2, "count + clear recorded");
    assert!(q_changes.last().expect("last").value.is_all_zero());
    let vcd = soccar_sim::vcd::write_vcd(&d, s.trace(), &[]);
    assert!(vcd.contains("t_q"));
    assert!(vcd.contains("b0000"));
}
