// Positive: raw asynchronous reset consumed by a clocked block with no
// release synchronizer anywhere in the module.
module consumer(input clk, input rst_n, input [3:0] d, output reg [3:0] q);
  always @(posedge clk or negedge rst_n)
    if (!rst_n) q <= 4'd0;
    else q <= d;
endmodule
