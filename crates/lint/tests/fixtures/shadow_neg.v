// Negative: both reset-named signals really are resets — hub forwards
// rst_n to a child reset port, leaf edge-qualifies and tests it.
module hub(input clk, input rst_n);
  leaf u (.clk(clk), .rst_n(rst_n));
endmodule

module leaf(input clk, input rst_n, output reg q);
  always @(posedge clk or negedge rst_n)
    if (!rst_n) q <= 1'b0;
    else q <= 1'b1;
endmodule
