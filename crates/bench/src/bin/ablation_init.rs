//! **Ablation: register initialization policy** — Algorithm 3 initializes
//! registers to all-ones "instead of zeros; consequently, we can validate
//! the major functionalities of asynchronous resets such as register
//! clearance and value reset".
//!
//! The experiment runs a *pure reset regression* (no data stimulus at all:
//! the test port is held at zero, only reset schedules vary) on ClusterSoC
//! Variant #1, whose leak bugs are missing `key_reg`/`pt_reg` clears. With
//! all-ones initialization the uncleared registers are visible in round 1;
//! with zero initialization an uncleared register is indistinguishable
//! from a cleared one, and the leak bugs are missed outright.

use soccar::evaluation::score;
use soccar::{Soccar, SoccarConfig};
use soccar_bench::{paper_config, render_table};
use soccar_concolic::{ConcolicConfig, SecurityProperty};
use soccar_sim::InitPolicy;
use soccar_soc::SocModel;

fn main() {
    let spec = soccar_soc::variant(SocModel::ClusterSoc, 1).expect("variant");
    let design = soccar_soc::generate(spec.soc, Some(spec.number));
    let properties: Vec<SecurityProperty> = soccar_soc::security_checks(spec.soc)
        .iter()
        .map(soccar::property_of)
        .collect();
    let mut rows = Vec::new();
    for (label, init) in [
        ("Ones (paper)", InitPolicy::Ones),
        ("Zeros", InitPolicy::Zeros),
    ] {
        let base = paper_config();
        let config = SoccarConfig {
            concolic: ConcolicConfig {
                init,
                // Pure reset regression: no symbolic data inputs.
                symbolic_inputs: Vec::new(),
                ..base.concolic
            },
            ..base
        };
        let report = Soccar::new(config)
            .analyze("soc.v", &design.source, &design.top, properties.clone())
            .expect("analyze");
        let eval = score(&spec, report);
        let leak_detected = eval
            .outcomes
            .iter()
            .filter(|o| o.violation.contains("Leakage") && o.detected)
            .count();
        let leak_total = eval
            .outcomes
            .iter()
            .filter(|o| o.violation.contains("Leakage"))
            .count();
        rows.push(vec![
            label.to_owned(),
            format!("{leak_detected}/{leak_total}"),
            format!("{}/{}", eval.detected(), eval.outcomes.len()),
            eval.report
                .concolic
                .first_violation_round
                .map_or_else(|| "-".to_owned(), |r| r.to_string()),
            format!("{:.2}", eval.verification_time().as_secs_f64()),
        ]);
    }
    println!(
        "Ablation — register initialization policy\n\
         (ClusterSoC Variant #1, pure reset regression: no data stimulus)"
    );
    println!(
        "{}",
        render_table(
            &[
                "Init policy",
                "Leak bugs found",
                "All bugs found",
                "First hit (round)",
                "Seconds"
            ],
            &rows
        )
    );
    println!(
        "With zeros, an uncleared secret register reads 0 — identical to a\n\
         cleared one — so the clearance checks pass vacuously. All-ones makes\n\
         the missing clear observable at the first reset assertion."
    );
}
