//! Audit your own IP: point SoCCAR at arbitrary Verilog with your own
//! security properties — the workflow a downstream user would adopt.
//!
//! This example audits a DMA-style engine with a descriptor lock, checks
//! three properties, and shows how the report pinpoints the violating
//! module and the reproducing reset schedule.
//!
//! ```sh
//! cargo run --example custom_ip_audit
//! ```

use soccar::{Soccar, SoccarConfig};
use soccar_concolic::{ConcolicConfig, PropertyKind, SecurityProperty};
use soccar_rtl::LogicVec;

const RTL: &str = "
  module dma(input clk, input rst_n, input go, input [31:0] desc,
             output reg [31:0] cur_desc, output reg lock, output reg [1:0] state);
    always @(posedge clk or negedge rst_n)
      if (!rst_n) begin
        state <= 2'd0;
        lock <= 1'b0;            // BUG: the descriptor lock must re-arm to 1
      end else begin
        case (state)
          2'd0: if (go & ~lock) begin cur_desc <= desc; state <= 2'd1; end
          2'd1: state <= 2'd2;
          2'd2: state <= 2'd0;
          default: state <= 2'd0;
        endcase
      end
  endmodule

  module scrubber(input clk, input rst_n, input [31:0] secret_in, input load,
                  output reg [31:0] secret);
    always @(posedge clk or negedge rst_n)
      if (!rst_n) secret <= 32'd0;          // correct scrubbing
      else if (load) secret <= secret_in;
  endmodule

  module top(input clk, input dma_rst_n, input sec_rst_n,
             input go, input [31:0] desc, input load, input [31:0] secret_in);
    dma u_dma (.clk(clk), .rst_n(dma_rst_n), .go(go), .desc(desc),
               .cur_desc(), .lock(), .state());
    scrubber u_scrub (.clk(clk), .rst_n(sec_rst_n),
                      .secret_in(secret_in), .load(load), .secret());
  endmodule";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let properties = vec![
        SecurityProperty {
            name: "dma-lock-armed".into(),
            module: "dma".into(),
            kind: PropertyKind::AssertedAfterReset {
                domain: "top.dma_rst_n".into(),
                signal: "top.u_dma.lock".into(),
                window: 0,
            },
        },
        SecurityProperty {
            name: "dma-state-legal".into(),
            module: "dma".into(),
            kind: PropertyKind::AlwaysOneOf {
                signal: "top.u_dma.state".into(),
                allowed: vec![
                    LogicVec::from_u64(2, 0),
                    LogicVec::from_u64(2, 1),
                    LogicVec::from_u64(2, 2),
                ],
            },
        },
        SecurityProperty {
            name: "secret-cleared".into(),
            module: "scrubber".into(),
            kind: PropertyKind::ClearedAfterReset {
                domain: "top.sec_rst_n".into(),
                signal: "top.u_scrub.secret".into(),
                expected: LogicVec::zeros(32),
                window: 0,
            },
        },
    ];

    let config = SoccarConfig {
        concolic: ConcolicConfig {
            cycles: 12,
            symbolic_inputs: vec!["top.go".into(), "top.desc".into()],
            ..ConcolicConfig::default()
        },
        ..SoccarConfig::default()
    };
    let report = Soccar::new(config).analyze("audit.v", RTL, "top", properties)?;

    println!(
        "audited: {} reset domains, {} reset-governed events, {} targets",
        report.extraction.reset_domains, report.extraction.ar_events, report.concolic.targets_total,
    );
    println!();
    for v in report.violations() {
        println!("{v}");
    }
    for w in &report.concolic.witnesses {
        println!(
            "  reproduce [{}] with: {}",
            w.property,
            w.schedule.summary()
        );
    }
    println!();
    println!(
        "expected outcome: `dma-lock-armed` fires (the reset disarms the\n\
         descriptor lock); the other two properties hold."
    );
    Ok(())
}
