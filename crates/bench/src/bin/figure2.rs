//! **Figure 2** — the ClusterSoC / AutoSoC block diagrams, rendered as
//! structural topology dumps of the generated designs.

use soccar_soc::topology::Topology;
use soccar_soc::SocModel;

fn main() {
    for model in [SocModel::ClusterSoc, SocModel::AutoSoc] {
        let design = soccar_soc::generate(model, None);
        let (d, _) = soccar_rtl::compile("soc.v", &design.source, &design.top)
            .expect("benchmark SoCs compile");
        let topo = Topology::of(&d);
        println!(
            "Figure 2{} — {}:",
            if model == SocModel::ClusterSoc {
                "a"
            } else {
                "b"
            },
            design.name
        );
        println!("{}", topo.render());
        println!();
    }
}
