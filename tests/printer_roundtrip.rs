//! Round-trip the full benchmark SoCs through the pretty-printer:
//! `parse → print → parse → print` must reach a fixed point, and the
//! reprinted source must elaborate to a design with identical statistics
//! and produce identical detection results.

use proptest::prelude::*;
use soccar_rtl::parser::parse;
use soccar_rtl::printer::print_unit;
use soccar_rtl::span::FileId;
use soccar_soc::SocModel;

#[test]
fn socs_roundtrip_through_the_printer() {
    for spec in soccar_soc::variants() {
        let design = soccar_soc::generate(spec.soc, Some(spec.number));
        let unit1 = parse(FileId(0), &design.source).expect("parse original");
        let printed = print_unit(&unit1);
        let unit2 = parse(FileId(0), &printed)
            .unwrap_or_else(|e| panic!("{}: reparse failed: {e}", spec.name()));
        assert_eq!(
            print_unit(&unit2),
            printed,
            "{}: printer fixed point",
            spec.name()
        );
        // Elaboration equivalence: identical structural statistics.
        let d1 = soccar_rtl::elaborate::elaborate(&unit1, &design.top).expect("elab 1");
        let d2 = soccar_rtl::elaborate::elaborate(&unit2, &design.top).expect("elab 2");
        assert_eq!(d1.stats(), d2.stats(), "{}", spec.name());
        assert_eq!(d1.nets().len(), d2.nets().len());
    }
}

#[test]
fn reprinted_variant_detects_identically() {
    use soccar::evaluation::score;
    use soccar::{Soccar, SoccarConfig};
    use soccar_concolic::{ConcolicConfig, SecurityProperty};

    let spec = soccar_soc::variant(SocModel::ClusterSoc, 2).expect("variant");
    let design = soccar_soc::generate(spec.soc, Some(spec.number));
    let unit = parse(FileId(0), &design.source).expect("parse");
    let reprinted = print_unit(&unit);

    let properties: Vec<SecurityProperty> = soccar_soc::security_checks(spec.soc)
        .iter()
        .map(soccar::property_of)
        .collect();
    let config = SoccarConfig {
        concolic: ConcolicConfig {
            cycles: 10,
            max_rounds: 2,
            sweep_stride: 4,
            symbolic_inputs: soccar_soc::symbolic_inputs(spec.soc),
            ..ConcolicConfig::default()
        },
        ..SoccarConfig::default()
    };
    let run = |src: &str| {
        let report = Soccar::new(config.clone())
            .analyze("soc.v", src, &design.top, properties.clone())
            .expect("analyze");
        let eval = score(&spec, report);
        let mut fired: Vec<String> = eval
            .report
            .concolic
            .violations
            .iter()
            .map(|v| v.property.clone())
            .collect();
        fired.sort();
        fired
    };
    assert_eq!(run(&design.source), run(&reprinted));
}

/// Renders a generated always-block module: random reset polarity
/// (active-low `negedge rst_n` vs active-high `posedge rst`), sync or
/// async reset style, register width, and scrubbed/held reset arms —
/// the constructs the AR_CFG extractor keys on, so the printer must
/// preserve them exactly.
fn generated_module(
    active_low: bool,
    async_reset: bool,
    width: u64,
    regs: &[bool], // per register: does the reset arm scrub it?
) -> String {
    let (rst, edge, test) = if active_low {
        ("rst_n", "negedge rst_n", "!rst_n")
    } else {
        ("rst", "posedge rst", "rst")
    };
    let sensitivity = if async_reset {
        format!("posedge clk or {edge}")
    } else {
        "posedge clk".to_owned()
    };
    let top = width - 1;
    let mut src = format!("module gen(input clk, input {rst}, input [{top}:0] d");
    for r in 0..regs.len() {
        src.push_str(&format!(", output reg [{top}:0] q{r}"));
    }
    src.push_str(");\n");
    for (r, scrub) in regs.iter().enumerate() {
        let cleared = if *scrub {
            format!("{width}'d0")
        } else {
            format!("q{r}")
        };
        src.push_str(&format!(
            "  always @({sensitivity})\n    if ({test}) q{r} <= {cleared}; else q{r} <= d;\n"
        ));
    }
    src.push_str("endmodule\n");
    src
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Generated always-block/reset-polarity modules reach a printer
    /// fixed point, and the reprinted source elaborates identically.
    #[test]
    fn generated_always_blocks_roundtrip(
        active_low in prop_oneof![Just(true), Just(false)],
        async_reset in prop_oneof![Just(true), Just(false)],
        width in 1u64..17,
        regs in proptest::collection::vec(prop_oneof![Just(true), Just(false)], 1..4),
    ) {
        let src = generated_module(active_low, async_reset, width, &regs);
        let unit1 = parse(FileId(0), &src).expect("generated module parses");
        let printed = print_unit(&unit1);
        let unit2 = parse(FileId(0), &printed).expect("reprinted module parses");
        prop_assert_eq!(print_unit(&unit2), printed, "printer fixed point");

        let d1 = soccar_rtl::elaborate::elaborate(&unit1, "gen").expect("elab original");
        let d2 = soccar_rtl::elaborate::elaborate(&unit2, "gen").expect("elab reprinted");
        prop_assert_eq!(d1.stats(), d2.stats());
        prop_assert_eq!(d1.nets().len(), d2.nets().len());
    }

    /// The reprinted source extracts the same AR_CFG: reset polarity and
    /// governor structure survive the printer.
    #[test]
    fn generated_reset_polarity_survives_reprinting(
        active_low in prop_oneof![Just(true), Just(false)],
        width in 1u64..9,
        regs in proptest::collection::vec(prop_oneof![Just(true), Just(false)], 1..3),
    ) {
        use soccar_cfg::{extract_all, GovernorAnalysis, ResetNaming};

        let src = generated_module(active_low, true, width, &regs);
        let unit1 = parse(FileId(0), &src).expect("parse");
        let unit2 = parse(FileId(0), &print_unit(&unit1)).expect("reparse");
        let naming = ResetNaming::new();
        let ar1 = extract_all(&unit1, &naming, GovernorAnalysis::Explicit);
        let ar2 = extract_all(&unit2, &naming, GovernorAnalysis::Explicit);
        prop_assert_eq!(ar1.len(), ar2.len());
        for ((cfg1, a1), (cfg2, a2)) in ar1.iter().zip(&ar2) {
            prop_assert_eq!(&cfg1.module, &cfg2.module);
            prop_assert_eq!(cfg1.events.len(), cfg2.events.len());
            prop_assert_eq!(a1.events.len(), a2.events.len());
            prop_assert_eq!(a1.events.len(), regs.len(), "one AR event per register");
            for (e1, e2) in a1.events.iter().zip(&a2.events) {
                let (g1, g2) = (e1.governor.as_ref(), e2.governor.as_ref());
                prop_assert_eq!(g1.map(|g| g.active_low), g2.map(|g| g.active_low));
                prop_assert_eq!(g1.map(|g| g.active_low), Some(active_low));
                prop_assert_eq!(&e1.assigned, &e2.assigned);
            }
        }
    }
}
