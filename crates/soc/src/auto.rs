//! AutoSoC: the automotive benchmark SoC (Section V-A, Fig. 2b).
//!
//! "Significantly more complex than ClusterSoC": hierarchical and
//! heterogeneous buses with application-specific subsystems, each a tiled
//! architecture with its own communication fabric:
//!
//! * **CPU subsystem** — three cores (RV32I, RV32IC, RV32IM) on a local
//!   Wishbone fabric with a scratch SRAM and an outbound AXI gateway;
//! * **memory subsystem** — single/dual-port SRAMs plus a DMA controller
//!   behind an AXI→Wishbone bridge;
//! * **crypto subsystem** — five engines (AES192, SHA256, MD5, DES3, RSA)
//!   with a bridged status RAM;
//! * **DSP subsystem** — FIR, IIR, DFT, IDFT;
//! * **peripheral subsystem** — UART, SPI, Ethernet;
//! * an **AXI4-Lite system crossbar** (external host port + CPU gateway as
//!   masters, one slave window per subsystem);
//! * six asynchronous reset domains: one per subsystem plus `sys_rst_n`
//!   for the crossbar.

use crate::bugs::{SocModel, VariantSpec};
use crate::cluster::{bus_bug_for, core_bug_for, crypto_bug_for, memory_bug_for, SocDesign};
use crate::ip::axi;
use crate::ip::crypto;
use crate::ip::dma;
use crate::ip::dsp;
use crate::ip::periph;
use crate::ip::riscv::{self, CoreVariant};
use crate::ip::sram;
use crate::ip::wishbone;

/// Generates AutoSoC. Pass `None` for the clean baseline or an AutoSoC
/// [`VariantSpec`] for a bug-seeded variant.
///
/// # Panics
///
/// Panics if `spec` belongs to a different SoC model.
#[must_use]
pub fn generate(spec: Option<&VariantSpec>) -> SocDesign {
    if let Some(v) = spec {
        assert_eq!(v.soc, SocModel::AutoSoc, "wrong SoC model");
    }
    let mut src = String::new();
    for v in [CoreVariant::Rv32i, CoreVariant::Rv32ic, CoreVariant::Rv32im] {
        src.push_str(&riscv::core(v, core_bug_for(spec, v)));
    }
    src.push_str(&wishbone::wb_fabric(
        "wb_cpu_fabric",
        3,
        2,
        bus_bug_for(spec),
    ));
    src.push_str(&wishbone::wb_fabric(
        "wb_mem_fabric",
        2,
        2,
        bus_bug_for(spec),
    ));
    src.push_str(&sram::sram_sp(memory_bug_for(spec, "sram_sp")));
    src.push_str(&sram::sram_dp(memory_bug_for(spec, "sram_dp")));
    src.push_str(&dma::dma(memory_bug_for(spec, "dma_engine")));
    for engine in crypto::ENGINE_NAMES {
        src.push_str(&crypto::by_name(engine, crypto_bug_for(spec, engine)));
    }
    src.push_str(&dsp::fir());
    src.push_str(&dsp::iir());
    src.push_str(&dsp::dft());
    src.push_str(&dsp::idft());
    src.push_str(&periph::uart());
    src.push_str(&periph::spi());
    src.push_str(&periph::eth());
    src.push_str(&axi::axi_interconnect("axi_xbar", 2, 4));
    src.push_str(&axi::axi2wb_bridge());
    src.push_str(&axi::wb2axi_shim());
    src.push_str(SUBSYSTEMS);
    src.push_str(TOP);
    SocDesign {
        name: spec.map_or_else(|| "AutoSoC (clean)".to_owned(), VariantSpec::name),
        soc: SocModel::AutoSoc,
        variant: spec.map(|v| v.number),
        source: src,
        top: "auto_soc".to_owned(),
        bugs: spec.map(|v| v.bugs.clone()).unwrap_or_default(),
    }
}

const SUBSYSTEMS: &str = "
module cpu_subsys(
  input clk,
  input rst_n,
  input bus_unlock,
  input mem_unlock,
  // Outbound AXI master (to the system crossbar).
  output awvalid,
  output [31:0] awaddr,
  output [31:0] wdata,
  input bvalid,
  output arvalid,
  output [31:0] araddr,
  input [31:0] rdata,
  input rvalid,
  output [1:0] priv0,
  output [1:0] priv1,
  output [1:0] priv2
);
  wire [31:0] m0_addr;
  wire [31:0] m0_wdata;
  wire [31:0] m0_rdata;
  wire m0_we;
  wire m0_stb;
  wire m0_ack;
  wire [31:0] m1_addr;
  wire [31:0] m1_wdata;
  wire [31:0] m1_rdata;
  wire m1_we;
  wire m1_stb;
  wire m1_ack;
  wire [31:0] m2_addr;
  wire [31:0] m2_wdata;
  wire [31:0] m2_rdata;
  wire m2_we;
  wire m2_stb;
  wire m2_ack;
  wire [31:0] s0_addr;
  wire [31:0] s0_wdata;
  wire [31:0] s0_rdata;
  wire s0_we;
  wire s0_stb;
  wire s0_ack;
  wire [31:0] s1_addr;
  wire [31:0] s1_wdata;
  wire [31:0] s1_rdata;
  wire s1_we;
  wire s1_stb;
  wire s1_ack;

  rv32i_core #(.HARTID(0)) u_core0 (
    .clk(clk), .rst_n(rst_n),
    .bus_addr(m0_addr), .bus_wdata(m0_wdata), .bus_rdata(m0_rdata),
    .bus_we(m0_we), .bus_stb(m0_stb), .bus_ack(m0_ack),
    .irq(1'b0), .priv_mode(priv0), .pc(), .halted()
  );
  rv32ic_core #(.HARTID(1)) u_core1 (
    .clk(clk), .rst_n(rst_n),
    .bus_addr(m1_addr), .bus_wdata(m1_wdata), .bus_rdata(m1_rdata),
    .bus_we(m1_we), .bus_stb(m1_stb), .bus_ack(m1_ack),
    .irq(1'b0), .priv_mode(priv1), .pc(), .halted()
  );
  rv32im_core #(.HARTID(2)) u_core2 (
    .clk(clk), .rst_n(rst_n),
    .bus_addr(m2_addr), .bus_wdata(m2_wdata), .bus_rdata(m2_rdata),
    .bus_we(m2_we), .bus_stb(m2_stb), .bus_ack(m2_ack),
    .irq(1'b0), .priv_mode(priv2), .pc(), .halted()
  );

  wb_cpu_fabric u_fabric (
    .clk(clk), .rst_n(rst_n), .bus_unlock(bus_unlock),
    .m0_addr(m0_addr), .m0_wdata(m0_wdata), .m0_rdata(m0_rdata),
    .m0_we(m0_we), .m0_stb(m0_stb), .m0_ack(m0_ack),
    .m1_addr(m1_addr), .m1_wdata(m1_wdata), .m1_rdata(m1_rdata),
    .m1_we(m1_we), .m1_stb(m1_stb), .m1_ack(m1_ack),
    .m2_addr(m2_addr), .m2_wdata(m2_wdata), .m2_rdata(m2_rdata),
    .m2_we(m2_we), .m2_stb(m2_stb), .m2_ack(m2_ack),
    .s0_addr(s0_addr), .s0_wdata(s0_wdata), .s0_rdata(s0_rdata),
    .s0_we(s0_we), .s0_stb(s0_stb), .s0_ack(s0_ack),
    .s1_addr(s1_addr), .s1_wdata(s1_wdata), .s1_rdata(s1_rdata),
    .s1_we(s1_we), .s1_stb(s1_stb), .s1_ack(s1_ack),
    .prot_mask(), .bus_viol()
  );

  sram_sp #(.AW(14)) u_scratch (
    .clk(clk), .rst_n(rst_n),
    .stb(s0_stb), .we(s0_we), .unlock(mem_unlock),
    .addr(s0_addr[15:2]), .wdata(s0_wdata), .rdata(s0_rdata),
    .ack(s0_ack), .prot_en(), .viol()
  );

  wb2axi_shim u_gateway (
    .clk(clk), .rst_n(rst_n),
    .wb_addr(s1_addr), .wb_wdata(s1_wdata), .wb_rdata(s1_rdata),
    .wb_we(s1_we), .wb_stb(s1_stb), .wb_ack(s1_ack),
    .awvalid(awvalid), .awaddr(awaddr), .wdata(wdata), .bvalid(bvalid),
    .arvalid(arvalid), .araddr(araddr), .rdata(rdata), .rvalid(rvalid)
  );
endmodule

module mem_subsys(
  input clk,
  input rst_n,
  input bus_unlock,
  input mem_unlock,
  // AXI slave window.
  input awvalid,
  input [31:0] awaddr,
  input [31:0] wdata,
  output bvalid,
  input arvalid,
  input [31:0] araddr,
  output [31:0] rdata,
  output rvalid,
  // DMA control (test access).
  input dma_go,
  input [31:0] dma_src,
  input [31:0] dma_dst,
  input [7:0] dma_len,
  output dma_busy
);
  wire [31:0] m0_addr;
  wire [31:0] m0_wdata;
  wire [31:0] m0_rdata;
  wire m0_we;
  wire m0_stb;
  wire m0_ack;
  wire [31:0] m1_addr;
  wire [31:0] m1_wdata;
  wire [31:0] m1_rdata;
  wire m1_we;
  wire m1_stb;
  wire m1_ack;
  wire [31:0] s0_addr;
  wire [31:0] s0_wdata;
  wire [31:0] s0_rdata;
  wire s0_we;
  wire s0_stb;
  wire s0_ack;
  wire [31:0] s1_addr;
  wire [31:0] s1_wdata;
  wire [31:0] s1_rdata;
  wire s1_we;
  wire s1_stb;
  wire s1_ack;

  axi2wb_bridge u_bridge (
    .clk(clk), .rst_n(rst_n),
    .awvalid(awvalid), .awaddr(awaddr), .wdata(wdata), .bvalid(bvalid),
    .arvalid(arvalid), .araddr(araddr), .rdata(rdata), .rvalid(rvalid),
    .wb_addr(m0_addr), .wb_wdata(m0_wdata), .wb_rdata(m0_rdata),
    .wb_we(m0_we), .wb_stb(m0_stb), .wb_ack(m0_ack)
  );

  dma_engine u_dma (
    .clk(clk), .rst_n(rst_n),
    .go(dma_go), .unlock(mem_unlock),
    .src(dma_src), .dst(dma_dst), .len(dma_len),
    .bus_addr(m1_addr), .bus_wdata(m1_wdata), .bus_rdata(m1_rdata),
    .bus_we(m1_we), .bus_stb(m1_stb), .bus_ack(m1_ack),
    .busy(dma_busy), .desc_lock()
  );

  wb_mem_fabric u_fabric (
    .clk(clk), .rst_n(rst_n), .bus_unlock(bus_unlock),
    .m0_addr(m0_addr), .m0_wdata(m0_wdata), .m0_rdata(m0_rdata),
    .m0_we(m0_we), .m0_stb(m0_stb), .m0_ack(m0_ack),
    .m1_addr(m1_addr), .m1_wdata(m1_wdata), .m1_rdata(m1_rdata),
    .m1_we(m1_we), .m1_stb(m1_stb), .m1_ack(m1_ack),
    .s0_addr(s0_addr), .s0_wdata(s0_wdata), .s0_rdata(s0_rdata),
    .s0_we(s0_we), .s0_stb(s0_stb), .s0_ack(s0_ack),
    .s1_addr(s1_addr), .s1_wdata(s1_wdata), .s1_rdata(s1_rdata),
    .s1_we(s1_we), .s1_stb(s1_stb), .s1_ack(s1_ack),
    .prot_mask(), .bus_viol()
  );

  sram_sp #(.AW(14)) u_sram0 (
    .clk(clk), .rst_n(rst_n),
    .stb(s0_stb), .we(s0_we), .unlock(mem_unlock),
    .addr(s0_addr[15:2]), .wdata(s0_wdata), .rdata(s0_rdata),
    .ack(s0_ack), .prot_en(), .viol()
  );
  sram_dp #(.AW(14)) u_sram1 (
    .clk(clk), .rst_n(rst_n),
    .a_stb(s1_stb), .a_we(s1_we), .unlock(mem_unlock),
    .a_addr(s1_addr[15:2]), .a_wdata(s1_wdata), .a_rdata(s1_rdata),
    .a_ack(s1_ack),
    .b_stb(1'b0), .b_addr(8'd0), .b_rdata(), .b_ack(),
    .prot_en(), .viol()
  );
endmodule

module crypto_subsys(
  input clk,
  input rst_n,
  input mem_unlock,
  // AXI slave window (status RAM).
  input awvalid,
  input [31:0] awaddr,
  input [31:0] wdata,
  output bvalid,
  input arvalid,
  input [31:0] araddr,
  output [31:0] rdata,
  output rvalid,
  // Test access port.
  input [63:0] tst_key,
  input [63:0] tst_pt,
  input [4:0] tst_start,
  output [4:0] done,
  output [4:0] leak
);
  wire [31:0] wb_addr;
  wire [31:0] wb_wdata;
  wire [31:0] wb_rdata;
  wire wb_we;
  wire wb_stb;
  wire wb_ack;

  axi2wb_bridge u_bridge (
    .clk(clk), .rst_n(rst_n),
    .awvalid(awvalid), .awaddr(awaddr), .wdata(wdata), .bvalid(bvalid),
    .arvalid(arvalid), .araddr(araddr), .rdata(rdata), .rvalid(rvalid),
    .wb_addr(wb_addr), .wb_wdata(wb_wdata), .wb_rdata(wb_rdata),
    .wb_we(wb_we), .wb_stb(wb_stb), .wb_ack(wb_ack)
  );
  sram_sp #(.AW(12)) u_status (
    .clk(clk), .rst_n(rst_n),
    .stb(wb_stb), .we(wb_we), .unlock(mem_unlock),
    .addr(wb_addr[13:2]), .wdata(wb_wdata), .rdata(wb_rdata),
    .ack(wb_ack), .prot_en(), .viol()
  );

  aes192 u_aes192 (
    .clk(clk), .rst_n(rst_n), .start(tst_start[0]),
    .key_in(tst_key), .pt_in(tst_pt),
    .ct_out(), .busy(), .done(done[0]), .leak_obs(leak[0])
  );
  sha256 u_sha256 (
    .clk(clk), .rst_n(rst_n), .start(tst_start[1]),
    .key_in(tst_key), .pt_in(tst_pt),
    .ct_out(), .busy(), .done(done[1]), .leak_obs(leak[1])
  );
  md5 u_md5 (
    .clk(clk), .rst_n(rst_n), .start(tst_start[2]),
    .key_in(tst_key), .pt_in(tst_pt),
    .ct_out(), .busy(), .done(done[2]), .leak_obs(leak[2])
  );
  des3 u_des3 (
    .clk(clk), .rst_n(rst_n), .start(tst_start[3]),
    .key_in(tst_key), .pt_in(tst_pt),
    .ct_out(), .busy(), .done(done[3]), .leak_obs(leak[3])
  );
  rsa u_rsa (
    .clk(clk), .rst_n(rst_n), .start(tst_start[4]),
    .key_in(tst_key), .pt_in(tst_pt),
    .ct_out(), .busy(), .done(done[4]), .leak_obs(leak[4])
  );
  // Augmented hash bank (Section V-A: \"the number of crypto cores ...
  // are augmented for additional functionality such as implementation of
  // cryptographic hash algorithms\").
  sha256 u_sha256b (
    .clk(clk), .rst_n(rst_n), .start(tst_start[1]),
    .key_in(tst_pt), .pt_in(tst_key),
    .ct_out(), .busy(), .done(), .leak_obs()
  );
  md5 u_md5b (
    .clk(clk), .rst_n(rst_n), .start(tst_start[2]),
    .key_in(tst_pt), .pt_in(tst_key),
    .ct_out(), .busy(), .done(), .leak_obs()
  );
endmodule

module dsp_subsys(
  input clk,
  input rst_n,
  input mem_unlock,
  input awvalid,
  input [31:0] awaddr,
  input [31:0] wdata,
  output bvalid,
  input arvalid,
  input [31:0] araddr,
  output [31:0] rdata,
  output rvalid,
  input [15:0] sample_in,
  input sample_valid,
  output [31:0] fir_out,
  output [31:0] iir_out
);
  wire [31:0] wb_addr;
  wire [31:0] wb_wdata;
  wire [31:0] wb_rdata;
  wire wb_we;
  wire wb_stb;
  wire wb_ack;

  axi2wb_bridge u_bridge (
    .clk(clk), .rst_n(rst_n),
    .awvalid(awvalid), .awaddr(awaddr), .wdata(wdata), .bvalid(bvalid),
    .arvalid(arvalid), .araddr(araddr), .rdata(rdata), .rvalid(rvalid),
    .wb_addr(wb_addr), .wb_wdata(wb_wdata), .wb_rdata(wb_rdata),
    .wb_we(wb_we), .wb_stb(wb_stb), .wb_ack(wb_ack)
  );
  sram_sp #(.AW(12)) u_coeff (
    .clk(clk), .rst_n(rst_n),
    .stb(wb_stb), .we(wb_we), .unlock(mem_unlock),
    .addr(wb_addr[13:2]), .wdata(wb_wdata), .rdata(wb_rdata),
    .ack(wb_ack), .prot_en(), .viol()
  );

  fir_filter #(.TAPS(16)) u_fir (
    .clk(clk), .rst_n(rst_n),
    .in_valid(sample_valid), .in_sample(sample_in),
    .out_sample(fir_out), .out_valid()
  );
  iir_filter u_iir (
    .clk(clk), .rst_n(rst_n),
    .in_valid(sample_valid), .in_sample(sample_in),
    .out_sample(iir_out), .out_valid()
  );
  dft_core u_dft (
    .clk(clk), .rst_n(rst_n),
    .in_valid(sample_valid), .in_sample(sample_in),
    .out_sample(), .bin_index(), .out_valid()
  );
  idft_core u_idft (
    .clk(clk), .rst_n(rst_n),
    .in_valid(sample_valid), .in_sample(sample_in),
    .out_sample(), .bin_index(), .out_valid()
  );
endmodule

module periph_subsys(
  input clk,
  input rst_n,
  input mem_unlock,
  input awvalid,
  input [31:0] awaddr,
  input [31:0] wdata,
  output bvalid,
  input arvalid,
  input [31:0] araddr,
  output [31:0] rdata,
  output rvalid,
  input [7:0] tx_byte,
  input tx_go,
  input uart_rx,
  input spi_miso,
  input eth_rx_dv,
  input [31:0] eth_rxd,
  output uart_tx,
  output spi_sck_o,
  output spi_mosi_o,
  output spi_cs_o,
  output eth_tx_en,
  output [31:0] eth_txd
);
  wire [31:0] wb_addr;
  wire [31:0] wb_wdata;
  wire [31:0] wb_rdata;
  wire wb_we;
  wire wb_stb;
  wire wb_ack;

  axi2wb_bridge u_bridge (
    .clk(clk), .rst_n(rst_n),
    .awvalid(awvalid), .awaddr(awaddr), .wdata(wdata), .bvalid(bvalid),
    .arvalid(arvalid), .araddr(araddr), .rdata(rdata), .rvalid(rvalid),
    .wb_addr(wb_addr), .wb_wdata(wb_wdata), .wb_rdata(wb_rdata),
    .wb_we(wb_we), .wb_stb(wb_stb), .wb_ack(wb_ack)
  );
  sram_sp #(.AW(12)) u_buf (
    .clk(clk), .rst_n(rst_n),
    .stb(wb_stb), .we(wb_we), .unlock(mem_unlock),
    .addr(wb_addr[13:2]), .wdata(wb_wdata), .rdata(wb_rdata),
    .ack(wb_ack), .prot_en(), .viol()
  );

  uart u_uart (
    .clk(clk), .rst_n(rst_n),
    .tx_start(tx_go), .tx_data(tx_byte),
    .txd(uart_tx), .tx_busy(),
    .rxd(uart_rx), .rx_data(), .rx_valid()
  );
  spi_ctrl u_spi (
    .clk(clk), .rst_n(rst_n),
    .start(tx_go), .mosi_data(tx_byte),
    .sck(spi_sck_o), .mosi(spi_mosi_o), .miso(spi_miso),
    .cs_n(spi_cs_o), .miso_data(), .busy()
  );
  eth_mac u_eth (
    .clk(clk), .rst_n(rst_n),
    .tx_start(tx_go), .tx_len(8'd4),
    .tx_word(eth_rxd), .tx_word_valid(tx_go), .tx_done(),
    .phy_tx_en(eth_tx_en), .phy_txd(eth_txd),
    .phy_rx_dv(eth_rx_dv), .phy_rxd(eth_rxd),
    .rx_word(), .rx_valid(), .csum()
  );
endmodule
";

const TOP: &str = "
module auto_soc(
  input clk,
  input sys_rst_n,
  input cpu_rst_n,
  input mem_rst_n,
  input crypto_rst_n,
  input dsp_rst_n,
  input periph_rst_n,
  input bus_unlock,
  input mem_unlock,
  // External host AXI master (test/debug port).
  input host_awvalid,
  input [31:0] host_awaddr,
  input [31:0] host_wdata,
  output host_bvalid,
  input host_arvalid,
  input [31:0] host_araddr,
  output [31:0] host_rdata,
  output host_rvalid,
  // Crypto test access.
  input [63:0] tst_key,
  input [63:0] tst_pt,
  input [4:0] tst_start,
  // DMA control.
  input dma_go,
  input [31:0] dma_src,
  input [31:0] dma_dst,
  input [7:0] dma_len,
  // DSP samples.
  input [15:0] dsp_in,
  input dsp_valid,
  // Peripheral pins.
  input [7:0] tx_byte,
  input tx_go,
  input uart_rx,
  input spi_miso,
  input eth_rx_dv,
  input [31:0] eth_rxd,
  output uart_tx,
  output spi_sck_o,
  output spi_mosi_o,
  output spi_cs_o,
  output eth_tx_en,
  output [31:0] eth_txd,
  // Observability.
  output [1:0] priv0,
  output [1:0] priv1,
  output [1:0] priv2,
  output [4:0] crypto_done,
  output [4:0] leak_flags,
  output dma_busy,
  output [31:0] fir_out,
  output [31:0] iir_out
);
  // CPU gateway master (crossbar m1).
  wire g_awvalid;
  wire [31:0] g_awaddr;
  wire [31:0] g_wdata;
  wire g_bvalid;
  wire g_arvalid;
  wire [31:0] g_araddr;
  wire [31:0] g_rdata;
  wire g_rvalid;
  // Crossbar slave windows 0..3.
  wire s0_awvalid;
  wire [31:0] s0_awaddr;
  wire [31:0] s0_wdata;
  wire s0_bvalid;
  wire s0_arvalid;
  wire [31:0] s0_araddr;
  wire [31:0] s0_rdata;
  wire s0_rvalid;
  wire s1_awvalid;
  wire [31:0] s1_awaddr;
  wire [31:0] s1_wdata;
  wire s1_bvalid;
  wire s1_arvalid;
  wire [31:0] s1_araddr;
  wire [31:0] s1_rdata;
  wire s1_rvalid;
  wire s2_awvalid;
  wire [31:0] s2_awaddr;
  wire [31:0] s2_wdata;
  wire s2_bvalid;
  wire s2_arvalid;
  wire [31:0] s2_araddr;
  wire [31:0] s2_rdata;
  wire s2_rvalid;
  wire s3_awvalid;
  wire [31:0] s3_awaddr;
  wire [31:0] s3_wdata;
  wire s3_bvalid;
  wire s3_arvalid;
  wire [31:0] s3_araddr;
  wire [31:0] s3_rdata;
  wire s3_rvalid;

  cpu_subsys u_cpu (
    .clk(clk), .rst_n(cpu_rst_n),
    .bus_unlock(bus_unlock), .mem_unlock(mem_unlock),
    .awvalid(g_awvalid), .awaddr(g_awaddr), .wdata(g_wdata), .bvalid(g_bvalid),
    .arvalid(g_arvalid), .araddr(g_araddr), .rdata(g_rdata), .rvalid(g_rvalid),
    .priv0(priv0), .priv1(priv1), .priv2(priv2)
  );

  axi_xbar u_xbar (
    .clk(clk), .rst_n(sys_rst_n),
    .m0_awvalid(host_awvalid), .m0_awaddr(host_awaddr), .m0_wdata(host_wdata),
    .m0_bvalid(host_bvalid), .m0_arvalid(host_arvalid), .m0_araddr(host_araddr),
    .m0_rdata(host_rdata), .m0_rvalid(host_rvalid),
    .m1_awvalid(g_awvalid), .m1_awaddr(g_awaddr), .m1_wdata(g_wdata),
    .m1_bvalid(g_bvalid), .m1_arvalid(g_arvalid), .m1_araddr(g_araddr),
    .m1_rdata(g_rdata), .m1_rvalid(g_rvalid),
    .s0_awvalid(s0_awvalid), .s0_awaddr(s0_awaddr), .s0_wdata(s0_wdata),
    .s0_bvalid(s0_bvalid), .s0_arvalid(s0_arvalid), .s0_araddr(s0_araddr),
    .s0_rdata(s0_rdata), .s0_rvalid(s0_rvalid),
    .s1_awvalid(s1_awvalid), .s1_awaddr(s1_awaddr), .s1_wdata(s1_wdata),
    .s1_bvalid(s1_bvalid), .s1_arvalid(s1_arvalid), .s1_araddr(s1_araddr),
    .s1_rdata(s1_rdata), .s1_rvalid(s1_rvalid),
    .s2_awvalid(s2_awvalid), .s2_awaddr(s2_awaddr), .s2_wdata(s2_wdata),
    .s2_bvalid(s2_bvalid), .s2_arvalid(s2_arvalid), .s2_araddr(s2_araddr),
    .s2_rdata(s2_rdata), .s2_rvalid(s2_rvalid),
    .s3_awvalid(s3_awvalid), .s3_awaddr(s3_awaddr), .s3_wdata(s3_wdata),
    .s3_bvalid(s3_bvalid), .s3_arvalid(s3_arvalid), .s3_araddr(s3_araddr),
    .s3_rdata(s3_rdata), .s3_rvalid(s3_rvalid),
    .xact_count()
  );

  mem_subsys u_mem (
    .clk(clk), .rst_n(mem_rst_n),
    .bus_unlock(bus_unlock), .mem_unlock(mem_unlock),
    .awvalid(s0_awvalid), .awaddr(s0_awaddr), .wdata(s0_wdata), .bvalid(s0_bvalid),
    .arvalid(s0_arvalid), .araddr(s0_araddr), .rdata(s0_rdata), .rvalid(s0_rvalid),
    .dma_go(dma_go), .dma_src(dma_src), .dma_dst(dma_dst), .dma_len(dma_len),
    .dma_busy(dma_busy)
  );

  crypto_subsys u_crypto (
    .clk(clk), .rst_n(crypto_rst_n), .mem_unlock(mem_unlock),
    .awvalid(s1_awvalid), .awaddr(s1_awaddr), .wdata(s1_wdata), .bvalid(s1_bvalid),
    .arvalid(s1_arvalid), .araddr(s1_araddr), .rdata(s1_rdata), .rvalid(s1_rvalid),
    .tst_key(tst_key), .tst_pt(tst_pt), .tst_start(tst_start),
    .done(crypto_done), .leak(leak_flags)
  );

  dsp_subsys u_dsp (
    .clk(clk), .rst_n(dsp_rst_n), .mem_unlock(mem_unlock),
    .awvalid(s2_awvalid), .awaddr(s2_awaddr), .wdata(s2_wdata), .bvalid(s2_bvalid),
    .arvalid(s2_arvalid), .araddr(s2_araddr), .rdata(s2_rdata), .rvalid(s2_rvalid),
    .sample_in(dsp_in), .sample_valid(dsp_valid),
    .fir_out(fir_out), .iir_out(iir_out)
  );

  periph_subsys u_periph (
    .clk(clk), .rst_n(periph_rst_n), .mem_unlock(mem_unlock),
    .awvalid(s3_awvalid), .awaddr(s3_awaddr), .wdata(s3_wdata), .bvalid(s3_bvalid),
    .arvalid(s3_arvalid), .araddr(s3_araddr), .rdata(s3_rdata), .rvalid(s3_rvalid),
    .tx_byte(tx_byte), .tx_go(tx_go),
    .uart_rx(uart_rx), .spi_miso(spi_miso),
    .eth_rx_dv(eth_rx_dv), .eth_rxd(eth_rxd),
    .uart_tx(uart_tx), .spi_sck_o(spi_sck_o), .spi_mosi_o(spi_mosi_o),
    .spi_cs_o(spi_cs_o), .eth_tx_en(eth_tx_en), .eth_txd(eth_txd)
  );
endmodule
";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bugs::variant;

    #[test]
    fn clean_auto_soc_elaborates() {
        let design = generate(None);
        let (d, _) = soccar_rtl::compile("auto.v", &design.source, &design.top)
            .unwrap_or_else(|e| panic!("{e}"));
        for inst in [
            "auto_soc.u_cpu.u_core0",
            "auto_soc.u_cpu.u_core1",
            "auto_soc.u_cpu.u_core2",
            "auto_soc.u_cpu.u_gateway",
            "auto_soc.u_xbar",
            "auto_soc.u_mem.u_dma",
            "auto_soc.u_mem.u_sram0",
            "auto_soc.u_mem.u_sram1",
            "auto_soc.u_crypto.u_aes192",
            "auto_soc.u_crypto.u_rsa",
            "auto_soc.u_dsp.u_iir",
            "auto_soc.u_periph.u_eth",
        ] {
            assert!(
                d.instances().iter().any(|i| i.name == inst),
                "missing {inst}"
            );
        }
        // AutoSoC is substantially bigger than ClusterSoC.
        let cluster = crate::cluster::generate(None);
        let (cd, _) = soccar_rtl::compile("c.v", &cluster.source, &cluster.top).expect("cluster");
        assert!(
            d.stats().reg_bits > cd.stats().reg_bits,
            "auto {} vs cluster {}",
            d.stats(),
            cd.stats()
        );
    }

    #[test]
    fn all_auto_variants_elaborate() {
        for n in 1..=2 {
            let v = variant(SocModel::AutoSoc, n).expect("variant");
            let design = generate(Some(&v));
            soccar_rtl::compile("auto.v", &design.source, &design.top)
                .unwrap_or_else(|e| panic!("variant {n}: {e}"));
        }
    }

    #[test]
    fn autosoc_v2_contains_the_implicit_construct() {
        let v = variant(SocModel::AutoSoc, 2).expect("variant");
        let design = generate(Some(&v));
        assert!(design
            .source
            .contains("Defective procedure block declaration"));
        assert!(design.source.contains("always @(negedge rst_n)"));
    }

    #[test]
    fn auto_soc_boots_and_host_reaches_memory() {
        use soccar_rtl::value::LogicVec;
        use soccar_sim::{InitPolicy, Simulator};
        let design = generate(None);
        let (d, _) = soccar_rtl::compile("auto.v", &design.source, &design.top).expect("compile");
        let mut sim = Simulator::concrete(&d, InitPolicy::Ones);
        let n = |s: &str| d.find_net(&format!("auto_soc.{s}")).expect("net");
        for net in d.top_inputs().collect::<Vec<_>>() {
            let w = d.net(net).width;
            sim.write_input(net, LogicVec::zeros(w)).expect("zero");
        }
        sim.settle().expect("settle");
        for rst in [
            "sys_rst_n",
            "cpu_rst_n",
            "mem_rst_n",
            "crypto_rst_n",
            "dsp_rst_n",
            "periph_rst_n",
        ] {
            sim.write_input(n(rst), LogicVec::from_u64(1, 1))
                .expect("rst");
        }
        // Host writes into the memory subsystem's unprotected region via
        // AXI → bridge → Wishbone → SRAM (full fabric traversal).
        sim.write_input(n("host_awvalid"), LogicVec::from_u64(1, 1))
            .expect("aw");
        sim.write_input(n("host_awaddr"), LogicVec::from_u64(32, 0x0000_0040))
            .expect("a");
        sim.write_input(n("host_wdata"), LogicVec::from_u64(32, 0xD00D))
            .expect("w");
        sim.settle().expect("settle");
        let clk = n("clk");
        let mut acked = false;
        for _ in 0..10 {
            sim.tick(clk).expect("tick");
            if sim.net_logic(n("host_bvalid")).to_u64() == Some(1) {
                acked = true;
                break;
            }
        }
        assert!(acked, "host write must complete through the hierarchy");
        let mem = d.find_memory("auto_soc.u_mem.u_sram0.mem").expect("mem");
        assert_eq!(sim.mem_logic(mem, 0x10).to_u64(), Some(0xD00D));
    }
}
