//! **Table III** — Summary of security bugs.

use soccar_bench::render_table;
use soccar_soc::ViolationType;

fn main() {
    let rows: Vec<Vec<String>> = [
        ViolationType::InformationLeakage,
        ViolationType::DataIntegrity,
        ViolationType::PrivilegeMode,
    ]
    .into_iter()
    .map(|v| {
        vec![
            v.to_string(),
            v.trigger().to_owned(),
            v.payload().to_owned(),
            v.impact().to_owned(),
        ]
    })
    .collect();
    println!("Table III — Summary of security bugs");
    println!(
        "{}",
        render_table(
            &["Violation Type", "Trigger Condition", "Payload", "Impact"],
            &rows
        )
    );
}
