//! The analysis daemon: a TCP server wrapping one
//! [`AnalysisSession`].
//!
//! One server holds one session — per-design caches are keyed by content
//! hash inside the session, so a single server happily serves many
//! designs. Connections are admitted through a
//! [`soccar_exec::Semaphore`] (bounded handler threads); each connection
//! may pipeline any number of requests. All analysis requests serialize
//! over the session mutex — parallelism lives *inside* the pipeline's
//! worker pool, which keeps responses byte-identical to batch runs by
//! construction. Shutdown is cooperative: a `shutdown` request is
//! acknowledged, then the acceptor drains and [`Server::run`] returns.

use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use serde::Serialize;
use soccar::cli::parse_property;
use soccar::incremental::{AnalysisSession, CacheCaps, SessionCounters};
use soccar::SoccarConfig;
use soccar_cfg::GovernorAnalysis;
use soccar_concolic::{ConcolicConfig, SecurityProperty};
use soccar_exec::Semaphore;
use soccar_lint::{LintConfig, Linter, Severity};

use crate::proto::{read_frame, write_frame, Envelope, Request};

/// Server construction knobs.
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Bind address (`host:port`; port 0 picks an ephemeral port).
    pub listen: String,
    /// Concurrent connections admitted (further accepts queue).
    pub max_connections: usize,
    /// Worker threads for each request's parallel stages (0 = resolve
    /// via `SOCCAR_JOBS`, then available cores). Reports are identical
    /// for every value.
    pub jobs: usize,
    /// Cache capacities for the underlying session.
    pub caps: CacheCaps,
}

impl Default for ServerOptions {
    fn default() -> ServerOptions {
        ServerOptions {
            listen: "127.0.0.1:0".to_owned(),
            max_connections: 4,
            jobs: 0,
            caps: CacheCaps::default(),
        }
    }
}

/// The `status` response body.
#[derive(Debug, Clone, Serialize)]
pub struct StatusBody {
    /// Milliseconds since the server started.
    pub uptime_ms: u64,
    /// The server's worker-thread setting (0 = auto).
    pub jobs: usize,
    /// Session-lifetime cache counters.
    pub counters: SessionCounters,
    /// Entries currently held per cache tier.
    pub tiers: TierSizes,
}

/// Current entry counts of the session's cache tiers.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct TierSizes {
    /// Per-module ASTs.
    pub parse: usize,
    /// Per-module AR_CFGs.
    pub extract: usize,
    /// Elaborated + composed designs.
    pub design: usize,
    /// Concolic reports.
    pub concolic: usize,
    /// Full analysis reports.
    pub report: usize,
}

/// Resolves an analyze/lint request into concrete pipeline inputs:
/// `(file_name, source, top, properties, config)`. Catalog SoC requests
/// (`clustersoc`, `autosoc`, or a generated `gen:<seed>:<scale>`) pick
/// up their catalog properties and symbolic inputs, exactly like
/// `soccar analyze --soc`; defaults (cycles 24, rounds 12, unlimited
/// budget) match the CLI so responses are byte-identical to batch runs.
///
/// # Errors
///
/// On an unknown SoC model, a bad property spec, or a missing top.
pub fn resolve_request(
    req: &Request,
) -> Result<(String, String, String, Vec<SecurityProperty>, SoccarConfig), String> {
    let (file_name, source, top, mut properties, mut symbolic) = if req.soc.is_empty() {
        if req.top.is_empty() {
            return Err("analyze request needs `top` (or `soc`)".to_owned());
        }
        let name = if req.file_name.is_empty() {
            "request.v".to_owned()
        } else {
            req.file_name.clone()
        };
        (
            name,
            req.source.clone(),
            req.top.clone(),
            Vec::new(),
            Vec::new(),
        )
    } else {
        let soc = soccar_soc::catalog::resolve(&req.soc, req.variant)?;
        let props: Vec<SecurityProperty> = soc.checks.iter().map(soccar::property_of).collect();
        let top = if req.top.is_empty() {
            soc.top.clone()
        } else {
            req.top.clone()
        };
        (soc.file_name, soc.source, top, props, soc.symbolic)
    };
    for spec in &req.properties {
        properties.push(parse_property(spec)?);
    }
    symbolic.extend(req.symbolic.iter().cloned());
    let config = SoccarConfig {
        analysis: if req.refined {
            GovernorAnalysis::Refined
        } else {
            GovernorAnalysis::Explicit
        },
        concolic: ConcolicConfig {
            cycles: req.cycles.unwrap_or(24),
            max_rounds: req.rounds.unwrap_or(12) as usize,
            symbolic_inputs: symbolic,
            solver_budget: match req.solver_budget {
                Some(n) => soccar_smt::SolveBudget::conflicts(n),
                None => soccar_smt::SolveBudget::UNLIMITED,
            },
            round_deadline: req.round_deadline_ms.map(std::time::Duration::from_millis),
            incremental: soccar_concolic::incremental_default(),
            ..ConcolicConfig::default()
        },
        keep_going: req.keep_going,
        ..SoccarConfig::default()
    };
    Ok((file_name, source, top, properties, config))
}

/// The daemon (see the [module docs](self)).
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    session: Mutex<AnalysisSession>,
    recorder: soccar_obs::Recorder,
    jobs: usize,
    admission: Semaphore,
    shutdown: AtomicBool,
    started: Instant,
}

impl Server {
    /// Binds the listen socket and builds the session.
    ///
    /// # Errors
    ///
    /// Propagates socket bind failures.
    pub fn bind(options: &ServerOptions) -> std::io::Result<Server> {
        Server::bind_with_recorder(options, soccar_obs::Recorder::disabled())
    }

    /// Like [`Server::bind`], with an observability recorder: `server.*`
    /// counters and every request's pipeline spans land in it (snapshot
    /// after [`Server::run`] returns for `--trace-out`).
    ///
    /// # Errors
    ///
    /// Propagates socket bind failures.
    pub fn bind_with_recorder(
        options: &ServerOptions,
        recorder: soccar_obs::Recorder,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&options.listen)?;
        let addr = listener.local_addr()?;
        let base = SoccarConfig::default();
        let session =
            AnalysisSession::with_caps(base, options.caps).with_recorder(recorder.clone());
        Ok(Server {
            listener,
            addr,
            session: Mutex::new(session),
            recorder,
            jobs: options.jobs,
            admission: Semaphore::new(options.max_connections),
            shutdown: AtomicBool::new(false),
            started: Instant::now(),
        })
    }

    /// The bound address (useful with an ephemeral port).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The recorder the server reports into.
    #[must_use]
    pub fn recorder(&self) -> &soccar_obs::Recorder {
        &self.recorder
    }

    /// Serves until a `shutdown` request arrives, then drains and
    /// returns the total number of requests served. In-flight handler
    /// threads finish before this returns — no request is abandoned.
    ///
    /// # Errors
    ///
    /// Propagates accept-loop I/O failures.
    pub fn run(&self) -> std::io::Result<u64> {
        std::thread::scope(|scope| loop {
            let (stream, _) = self.listener.accept()?;
            if self.shutdown.load(Ordering::Acquire) {
                break std::io::Result::Ok(());
            }
            // Admission control: bounding here (not in the handler)
            // bounds the thread count, not just the work in flight.
            let permit = self.admission.acquire();
            self.recorder.counter_add("server.connections", 1);
            scope.spawn(move || {
                let _permit = permit;
                // A broken connection only loses that client.
                let _ = self.handle(stream);
            });
        })?;
        Ok(self
            .session
            .lock()
            .map(|s| s.counters().requests)
            .unwrap_or(0))
    }

    /// Requests shutdown from outside a connection (used by tests and
    /// signal handling). The acceptor wakes on the next connection; pair
    /// with a dummy connect if none is expected.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
    }

    fn handle(&self, stream: TcpStream) -> std::io::Result<()> {
        stream.set_nodelay(true).ok();
        let mut reader = BufReader::new(stream.try_clone()?);
        let mut writer = BufWriter::new(stream);
        while let Some(frame) = read_frame(&mut reader)? {
            let (envelope, body, stop) = match std::str::from_utf8(&frame) {
                Err(_) => (
                    Envelope::error("request frame is not utf-8"),
                    Vec::new(),
                    false,
                ),
                Ok(text) => match Request::from_json(text) {
                    Err(e) => (Envelope::error(&e), Vec::new(), false),
                    Ok(req) => self.dispatch(&req),
                },
            };
            let envelope_json = envelope
                .to_json()
                .unwrap_or_else(|e| format!("{{\"ok\":false,\"error\":\"{e}\"}}"));
            write_frame(&mut writer, envelope_json.as_bytes())?;
            write_frame(&mut writer, &body)?;
            if stop {
                // Acknowledge first, then wake the acceptor so `run`
                // observes the flag and drains.
                self.request_shutdown();
                let _ = TcpStream::connect(self.addr);
                break;
            }
        }
        Ok(())
    }

    /// Serves one request: `(envelope, body, shutdown?)`.
    fn dispatch(&self, req: &Request) -> (Envelope, Vec<u8>, bool) {
        match req.cmd.as_str() {
            "analyze" => {
                let (envelope, body) = self.dispatch_analyze(req);
                (envelope, body, false)
            }
            "lint" => {
                let (envelope, body) = self.dispatch_lint(req);
                (envelope, body, false)
            }
            "status" => {
                let (envelope, body) = self.dispatch_status();
                (envelope, body, false)
            }
            "shutdown" => (Envelope::ok("shutdown"), Vec::new(), true),
            other => (
                Envelope::error(&format!("unknown command `{other}`")),
                Vec::new(),
                false,
            ),
        }
    }

    fn dispatch_analyze(&self, req: &Request) -> (Envelope, Vec<u8>) {
        let (file_name, source, top, properties, mut config) = match resolve_request(req) {
            Ok(resolved) => resolved,
            Err(e) => return (Envelope::error(&e), Vec::new()),
        };
        config.jobs = self.jobs;
        let outcome = {
            let mut session = match self.session.lock() {
                Ok(guard) => guard,
                Err(_) => {
                    return (
                        Envelope::error("analysis session poisoned by an earlier panic"),
                        Vec::new(),
                    )
                }
            };
            session.analyze_with_config(&file_name, &source, &top, properties, &config)
        };
        match outcome {
            Err(e) => (Envelope::error(&e.to_string()), Vec::new()),
            Ok((report, stats)) => {
                let body = match report.canonical_json() {
                    Ok(json) => json.into_bytes(),
                    Err(e) => return (Envelope::error(&e.to_string()), Vec::new()),
                };
                let health = report.health();
                let mut envelope = Envelope::ok("analyze");
                envelope.health = if health.is_degraded() {
                    "degraded"
                } else {
                    "ok"
                }
                .to_owned();
                envelope.degraded_reasons = health.reasons().to_vec();
                envelope.violations = report.violations().len() as u64;
                envelope.stats = Some(stats);
                (envelope, body)
            }
        }
    }

    fn dispatch_lint(&self, req: &Request) -> (Envelope, Vec<u8>) {
        self.recorder.counter_add("server.requests", 1);
        let (file_name, source) = if req.soc.is_empty() {
            let name = if req.file_name.is_empty() {
                "request.v".to_owned()
            } else {
                req.file_name.clone()
            };
            (name, req.source.clone())
        } else {
            match resolve_request(req) {
                Ok((name, source, _, _, _)) => (name, source),
                Err(e) => return (Envelope::error(&e), Vec::new()),
            }
        };
        let lint_config = LintConfig {
            allow: req.allow.clone(),
            deny: req.deny.clone(),
        };
        let linter = Linter::new().with_config(lint_config);
        for id in req.allow.iter().chain(&req.deny) {
            if !linter.is_known_rule(id) {
                return (Envelope::error(&format!("unknown rule `{id}`")), Vec::new());
            }
        }
        match linter.lint_source(&file_name, &source) {
            Err(e) => (Envelope::error(&e), Vec::new()),
            Ok(report) => {
                let body = match soccar::json::to_json_pretty(&report) {
                    Ok(json) => json.into_bytes(),
                    Err(e) => return (Envelope::error(&e.to_string()), Vec::new()),
                };
                let mut envelope = Envelope::ok("lint");
                envelope.violations = report
                    .diagnostics
                    .iter()
                    .filter(|d| d.severity == Severity::Error)
                    .count() as u64;
                (envelope, body)
            }
        }
    }

    fn dispatch_status(&self) -> (Envelope, Vec<u8>) {
        self.recorder.counter_add("server.requests", 1);
        let session = match self.session.lock() {
            Ok(guard) => guard,
            Err(_) => {
                return (
                    Envelope::error("analysis session poisoned by an earlier panic"),
                    Vec::new(),
                )
            }
        };
        let (parse, extract, design, concolic, report) = session.tier_sizes();
        let body = StatusBody {
            uptime_ms: self.started.elapsed().as_millis() as u64,
            jobs: self.jobs,
            counters: *session.counters(),
            tiers: TierSizes {
                parse,
                extract,
                design,
                concolic,
                report,
            },
        };
        match soccar::json::to_json_pretty(&body) {
            Err(e) => (Envelope::error(&e.to_string()), Vec::new()),
            Ok(json) => (Envelope::ok("status"), json.into_bytes()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_request_mirrors_cli_defaults() {
        let mut req = Request::new("analyze");
        req.source = "module top(input clk); endmodule".into();
        req.top = "top".into();
        let (name, _, top, props, config) = resolve_request(&req).expect("resolve");
        assert_eq!(name, "request.v");
        assert_eq!(top, "top");
        assert!(props.is_empty());
        assert_eq!(config.concolic.cycles, 24);
        assert_eq!(config.concolic.max_rounds, 12);
        assert!(config.concolic.solver_budget.is_unlimited());
        assert_eq!(config.analysis, GovernorAnalysis::Explicit);
    }

    #[test]
    fn resolve_request_loads_bundled_soc_catalogs() {
        let mut req = Request::new("analyze");
        req.soc = "clustersoc".into();
        let (name, source, top, props, config) = resolve_request(&req).expect("resolve");
        assert_eq!(name, "clustersoc.v");
        assert!(!source.is_empty());
        assert!(!top.is_empty());
        assert!(!props.is_empty(), "catalog properties pre-loaded");
        assert!(!config.concolic.symbolic_inputs.is_empty());
        req.soc = "toastersoc".into();
        assert!(resolve_request(&req).is_err());
    }

    #[test]
    fn resolve_request_loads_generated_designs() {
        let mut req = Request::new("analyze");
        req.soc = "gen:7:2".into();
        let (name, source, top, props, config) = resolve_request(&req).expect("resolve");
        assert_eq!(name, "gen_7_2.v");
        assert_eq!(top, "gen_soc");
        assert!(source.contains("module gen_soc"));
        assert!(!props.is_empty(), "generated checks pre-loaded");
        assert!(!config.concolic.symbolic_inputs.is_empty());
        // Generated designs draw bugs from the seed, never from --variant.
        req.variant = Some(1);
        assert!(resolve_request(&req).is_err());
    }

    #[test]
    fn resolve_request_applies_qos_knobs() {
        let mut req = Request::new("analyze");
        req.source = "module top(input clk); endmodule".into();
        req.top = "top".into();
        req.refined = true;
        req.cycles = Some(8);
        req.rounds = Some(2);
        req.solver_budget = Some(50);
        req.keep_going = true;
        req.round_deadline_ms = Some(1000);
        let (_, _, _, _, config) = resolve_request(&req).expect("resolve");
        assert_eq!(config.analysis, GovernorAnalysis::Refined);
        assert_eq!(config.concolic.cycles, 8);
        assert_eq!(config.concolic.max_rounds, 2);
        assert_eq!(
            config.concolic.solver_budget,
            soccar_smt::SolveBudget::conflicts(50)
        );
        assert!(config.keep_going);
        assert_eq!(
            config.concolic.round_deadline,
            Some(std::time::Duration::from_millis(1000))
        );
    }

    #[test]
    fn missing_top_is_rejected() {
        let mut req = Request::new("analyze");
        req.source = "module top(input clk); endmodule".into();
        assert!(resolve_request(&req).is_err());
    }
}
