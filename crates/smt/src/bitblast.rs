//! Tseitin bit-blasting of the term graph into CNF.
//!
//! Every term maps to a vector of SAT literals (LSB first). Word-level
//! operators are expanded into standard gate-level circuits: ripple-carry
//! adders, shift-add multipliers, borrow-chain comparators, logarithmic
//! barrel shifters and an unrolled restoring divider. The blaster caches
//! per-term literal vectors, so shared subterms are encoded once.

use std::collections::HashMap;

use crate::sat::{Lit, SatSolver};
use crate::term::{Term, TermGraph, TermId};

/// Bit-blasts terms into a [`SatSolver`].
#[derive(Debug, Clone)]
pub struct BitBlaster {
    /// The solver receiving clauses.
    pub solver: SatSolver,
    cache: HashMap<TermId, Vec<Lit>>,
    true_lit: Lit,
    cache_hits: u64,
}

impl BitBlaster {
    /// Creates a blaster with a fresh solver (and the constant-true
    /// variable pinned).
    #[must_use]
    pub fn new() -> BitBlaster {
        let mut solver = SatSolver::new();
        let t = solver.new_var();
        solver.freeze_var(t);
        solver.add_clause(&[Lit::pos(t)]);
        BitBlaster {
            solver,
            cache: HashMap::new(),
            true_lit: Lit::pos(t),
            cache_hits: 0,
        }
    }

    /// How often [`BitBlaster::blast`] was answered from the term cache
    /// (shared subterms and repeated blasts encoded zero new clauses).
    #[must_use]
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits
    }

    /// The always-true literal.
    #[must_use]
    pub fn tru(&self) -> Lit {
        self.true_lit
    }

    /// The always-false literal.
    #[must_use]
    pub fn fls(&self) -> Lit {
        self.true_lit.negate()
    }

    /// Asserts that the 1-bit term `t` is true.
    ///
    /// # Panics
    ///
    /// Panics if `t` is not 1 bit wide.
    pub fn assert_true(&mut self, g: &TermGraph, t: TermId) {
        assert_eq!(g.width(t), 1, "assertions must be 1-bit terms");
        let bits = self.blast(g, t);
        self.solver.add_clause(&[bits[0]]);
    }

    /// Returns the literal vector (LSB first) encoding `id`.
    pub fn blast(&mut self, g: &TermGraph, id: TermId) -> Vec<Lit> {
        if let Some(bits) = self.cache.get(&id) {
            self.cache_hits += 1;
            return bits.clone();
        }
        let w = g.width(id) as usize;
        let bits: Vec<Lit> = match g.term(id) {
            Term::Var(_) => (0..w).map(|_| Lit::pos(self.solver.new_var())).collect(),
            Term::Const(c) => c
                .iter_bits()
                .map(|b| if b { self.tru() } else { self.fls() })
                .collect(),
            Term::Not(a) => {
                let a = self.blast(g, *a);
                a.into_iter().map(Lit::negate).collect()
            }
            Term::And(a, b) => {
                let (a, b) = (self.blast(g, *a), self.blast(g, *b));
                a.iter()
                    .zip(&b)
                    .map(|(x, y)| self.and_gate(*x, *y))
                    .collect()
            }
            Term::Or(a, b) => {
                let (a, b) = (self.blast(g, *a), self.blast(g, *b));
                a.iter()
                    .zip(&b)
                    .map(|(x, y)| self.or_gate(*x, *y))
                    .collect()
            }
            Term::Xor(a, b) => {
                let (a, b) = (self.blast(g, *a), self.blast(g, *b));
                a.iter()
                    .zip(&b)
                    .map(|(x, y)| self.xor_gate(*x, *y))
                    .collect()
            }
            Term::Add(a, b) => {
                let (a, b) = (self.blast(g, *a), self.blast(g, *b));
                self.adder(&a, &b, self.fls()).0
            }
            Term::Sub(a, b) => {
                let (a, b) = (self.blast(g, *a), self.blast(g, *b));
                let nb: Vec<Lit> = b.into_iter().map(Lit::negate).collect();
                self.adder(&a, &nb, self.tru()).0
            }
            Term::Mul(a, b) => {
                let (a, b) = (self.blast(g, *a), self.blast(g, *b));
                self.multiplier(&a, &b)
            }
            Term::Udiv(a, b) => {
                let (a, b) = (self.blast(g, *a), self.blast(g, *b));
                self.divider(&a, &b).0
            }
            Term::Urem(a, b) => {
                let (a, b) = (self.blast(g, *a), self.blast(g, *b));
                self.divider(&a, &b).1
            }
            Term::Shl(a, b) => {
                let (a, b) = (self.blast(g, *a), self.blast(g, *b));
                self.shifter(&a, &b, ShiftKind::Left)
            }
            Term::Lshr(a, b) => {
                let (a, b) = (self.blast(g, *a), self.blast(g, *b));
                self.shifter(&a, &b, ShiftKind::LogicalRight)
            }
            Term::Ashr(a, b) => {
                let (a, b) = (self.blast(g, *a), self.blast(g, *b));
                self.shifter(&a, &b, ShiftKind::ArithRight)
            }
            Term::Eq(a, b) => {
                let (a, b) = (self.blast(g, *a), self.blast(g, *b));
                vec![self.equality(&a, &b)]
            }
            Term::Ult(a, b) => {
                let (a, b) = (self.blast(g, *a), self.blast(g, *b));
                vec![self.less_than(&a, &b, false)]
            }
            Term::Ule(a, b) => {
                let (a, b) = (self.blast(g, *a), self.blast(g, *b));
                vec![self.less_than(&a, &b, true)]
            }
            Term::Ite(c, t, e) => {
                let c = self.blast(g, *c)[0];
                let (t, e) = (self.blast(g, *t), self.blast(g, *e));
                t.iter()
                    .zip(&e)
                    .map(|(x, y)| self.mux_gate(c, *x, *y))
                    .collect()
            }
            Term::Concat(hi, lo) => {
                let (hi, lo) = (self.blast(g, *hi), self.blast(g, *lo));
                let mut bits = lo;
                bits.extend(hi);
                bits
            }
            Term::Extract { hi, lo, arg } => {
                let a = self.blast(g, *arg);
                a[*lo as usize..=*hi as usize].to_vec()
            }
            Term::ZExt { width, arg } => {
                let mut a = self.blast(g, *arg);
                a.resize(*width as usize, self.fls());
                a
            }
            Term::RedAnd(a) => {
                let a = self.blast(g, *a);
                vec![self.big_and(&a)]
            }
            Term::RedOr(a) => {
                let a = self.blast(g, *a);
                let nots: Vec<Lit> = a.into_iter().map(Lit::negate).collect();
                let all_zero = self.big_and(&nots);
                vec![all_zero.negate()]
            }
            Term::RedXor(a) => {
                let a = self.blast(g, *a);
                let mut acc = self.fls();
                for l in a {
                    acc = self.xor_gate(acc, l);
                }
                vec![acc]
            }
        };
        debug_assert_eq!(bits.len(), w);
        // Cached bit vectors are the solver's external surface: the
        // word-level layer builds assumptions from them and reads them
        // back as models, so their vars must never be eliminated by
        // inprocessing. Internal gate vars (carries, partial products,
        // comparator intermediates from `fresh`) stay unfrozen — they
        // are exactly the population bounded variable elimination is
        // allowed to resolve away.
        for l in &bits {
            self.solver.freeze_var(l.var());
        }
        self.cache.insert(id, bits.clone());
        bits
    }

    /// Extracts the model value of `id` (must be blasted) after SAT.
    #[must_use]
    pub fn model_bits(&self, id: TermId) -> Option<Vec<bool>> {
        let bits = self.cache.get(&id)?;
        bits.iter()
            .map(|l| {
                // Unassigned variables (unconstrained bits) default false.
                let v = self.solver.value(l.var()).unwrap_or(false);
                Some(v == l.is_pos())
            })
            .collect()
    }

    fn fresh(&mut self) -> Lit {
        Lit::pos(self.solver.new_var())
    }

    fn and_gate(&mut self, a: Lit, b: Lit) -> Lit {
        if a == self.fls() || b == self.fls() {
            return self.fls();
        }
        if a == self.tru() {
            return b;
        }
        if b == self.tru() {
            return a;
        }
        if a == b {
            return a;
        }
        if a == b.negate() {
            return self.fls();
        }
        let c = self.fresh();
        self.solver.add_clause(&[c.negate(), a]);
        self.solver.add_clause(&[c.negate(), b]);
        self.solver.add_clause(&[c, a.negate(), b.negate()]);
        c
    }

    fn or_gate(&mut self, a: Lit, b: Lit) -> Lit {
        self.and_gate(a.negate(), b.negate()).negate()
    }

    fn xor_gate(&mut self, a: Lit, b: Lit) -> Lit {
        if a == self.fls() {
            return b;
        }
        if b == self.fls() {
            return a;
        }
        if a == self.tru() {
            return b.negate();
        }
        if b == self.tru() {
            return a.negate();
        }
        if a == b {
            return self.fls();
        }
        if a == b.negate() {
            return self.tru();
        }
        let c = self.fresh();
        self.solver.add_clause(&[c.negate(), a, b]);
        self.solver
            .add_clause(&[c.negate(), a.negate(), b.negate()]);
        self.solver.add_clause(&[c, a, b.negate()]);
        self.solver.add_clause(&[c, a.negate(), b]);
        c
    }

    fn mux_gate(&mut self, s: Lit, t: Lit, e: Lit) -> Lit {
        if s == self.tru() {
            return t;
        }
        if s == self.fls() {
            return e;
        }
        if t == e {
            return t;
        }
        let c = self.fresh();
        self.solver.add_clause(&[c.negate(), s.negate(), t]);
        self.solver.add_clause(&[c, s.negate(), t.negate()]);
        self.solver.add_clause(&[c.negate(), s, e]);
        self.solver.add_clause(&[c, s, e.negate()]);
        c
    }

    fn full_adder(&mut self, a: Lit, b: Lit, cin: Lit) -> (Lit, Lit) {
        let axb = self.xor_gate(a, b);
        let sum = self.xor_gate(axb, cin);
        let ab = self.and_gate(a, b);
        let cx = self.and_gate(axb, cin);
        let cout = self.or_gate(ab, cx);
        (sum, cout)
    }

    fn adder(&mut self, a: &[Lit], b: &[Lit], cin: Lit) -> (Vec<Lit>, Lit) {
        let mut out = Vec::with_capacity(a.len());
        let mut carry = cin;
        for (x, y) in a.iter().zip(b) {
            let (s, c) = self.full_adder(*x, *y, carry);
            out.push(s);
            carry = c;
        }
        (out, carry)
    }

    fn multiplier(&mut self, a: &[Lit], b: &[Lit]) -> Vec<Lit> {
        let w = a.len();
        let mut acc: Vec<Lit> = vec![self.fls(); w];
        for (i, bi) in b.iter().enumerate() {
            // Partial product: (a << i) & b_i, truncated to w bits.
            let mut pp: Vec<Lit> = vec![self.fls(); w];
            for j in 0..w - i {
                pp[i + j] = self.and_gate(a[j], *bi);
            }
            acc = self.adder(&acc, &pp, self.fls()).0;
        }
        acc
    }

    /// Unrolled restoring division; matches [`crate::bv::BvVal::udivrem`]
    /// including the zero-divisor fixed point.
    fn divider(&mut self, a: &[Lit], b: &[Lit]) -> (Vec<Lit>, Vec<Lit>) {
        let w = a.len();
        let mut quo = vec![self.fls(); w];
        let mut rem: Vec<Lit> = vec![self.fls(); w];
        for i in (0..w).rev() {
            // rem = (rem << 1) | a[i]
            rem.rotate_right(1);
            rem[0] = a[i];
            // ge = rem >= b  ⇔ ¬(rem < b)
            let lt = self.less_than(&rem, b, false);
            let ge = lt.negate();
            // diff = rem - b
            let nb: Vec<Lit> = b.iter().map(|l| l.negate()).collect();
            let (diff, _) = self.adder(&rem, &nb, self.tru());
            // rem = ge ? diff : rem
            rem = rem
                .iter()
                .zip(&diff)
                .map(|(r, d)| self.mux_gate(ge, *d, *r))
                .collect();
            quo[i] = ge;
        }
        // Zero divisor: quotient is all-ones, remainder = a (BvVal fixed
        // semantics). The restoring circuit above already yields exactly
        // that (rem - 0 keeps rem, every ge is true ... rem ends as a's
        // low bits shifted through), but only for the quotient; force the
        // remainder with a mux on b == 0 to be safe and explicit.
        let nb: Vec<Lit> = b.iter().map(|l| l.negate()).collect();
        let b_zero = self.big_and(&nb);
        let rem = rem
            .iter()
            .zip(a)
            .map(|(r, av)| self.mux_gate(b_zero, *av, *r))
            .collect();
        let quo = quo
            .iter()
            .map(|q| self.mux_gate(b_zero, self.true_lit, *q))
            .collect();
        (quo, rem)
    }

    fn shifter(&mut self, a: &[Lit], amount: &[Lit], kind: ShiftKind) -> Vec<Lit> {
        let w = a.len();
        let fill = match kind {
            ShiftKind::Left | ShiftKind::LogicalRight => self.fls(),
            ShiftKind::ArithRight => a[w - 1],
        };
        let mut cur: Vec<Lit> = a.to_vec();
        // Logarithmic barrel shifter over the meaningful amount bits.
        let meaningful = (usize::BITS - (w - 1).leading_zeros()).max(1) as usize;
        for (stage, s) in amount.iter().enumerate().take(meaningful) {
            let dist = 1usize << stage;
            let shifted: Vec<Lit> = (0..w)
                .map(|i| match kind {
                    ShiftKind::Left => {
                        if i >= dist {
                            cur[i - dist]
                        } else {
                            fill
                        }
                    }
                    ShiftKind::LogicalRight | ShiftKind::ArithRight => {
                        if i + dist < w {
                            cur[i + dist]
                        } else {
                            fill
                        }
                    }
                })
                .collect();
            cur = cur
                .iter()
                .zip(&shifted)
                .map(|(keep, shift)| self.mux_gate(*s, *shift, *keep))
                .collect();
        }
        // Any higher amount bit set → fully shifted out.
        if amount.len() > meaningful {
            let high = &amount[meaningful..];
            let nots: Vec<Lit> = high.iter().map(|l| l.negate()).collect();
            let none_high = self.big_and(&nots);
            cur = cur
                .into_iter()
                .map(|bit| self.mux_gate(none_high, bit, fill))
                .collect();
        }
        cur
    }

    fn equality(&mut self, a: &[Lit], b: &[Lit]) -> Lit {
        let xnors: Vec<Lit> = a
            .iter()
            .zip(b)
            .map(|(x, y)| self.xor_gate(*x, *y).negate())
            .collect();
        self.big_and(&xnors)
    }

    /// `a < b` (or `a <= b` when `or_equal`) via a borrow chain.
    fn less_than(&mut self, a: &[Lit], b: &[Lit], or_equal: bool) -> Lit {
        let mut lt = if or_equal { self.tru() } else { self.fls() };
        for (x, y) in a.iter().zip(b) {
            // lt_i = (¬x ∧ y) ∨ ((x ≡ y) ∧ lt_{i-1})
            let nx_and_y = self.and_gate(x.negate(), *y);
            let eq = self.xor_gate(*x, *y).negate();
            let keep = self.and_gate(eq, lt);
            lt = self.or_gate(nx_and_y, keep);
        }
        lt
    }

    fn big_and(&mut self, lits: &[Lit]) -> Lit {
        let mut acc = self.tru();
        for l in lits {
            acc = self.and_gate(acc, *l);
        }
        acc
    }
}

impl Default for BitBlaster {
    fn default() -> BitBlaster {
        BitBlaster::new()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ShiftKind {
    Left,
    LogicalRight,
    ArithRight,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bv::BvVal;
    use crate::sat::SatOutcome;

    /// Blasts `t`, asserts it equals `expect`, and checks SAT/UNSAT.
    fn assert_forced(g: &mut TermGraph, t: TermId, expect: &BvVal, sat: bool) {
        let mut bb = BitBlaster::new();
        let c = g.constant(expect.clone());
        let eq = g.eq(t, c);
        bb.assert_true(g, eq);
        let out = bb.solver.solve();
        assert_eq!(out == SatOutcome::Sat, sat);
    }

    #[test]
    fn adder_circuit() {
        let mut g = TermGraph::new();
        let x = g.var("x", 8);
        let c200 = g.const_u64(8, 200);
        let sum = g.add(x, c200);
        // x + 200 == 44 (mod 256) → x == 100.
        let mut bb = BitBlaster::new();
        let c44 = g.const_u64(8, 44);
        let eq = g.eq(sum, c44);
        bb.assert_true(&g, eq);
        assert_eq!(bb.solver.solve(), SatOutcome::Sat);
        let bits = bb.model_bits(x).expect("model");
        let v = BvVal::from_bits(&bits);
        assert_eq!(v.to_u64(), Some(100));
    }

    #[test]
    fn subtraction_and_unsat() {
        let mut g = TermGraph::new();
        let x = g.var("x", 4);
        let d = g.sub(x, x);
        // x - x == 1 is unsat (folds to const 0 == 1 actually).
        assert_forced(&mut g, d, &BvVal::from_u64(4, 1), false);
    }

    #[test]
    fn multiplier_finds_factors() {
        let mut g = TermGraph::new();
        let x = g.var("x", 8);
        let y = g.var("y", 8);
        let p = g.mul(x, y);
        let mut bb = BitBlaster::new();
        let c = g.const_u64(8, 77); // 7 * 11
        let eq = g.eq(p, c);
        bb.assert_true(&g, eq);
        // Exclude trivial factorizations.
        let one = g.const_u64(8, 1);
        let x_gt_1 = g.ult(one, x);
        let y_gt_1 = g.ult(one, y);
        bb.assert_true(&g, x_gt_1);
        bb.assert_true(&g, y_gt_1);
        assert_eq!(bb.solver.solve(), SatOutcome::Sat);
        let xv = BvVal::from_bits(&bb.model_bits(x).expect("x"))
            .to_u64()
            .expect("x");
        let yv = BvVal::from_bits(&bb.model_bits(y).expect("y"))
            .to_u64()
            .expect("y");
        assert_eq!((xv * yv) & 0xFF, 77);
        assert!(xv > 1 && yv > 1);
    }

    #[test]
    fn comparison_chain() {
        let mut g = TermGraph::new();
        let x = g.var("x", 6);
        let c10 = g.const_u64(6, 10);
        let c12 = g.const_u64(6, 12);
        let lo = g.ult(c10, x);
        let hi = g.ult(x, c12);
        let both = g.and(lo, hi);
        let mut bb = BitBlaster::new();
        bb.assert_true(&g, both);
        assert_eq!(bb.solver.solve(), SatOutcome::Sat);
        let xv = BvVal::from_bits(&bb.model_bits(x).expect("x"))
            .to_u64()
            .expect("x");
        assert_eq!(xv, 11);
    }

    #[test]
    fn shifts_by_variable_amount() {
        let mut g = TermGraph::new();
        let amt = g.var("amt", 4);
        let c1 = g.const_u64(8, 1);
        let shifted = g.shl(c1, amt);
        // 1 << amt == 32 → amt == 5.
        let mut bb = BitBlaster::new();
        let c32 = g.const_u64(8, 32);
        let eq = g.eq(shifted, c32);
        bb.assert_true(&g, eq);
        assert_eq!(bb.solver.solve(), SatOutcome::Sat);
        let a = BvVal::from_bits(&bb.model_bits(amt).expect("amt"))
            .to_u64()
            .expect("amt");
        assert_eq!(a, 5);
    }

    #[test]
    fn shift_overflow_forces_zero() {
        let mut g = TermGraph::new();
        let amt = g.var("amt", 4);
        let c3 = g.const_u64(4, 3);
        let shifted = g.shl(c3, amt); // 4-bit value
        let zero = g.constant(BvVal::zeros(4));
        let is_zero = g.eq(shifted, zero);
        let mut bb = BitBlaster::new();
        bb.assert_true(&g, is_zero);
        // amt must be >= 4 (or 3, since 3<<3 = 24 & 0xF = 8 ≠ 0; 3<<2=12≠0).
        assert_eq!(bb.solver.solve(), SatOutcome::Sat);
        let a = BvVal::from_bits(&bb.model_bits(amt).expect("amt"))
            .to_u64()
            .expect("amt");
        assert!(a >= 4, "amt = {a}");
    }

    #[test]
    fn ite_and_reductions() {
        let mut g = TermGraph::new();
        let c = g.var("c", 1);
        let a = g.const_u64(4, 0b1111);
        let b = g.const_u64(4, 0b0111);
        let m = g.ite(c, a, b);
        let all = g.red_and(m);
        let mut bb = BitBlaster::new();
        bb.assert_true(&g, all);
        assert_eq!(bb.solver.solve(), SatOutcome::Sat);
        let cv = bb.model_bits(c).expect("c");
        assert!(cv[0], "condition must pick the all-ones arm");
    }

    #[test]
    fn division_circuit() {
        let mut g = TermGraph::new();
        let x = g.var("x", 8);
        let c7 = g.const_u64(8, 7);
        let q = g.udiv(x, c7);
        let r = g.urem(x, c7);
        let mut bb = BitBlaster::new();
        let cq = g.const_u64(8, 9);
        let cr = g.const_u64(8, 4);
        let eq_q = g.eq(q, cq);
        let eq_r = g.eq(r, cr);
        bb.assert_true(&g, eq_q);
        bb.assert_true(&g, eq_r);
        assert_eq!(bb.solver.solve(), SatOutcome::Sat);
        let xv = BvVal::from_bits(&bb.model_bits(x).expect("x"))
            .to_u64()
            .expect("x");
        assert_eq!(xv, 9 * 7 + 4);
    }

    #[test]
    fn concat_extract_roundtrip() {
        let mut g = TermGraph::new();
        let hi = g.var("hi", 4);
        let lo = g.var("lo", 4);
        let cat = g.concat(hi, lo);
        let back_hi = g.extract(7, 4, cat);
        let eq = {
            let c = g.const_u64(4, 0xA);
            g.eq(back_hi, c)
        };
        let lo_c = {
            let c = g.const_u64(4, 0x5);
            g.eq(lo, c)
        };
        let cat_c = {
            let c = g.const_u64(8, 0xA5);
            g.eq(cat, c)
        };
        let mut bb = BitBlaster::new();
        bb.assert_true(&g, eq);
        bb.assert_true(&g, lo_c);
        bb.assert_true(&g, cat_c);
        assert_eq!(bb.solver.solve(), SatOutcome::Sat);
    }
}
