//! Umbrella package for the SoCCAR reproduction workspace.
//!
//! This package hosts the workspace-level [examples](https://doc.rust-lang.org/cargo/reference/cargo-targets.html#examples)
//! and cross-crate integration tests. The actual functionality lives in the
//! `soccar-*` crates; start with the [`soccar`] crate's documentation.

pub use soccar;
pub use soccar_cfg;
pub use soccar_concolic;
pub use soccar_rtl;
pub use soccar_sim;
pub use soccar_smt;
pub use soccar_soc;
pub use soccar_synth;
