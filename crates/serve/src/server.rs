//! The analysis daemon: a TCP server wrapping one
//! [`AnalysisSession`].
//!
//! One server holds one session — per-design caches are keyed by content
//! hash inside the session, so a single server happily serves many
//! designs. Connections are admitted through a
//! [`soccar_exec::Semaphore`] (bounded handler threads); each connection
//! may pipeline any number of requests. All analysis requests serialize
//! over the session mutex — parallelism lives *inside* the pipeline's
//! worker pool, which keeps responses byte-identical to batch runs by
//! construction. Shutdown is cooperative: a `shutdown` request is
//! acknowledged, then the acceptor drains and [`Server::run`] returns.

use std::io::{BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use serde::Serialize;
use soccar::cli::parse_property;
use soccar::incremental::{AnalysisSession, CacheCaps, SessionCounters};
use soccar::SoccarConfig;
use soccar_cfg::GovernorAnalysis;
use soccar_concolic::{ConcolicConfig, SecurityProperty};
use soccar_exec::{FaultPlan, Semaphore};
use soccar_lint::{LintConfig, Linter, Severity};

use crate::journal::Journal;
use crate::proto::{write_frame, Envelope, Request, MAX_FRAME};

/// Server construction knobs.
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Bind address (`host:port`; port 0 picks an ephemeral port).
    pub listen: String,
    /// Concurrent connections admitted (further accepts queue briefly,
    /// then shed with a `busy` envelope).
    pub max_connections: usize,
    /// Worker threads for each request's parallel stages (0 = resolve
    /// via `SOCCAR_JOBS`, then available cores). Reports are identical
    /// for every value.
    pub jobs: usize,
    /// Cache capacities for the underlying session.
    pub caps: CacheCaps,
    /// Directory for the persistent cache journal (`None` = in-memory
    /// caches only, the pre-journal behavior).
    pub cache_dir: Option<PathBuf>,
    /// Serve-layer fault-injection plan (chaos testing; empty in
    /// production).
    pub fault_plan: FaultPlan,
    /// How long a connection may sit silent *between* frames before the
    /// server closes it (`None` = forever).
    pub idle_timeout: Option<Duration>,
    /// How long a started frame may take to arrive in full — the
    /// slow-loris guard (`None` = forever).
    pub frame_deadline: Option<Duration>,
    /// Per-connection socket write deadline (`None` = blocking writes).
    pub write_timeout: Option<Duration>,
    /// How long an arriving connection may queue for an admission
    /// permit before it is shed with a `busy` envelope.
    pub admission_wait: Duration,
    /// The `retry_after_ms` hint stamped on `busy` envelopes.
    pub retry_after_ms: u64,
}

impl Default for ServerOptions {
    fn default() -> ServerOptions {
        ServerOptions {
            listen: "127.0.0.1:0".to_owned(),
            max_connections: 4,
            jobs: 0,
            caps: CacheCaps::default(),
            cache_dir: None,
            fault_plan: FaultPlan::default(),
            idle_timeout: None,
            frame_deadline: None,
            write_timeout: None,
            admission_wait: Duration::from_millis(500),
            retry_after_ms: 100,
        }
    }
}

/// The `status` response body.
#[derive(Debug, Clone, Serialize)]
pub struct StatusBody {
    /// Milliseconds since the server started.
    pub uptime_ms: u64,
    /// The server's worker-thread setting (0 = auto).
    pub jobs: usize,
    /// Session-lifetime cache counters.
    pub counters: SessionCounters,
    /// Entries currently held per cache tier.
    pub tiers: TierSizes,
    /// Connections shed with a `busy` envelope since startup.
    pub shed: u64,
    /// Requests that arrived with `attempt > 0` (client retries).
    pub retries: u64,
    /// Persistent-journal state.
    pub journal: JournalStatus,
}

/// Persistent-journal state in the `status` body.
#[derive(Debug, Clone, Serialize)]
pub struct JournalStatus {
    /// A `--cache-dir` journal is attached.
    pub enabled: bool,
    /// Requests replayed from the journal at startup.
    pub replayed: u64,
    /// Journal records discarded at startup (corrupt/torn tail,
    /// un-replayable payloads).
    pub skipped: u64,
    /// Named degradation reasons from journal recovery (empty when the
    /// replay was clean).
    pub degraded: Vec<String>,
}

/// Current entry counts of the session's cache tiers.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct TierSizes {
    /// Per-module ASTs.
    pub parse: usize,
    /// Per-module AR_CFGs.
    pub extract: usize,
    /// Elaborated + composed designs.
    pub design: usize,
    /// Concolic reports.
    pub concolic: usize,
    /// Full analysis reports.
    pub report: usize,
}

/// Resolves an analyze/lint request into concrete pipeline inputs:
/// `(file_name, source, top, properties, config)`. Catalog SoC requests
/// (`clustersoc`, `autosoc`, or a generated `gen:<seed>:<scale>`) pick
/// up their catalog properties and symbolic inputs, exactly like
/// `soccar analyze --soc`; defaults (cycles 24, rounds 12, unlimited
/// budget) match the CLI so responses are byte-identical to batch runs.
///
/// # Errors
///
/// On an unknown SoC model, a bad property spec, or a missing top.
pub fn resolve_request(
    req: &Request,
) -> Result<(String, String, String, Vec<SecurityProperty>, SoccarConfig), String> {
    let (file_name, source, top, mut properties, mut symbolic) = if req.soc.is_empty() {
        if req.top.is_empty() {
            return Err("analyze request needs `top` (or `soc`)".to_owned());
        }
        let name = if req.file_name.is_empty() {
            "request.v".to_owned()
        } else {
            req.file_name.clone()
        };
        (
            name,
            req.source.clone(),
            req.top.clone(),
            Vec::new(),
            Vec::new(),
        )
    } else {
        let soc = soccar_soc::catalog::resolve(&req.soc, req.variant)?;
        let props: Vec<SecurityProperty> = soc.checks.iter().map(soccar::property_of).collect();
        let top = if req.top.is_empty() {
            soc.top.clone()
        } else {
            req.top.clone()
        };
        (soc.file_name, soc.source, top, props, soc.symbolic)
    };
    for spec in &req.properties {
        properties.push(parse_property(spec)?);
    }
    symbolic.extend(req.symbolic.iter().cloned());
    let config = SoccarConfig {
        analysis: if req.refined {
            GovernorAnalysis::Refined
        } else {
            GovernorAnalysis::Explicit
        },
        concolic: ConcolicConfig {
            cycles: req.cycles.unwrap_or(24),
            max_rounds: req.rounds.unwrap_or(12) as usize,
            symbolic_inputs: symbolic,
            solver_budget: match req.solver_budget {
                Some(n) => soccar_smt::SolveBudget::conflicts(n),
                None => soccar_smt::SolveBudget::UNLIMITED,
            },
            round_deadline: req.round_deadline_ms.map(std::time::Duration::from_millis),
            incremental: soccar_concolic::incremental_default(),
            ..ConcolicConfig::default()
        },
        keep_going: req.keep_going,
        ..SoccarConfig::default()
    };
    Ok((file_name, source, top, properties, config))
}

/// The daemon (see the [module docs](self)).
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    session: Mutex<AnalysisSession>,
    recorder: soccar_obs::Recorder,
    jobs: usize,
    admission: Semaphore,
    shutdown: AtomicBool,
    started: Instant,
    journal: Option<Mutex<Journal>>,
    journal_replayed: u64,
    journal_skipped: u64,
    journal_degraded: Vec<String>,
    fault_plan: FaultPlan,
    idle_timeout: Option<Duration>,
    frame_deadline: Option<Duration>,
    write_timeout: Option<Duration>,
    admission_wait: Duration,
    retry_after_ms: u64,
    shed: AtomicU64,
    retries: AtomicU64,
    // Serve-layer fault-point sequences (serial per server): admission
    // attempts, responses about to be written, frames written. They are
    // *indices for fault plans*, not metrics — metrics live in the
    // recorder and `StatusBody`.
    admission_seq: AtomicU64,
    response_seq: AtomicU64,
    frame_seq: AtomicU64,
}

impl Server {
    /// Binds the listen socket and builds the session.
    ///
    /// # Errors
    ///
    /// Propagates socket bind failures.
    pub fn bind(options: &ServerOptions) -> std::io::Result<Server> {
        Server::bind_with_recorder(options, soccar_obs::Recorder::disabled())
    }

    /// Like [`Server::bind`], with an observability recorder: `server.*`
    /// counters and every request's pipeline spans land in it (snapshot
    /// after [`Server::run`] returns for `--trace-out`).
    ///
    /// With a `cache_dir`, the persistent journal is opened and
    /// **replayed before the first accept**: each journaled request
    /// re-executes through the fresh session, rebuilding every cache
    /// tier, so the first warm client request after a crash-restart is
    /// served from cache exactly as it would have been pre-crash.
    /// Corrupt journal tails degrade (named reasons in `status` and in
    /// `server.journal_skipped`) — they never fail startup.
    ///
    /// # Errors
    ///
    /// Propagates socket bind failures and journal *environment*
    /// failures (unreadable directory, foreign file format).
    pub fn bind_with_recorder(
        options: &ServerOptions,
        recorder: soccar_obs::Recorder,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&options.listen)?;
        let addr = listener.local_addr()?;
        let base = SoccarConfig::default();
        let mut session =
            AnalysisSession::with_caps(base, options.caps).with_recorder(recorder.clone());

        let mut journal = None;
        let mut journal_replayed = 0u64;
        let mut journal_skipped = 0u64;
        let mut journal_degraded = Vec::new();
        if let Some(dir) = &options.cache_dir {
            let (handle, replay) = Journal::open(dir, &options.fault_plan)?;
            journal_skipped = replay.skipped;
            journal_degraded.extend(replay.degraded);
            for payload in &replay.records {
                match replay_request(&mut session, payload, options.jobs) {
                    Ok(()) => journal_replayed += 1,
                    Err(e) => {
                        // A record this build cannot re-execute (e.g. a
                        // property grammar that moved on) costs cache
                        // warmth, never availability.
                        journal_skipped += 1;
                        journal_degraded.push(format!("journal: replay failed: {e}"));
                    }
                }
            }
            recorder.counter_add("server.journal_replayed", journal_replayed);
            recorder.counter_add("server.journal_skipped", journal_skipped);
            journal = Some(Mutex::new(handle));
        }

        Ok(Server {
            listener,
            addr,
            session: Mutex::new(session),
            recorder,
            jobs: options.jobs,
            admission: Semaphore::new(options.max_connections),
            shutdown: AtomicBool::new(false),
            started: Instant::now(),
            journal,
            journal_replayed,
            journal_skipped,
            journal_degraded,
            fault_plan: options.fault_plan.clone(),
            idle_timeout: options.idle_timeout,
            frame_deadline: options.frame_deadline,
            write_timeout: options.write_timeout,
            admission_wait: options.admission_wait,
            retry_after_ms: options.retry_after_ms,
            shed: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            admission_seq: AtomicU64::new(0),
            response_seq: AtomicU64::new(0),
            frame_seq: AtomicU64::new(0),
        })
    }

    /// Named degradation reasons from journal recovery (empty when the
    /// journal replayed cleanly or is disabled).
    #[must_use]
    pub fn journal_degraded(&self) -> &[String] {
        &self.journal_degraded
    }

    /// The bound address (useful with an ephemeral port).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The recorder the server reports into.
    #[must_use]
    pub fn recorder(&self) -> &soccar_obs::Recorder {
        &self.recorder
    }

    /// Serves until a `shutdown` request arrives, then drains and
    /// returns the total number of requests served. In-flight handler
    /// threads finish before this returns — no request is abandoned.
    /// Connections that cannot get an admission permit within the
    /// configured wait are **shed** with a structured `busy` envelope
    /// instead of queueing unboundedly.
    ///
    /// # Errors
    ///
    /// Propagates accept-loop I/O failures.
    pub fn run(&self) -> std::io::Result<u64> {
        std::thread::scope(|scope| loop {
            let (stream, _) = self.listener.accept()?;
            if self.shutdown.load(Ordering::Acquire) {
                break std::io::Result::Ok(());
            }
            // Admission control: bounding here (not in the handler)
            // bounds the thread count, not just the work in flight.
            let admission_idx = self.admission_seq.fetch_add(1, Ordering::Relaxed) + 1;
            let forced_shed = self
                .fault_plan
                .should_inject("shed:admission", admission_idx);
            let permit = if forced_shed {
                None
            } else {
                self.admission.acquire_timeout(self.admission_wait)
            };
            let Some(permit) = permit else {
                self.shed_connection(stream);
                continue;
            };
            self.recorder.counter_add("server.connections", 1);
            scope.spawn(move || {
                let _permit = permit;
                // A broken connection only loses that client.
                let _ = self.handle(stream);
            });
        })?;
        Ok(self
            .session
            .lock()
            .map(|s| s.counters().requests)
            .unwrap_or(0))
    }

    /// Sheds one connection: reads nothing, answers every queued byte
    /// with nothing — just a `busy` envelope + empty body, then closes.
    /// Cheap by design; the whole point is to spend no session time.
    fn shed_connection(&self, stream: TcpStream) {
        self.shed.fetch_add(1, Ordering::Relaxed);
        self.recorder.counter_add("server.shed", 1);
        stream.set_nodelay(true).ok();
        stream
            .set_write_timeout(self.write_timeout.or(SHED_WRITE_TIMEOUT))
            .ok();
        let mut writer = BufWriter::new(stream);
        let envelope = Envelope::busy(self.retry_after_ms);
        if let Ok(json) = envelope.to_json() {
            let _ = write_frame(&mut writer, json.as_bytes());
            let _ = write_frame(&mut writer, &[]);
        }
    }

    /// Requests shutdown from outside a connection (used by tests and
    /// signal handling). The acceptor wakes on the next connection; pair
    /// with a dummy connect if none is expected.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
    }

    fn handle(&self, stream: TcpStream) -> std::io::Result<()> {
        stream.set_nodelay(true).ok();
        stream.set_write_timeout(self.write_timeout)?;
        let mut reader = stream.try_clone()?;
        let mut writer = BufWriter::new(stream);
        loop {
            let frame =
                match read_frame_guarded(&mut reader, self.idle_timeout, self.frame_deadline)? {
                    GuardedRead::Frame(frame) => frame,
                    // An idle peer is closed silently — it is not waiting
                    // for a response; a mid-frame staller (slow loris) gets
                    // its socket dropped, freeing the handler permit.
                    GuardedRead::ClosedClean
                    | GuardedRead::IdleTimeout
                    | GuardedRead::SlowLoris => break,
                    GuardedRead::Oversized(len) => {
                        // Name the offending length, then close: framing
                        // cannot resynchronize past an unread payload.
                        let envelope = Envelope::error(&format!(
                            "request frame of {len} bytes exceeds the {MAX_FRAME}-byte cap"
                        ));
                        self.write_response(&mut writer, &envelope, &[])?;
                        break;
                    }
                };
            let (envelope, body, stop) = match std::str::from_utf8(&frame) {
                Err(_) => (
                    Envelope::error("request frame is not utf-8"),
                    Vec::new(),
                    false,
                ),
                Ok(text) => match Request::from_json(text) {
                    Err(e) => (Envelope::error(&e), Vec::new(), false),
                    Ok(req) => {
                        if req.attempt > 0 {
                            self.retries.fetch_add(1, Ordering::Relaxed);
                            self.recorder.counter_add("server.retries", 1);
                        }
                        self.dispatch(&req)
                    }
                },
            };
            self.write_response(&mut writer, &envelope, &body)?;
            if stop {
                // Acknowledge first, then wake the acceptor so `run`
                // observes the flag and drains.
                self.request_shutdown();
                let _ = TcpStream::connect(self.addr);
                break;
            }
        }
        Ok(())
    }

    /// Writes the two response frames, consulting the serve-layer fault
    /// points: `conn_drop:respond` (indexed by response) drops the
    /// connection before any byte; `frame_truncate:serve` (indexed by
    /// frame) cuts that frame mid-payload and aborts.
    fn write_response(
        &self,
        writer: &mut BufWriter<TcpStream>,
        envelope: &Envelope,
        body: &[u8],
    ) -> std::io::Result<()> {
        let response_idx = self.response_seq.fetch_add(1, Ordering::Relaxed) + 1;
        if self
            .fault_plan
            .should_inject("conn_drop:respond", response_idx)
        {
            return Err(std::io::Error::new(
                std::io::ErrorKind::ConnectionAborted,
                "injected conn_drop:respond",
            ));
        }
        let envelope_json = envelope
            .to_json()
            .unwrap_or_else(|e| format!("{{\"ok\":false,\"error\":\"{e}\"}}"));
        self.write_frame_faulted(writer, envelope_json.as_bytes())?;
        self.write_frame_faulted(writer, body)?;
        Ok(())
    }

    /// [`write_frame`], except the `frame_truncate:serve` fault point
    /// may cut this frame after the header plus half the payload — the
    /// torn-write shape a crashing peer or a dying NIC produces.
    fn write_frame_faulted(
        &self,
        writer: &mut BufWriter<TcpStream>,
        payload: &[u8],
    ) -> std::io::Result<()> {
        let frame_idx = self.frame_seq.fetch_add(1, Ordering::Relaxed) + 1;
        if self
            .fault_plan
            .should_inject("frame_truncate:serve", frame_idx)
        {
            let len = u32::try_from(payload.len()).unwrap_or(MAX_FRAME);
            writer.write_all(&len.to_be_bytes())?;
            writer.write_all(&payload[..payload.len() / 2])?;
            writer.flush()?;
            return Err(std::io::Error::new(
                std::io::ErrorKind::ConnectionAborted,
                "injected frame_truncate:serve",
            ));
        }
        write_frame(writer, payload)
    }

    /// Serves one request: `(envelope, body, shutdown?)`.
    fn dispatch(&self, req: &Request) -> (Envelope, Vec<u8>, bool) {
        match req.cmd.as_str() {
            "analyze" => {
                let (envelope, body) = self.dispatch_analyze(req);
                (envelope, body, false)
            }
            "lint" => {
                let (envelope, body) = self.dispatch_lint(req);
                (envelope, body, false)
            }
            "status" => {
                let (envelope, body) = self.dispatch_status();
                (envelope, body, false)
            }
            "shutdown" => (Envelope::ok("shutdown"), Vec::new(), true),
            other => (
                Envelope::error(&format!("unknown command `{other}`")),
                Vec::new(),
                false,
            ),
        }
    }

    fn dispatch_analyze(&self, req: &Request) -> (Envelope, Vec<u8>) {
        let (file_name, source, top, properties, mut config) = match resolve_request(req) {
            Ok(resolved) => resolved,
            Err(e) => return (Envelope::error(&e), Vec::new()),
        };
        config.jobs = self.jobs;
        let outcome = {
            let mut session = match self.session.lock() {
                Ok(guard) => guard,
                Err(_) => {
                    return (
                        Envelope::error("analysis session poisoned by an earlier panic"),
                        Vec::new(),
                    )
                }
            };
            session.analyze_with_config(&file_name, &source, &top, properties, &config)
        };
        match outcome {
            Err(e) => (Envelope::error(&e.to_string()), Vec::new()),
            Ok((report, stats)) => {
                self.journal_analyze(req);
                let body = match report.canonical_json() {
                    Ok(json) => json.into_bytes(),
                    Err(e) => return (Envelope::error(&e.to_string()), Vec::new()),
                };
                let health = report.health();
                let mut envelope = Envelope::ok("analyze");
                envelope.health = if health.is_degraded() {
                    "degraded"
                } else {
                    "ok"
                }
                .to_owned();
                envelope.degraded_reasons = health.reasons().to_vec();
                envelope.violations = report.violations().len() as u64;
                envelope.stats = Some(stats);
                (envelope, body)
            }
        }
    }

    /// Journals a successfully served analyze request (write-behind:
    /// the response does not wait on anything but the final flush).
    /// Wall-clock–deadlined requests are skipped — the session never
    /// caches them, so replaying them would rebuild nothing. The
    /// `attempt` field is normalized to 0 so a retried request
    /// deduplicates against its first journaling.
    fn journal_analyze(&self, req: &Request) {
        let Some(journal) = &self.journal else { return };
        if req.round_deadline_ms.is_some() {
            return;
        }
        let mut canonical = req.clone();
        canonical.attempt = 0;
        let Ok(payload) = canonical.to_json() else {
            return;
        };
        match journal.lock() {
            Ok(mut journal) => {
                if journal.append(&payload).is_err() {
                    self.recorder.counter_add("server.journal_errors", 1);
                }
            }
            Err(_) => self.recorder.counter_add("server.journal_errors", 1),
        }
    }

    fn dispatch_lint(&self, req: &Request) -> (Envelope, Vec<u8>) {
        self.recorder.counter_add("server.requests", 1);
        let (file_name, source) = if req.soc.is_empty() {
            let name = if req.file_name.is_empty() {
                "request.v".to_owned()
            } else {
                req.file_name.clone()
            };
            (name, req.source.clone())
        } else {
            match resolve_request(req) {
                Ok((name, source, _, _, _)) => (name, source),
                Err(e) => return (Envelope::error(&e), Vec::new()),
            }
        };
        let lint_config = LintConfig {
            allow: req.allow.clone(),
            deny: req.deny.clone(),
        };
        let linter = Linter::new().with_config(lint_config);
        for id in req.allow.iter().chain(&req.deny) {
            if !linter.is_known_rule(id) {
                return (Envelope::error(&format!("unknown rule `{id}`")), Vec::new());
            }
        }
        match linter.lint_source(&file_name, &source) {
            Err(e) => (Envelope::error(&e), Vec::new()),
            Ok(report) => {
                let body = match soccar::json::to_json_pretty(&report) {
                    Ok(json) => json.into_bytes(),
                    Err(e) => return (Envelope::error(&e.to_string()), Vec::new()),
                };
                let mut envelope = Envelope::ok("lint");
                envelope.violations = report
                    .diagnostics
                    .iter()
                    .filter(|d| d.severity == Severity::Error)
                    .count() as u64;
                (envelope, body)
            }
        }
    }

    fn dispatch_status(&self) -> (Envelope, Vec<u8>) {
        self.recorder.counter_add("server.requests", 1);
        let session = match self.session.lock() {
            Ok(guard) => guard,
            Err(_) => {
                return (
                    Envelope::error("analysis session poisoned by an earlier panic"),
                    Vec::new(),
                )
            }
        };
        let (parse, extract, design, concolic, report) = session.tier_sizes();
        let body = StatusBody {
            uptime_ms: self.started.elapsed().as_millis() as u64,
            jobs: self.jobs,
            counters: *session.counters(),
            tiers: TierSizes {
                parse,
                extract,
                design,
                concolic,
                report,
            },
            shed: self.shed.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            journal: JournalStatus {
                enabled: self.journal.is_some(),
                replayed: self.journal_replayed,
                skipped: self.journal_skipped,
                degraded: self.journal_degraded.clone(),
            },
        };
        match soccar::json::to_json_pretty(&body) {
            Err(e) => (Envelope::error(&e.to_string()), Vec::new()),
            Ok(json) => (Envelope::ok("status"), json.into_bytes()),
        }
    }
}

/// Write deadline for `busy` envelopes when the server has no
/// configured write timeout — a shed client that also refuses to read
/// must not pin the acceptor.
const SHED_WRITE_TIMEOUT: Option<Duration> = Some(Duration::from_millis(2_000));

/// Granularity of deadline checks in [`read_frame_guarded`] — the
/// socket wakes at least this often to compare clocks.
const POLL_SLICE: Duration = Duration::from_millis(50);

/// Re-executes one journaled request against the session (startup
/// replay). Only `analyze` records are meaningful; anything else in the
/// journal is a format violation reported as a replay failure.
fn replay_request(session: &mut AnalysisSession, payload: &str, jobs: usize) -> Result<(), String> {
    let req = Request::from_json(payload)?;
    if req.cmd != "analyze" {
        return Err(format!("journaled `{}` request", req.cmd));
    }
    let (file_name, source, top, properties, mut config) = resolve_request(&req)?;
    config.jobs = jobs;
    session
        .analyze_with_config(&file_name, &source, &top, properties, &config)
        .map(|_| ())
        .map_err(|e| e.to_string())
}

/// Outcome of one guarded frame read.
enum GuardedRead {
    /// A complete frame payload.
    Frame(Vec<u8>),
    /// The peer closed cleanly at a frame boundary.
    ClosedClean,
    /// No byte arrived within the idle budget.
    IdleTimeout,
    /// A frame started but did not finish within the frame deadline —
    /// the slow-loris signature.
    SlowLoris,
    /// The announced length exceeds [`MAX_FRAME`]; the payload was not
    /// read (framing is now unrecoverable, close after reporting).
    Oversized(u32),
}

enum ReadStep {
    Bytes(usize),
    Eof,
    Expired,
}

/// One `read` under an optional deadline: blocks in [`POLL_SLICE`]
/// increments so an armed deadline is honored within one slice.
fn read_some(
    stream: &mut TcpStream,
    buf: &mut [u8],
    deadline: Option<Instant>,
) -> std::io::Result<ReadStep> {
    loop {
        let timeout = match deadline {
            None => None,
            Some(at) => {
                let remaining = at.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    return Ok(ReadStep::Expired);
                }
                Some(remaining.min(POLL_SLICE))
            }
        };
        stream.set_read_timeout(timeout)?;
        match stream.read(buf) {
            Ok(0) => return Ok(ReadStep::Eof),
            Ok(n) => return Ok(ReadStep::Bytes(n)),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) =>
            {
                continue
            }
            Err(e) => return Err(e),
        }
    }
}

/// [`crate::proto::read_frame`] with the transport guards: the idle
/// clock runs while waiting for a frame's first byte; once one arrives
/// the frame deadline takes over and covers the rest of the header and
/// the whole payload.
fn read_frame_guarded(
    stream: &mut TcpStream,
    idle: Option<Duration>,
    frame_deadline: Option<Duration>,
) -> std::io::Result<GuardedRead> {
    let mut header = [0u8; 4];
    let idle_deadline = idle.map(|d| Instant::now() + d);
    let mut filled = 0usize;
    while filled == 0 {
        match read_some(stream, &mut header, idle_deadline)? {
            ReadStep::Bytes(n) => filled = n,
            ReadStep::Eof => return Ok(GuardedRead::ClosedClean),
            ReadStep::Expired => return Ok(GuardedRead::IdleTimeout),
        }
    }
    let frame_by = frame_deadline.map(|d| Instant::now() + d);
    while filled < header.len() {
        match read_some(stream, &mut header[filled..], frame_by)? {
            ReadStep::Bytes(n) => filled += n,
            ReadStep::Eof => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "eof inside frame header",
                ))
            }
            ReadStep::Expired => return Ok(GuardedRead::SlowLoris),
        }
    }
    let len = u32::from_be_bytes(header);
    if len > MAX_FRAME {
        return Ok(GuardedRead::Oversized(len));
    }
    let mut payload = vec![0u8; len as usize];
    let mut got = 0usize;
    while got < payload.len() {
        match read_some(stream, &mut payload[got..], frame_by)? {
            ReadStep::Bytes(n) => got += n,
            ReadStep::Eof => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "eof inside frame payload",
                ))
            }
            ReadStep::Expired => return Ok(GuardedRead::SlowLoris),
        }
    }
    Ok(GuardedRead::Frame(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_request_mirrors_cli_defaults() {
        let mut req = Request::new("analyze");
        req.source = "module top(input clk); endmodule".into();
        req.top = "top".into();
        let (name, _, top, props, config) = resolve_request(&req).expect("resolve");
        assert_eq!(name, "request.v");
        assert_eq!(top, "top");
        assert!(props.is_empty());
        assert_eq!(config.concolic.cycles, 24);
        assert_eq!(config.concolic.max_rounds, 12);
        assert!(config.concolic.solver_budget.is_unlimited());
        assert_eq!(config.analysis, GovernorAnalysis::Explicit);
    }

    #[test]
    fn resolve_request_loads_bundled_soc_catalogs() {
        let mut req = Request::new("analyze");
        req.soc = "clustersoc".into();
        let (name, source, top, props, config) = resolve_request(&req).expect("resolve");
        assert_eq!(name, "clustersoc.v");
        assert!(!source.is_empty());
        assert!(!top.is_empty());
        assert!(!props.is_empty(), "catalog properties pre-loaded");
        assert!(!config.concolic.symbolic_inputs.is_empty());
        req.soc = "toastersoc".into();
        assert!(resolve_request(&req).is_err());
    }

    #[test]
    fn resolve_request_loads_generated_designs() {
        let mut req = Request::new("analyze");
        req.soc = "gen:7:2".into();
        let (name, source, top, props, config) = resolve_request(&req).expect("resolve");
        assert_eq!(name, "gen_7_2.v");
        assert_eq!(top, "gen_soc");
        assert!(source.contains("module gen_soc"));
        assert!(!props.is_empty(), "generated checks pre-loaded");
        assert!(!config.concolic.symbolic_inputs.is_empty());
        // Generated designs draw bugs from the seed, never from --variant.
        req.variant = Some(1);
        assert!(resolve_request(&req).is_err());
    }

    #[test]
    fn resolve_request_applies_qos_knobs() {
        let mut req = Request::new("analyze");
        req.source = "module top(input clk); endmodule".into();
        req.top = "top".into();
        req.refined = true;
        req.cycles = Some(8);
        req.rounds = Some(2);
        req.solver_budget = Some(50);
        req.keep_going = true;
        req.round_deadline_ms = Some(1000);
        let (_, _, _, _, config) = resolve_request(&req).expect("resolve");
        assert_eq!(config.analysis, GovernorAnalysis::Refined);
        assert_eq!(config.concolic.cycles, 8);
        assert_eq!(config.concolic.max_rounds, 2);
        assert_eq!(
            config.concolic.solver_budget,
            soccar_smt::SolveBudget::conflicts(50)
        );
        assert!(config.keep_going);
        assert_eq!(
            config.concolic.round_deadline,
            Some(std::time::Duration::from_millis(1000))
        );
    }

    #[test]
    fn missing_top_is_rejected() {
        let mut req = Request::new("analyze");
        req.source = "module top(input clk); endmodule".into();
        assert!(resolve_request(&req).is_err());
    }
}
