//! # soccar-obs
//!
//! The observability substrate of the SoCCAR workspace: structured
//! tracing (hierarchical [`Recorder::span`]s with monotonic timing) and
//! metrics (counters, gauges, power-of-two histograms) behind one
//! thread-safe, cheaply clonable [`Recorder`] handle, with three sinks:
//!
//! * a human-readable span tree ([`render_tree`]) for `--verbose`;
//! * schema-versioned NDJSON ([`to_ndjson`] / [`to_ndjson_canonical`])
//!   for `soccar --trace-out`;
//! * the canonical `BENCH_<soc>.json` perf record ([`mod@bench`]) that the CI
//!   `bench-smoke` job diffs against checked-in baselines.
//!
//! The crate is dependency-free so every other crate — `soccar-rtl`,
//! `soccar-cfg`, `soccar-smt`, `soccar-concolic`, `soccar` — can link it
//! without touching the vendored stubs. Instrumentation is designed to be
//! free when disabled: a [`Recorder::disabled`] handle is a `None` and
//! every operation returns immediately.
//!
//! The paper's evaluation (Table IV, Fig. 4) is a measurement story —
//! detection rounds, solver queries, wall-clock per variant — and this
//! crate is where those numbers become machine-readable instead of
//! vanishing with the process.
//!
//! # Examples
//!
//! ```
//! use soccar_obs::{span, Recorder};
//!
//! let rec = Recorder::enabled();
//! for round in 1..=2u64 {
//!     let _round_span = span!(rec, "concolic.round", round = round);
//!     rec.counter_add("smt.queries", 3);
//! }
//! let snap = rec.snapshot();
//! assert_eq!(snap.spans.len(), 2);
//! assert_eq!(snap.counters["smt.queries"], 6);
//! assert!(soccar_obs::to_ndjson_canonical(&snap).contains("concolic.round"));
//! ```

#![warn(missing_docs)]

pub mod bench;
pub mod recorder;
pub mod sink;

pub use bench::{
    diff_against_baseline, quantize_seconds, strip_timing, BenchReport, BenchVariant,
    BENCH_SCHEMA_VERSION,
};
pub use recorder::{Histogram, Recorder, SpanData, SpanGuard, TraceSnapshot, Value};
pub use sink::{render_tree, to_ndjson, to_ndjson_canonical, TRACE_SCHEMA_VERSION};

/// Opens a span on a [`Recorder`] with optional `key = value` fields:
///
/// ```
/// # use soccar_obs::{span, Recorder};
/// # let rec = Recorder::enabled();
/// let span = span!(rec, "cfg.extract", modules = 12u64, top = "soc");
/// let elapsed = span.close();
/// ```
///
/// Field values go through [`Value::from`], so integers, floats, bools,
/// and strings all work. The guard closes (recording the duration) on
/// drop, or explicitly via [`SpanGuard::close`], which returns the
/// duration.
#[macro_export]
macro_rules! span {
    ($rec:expr, $name:expr $(, $key:ident = $val:expr)* $(,)?) => {{
        #[allow(unused_mut)]
        let mut __soccar_span = $rec.span($name);
        $(__soccar_span.record(stringify!($key), $crate::Value::from($val));)*
        __soccar_span
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_macro_records_fields() {
        let rec = Recorder::enabled();
        let g = span!(rec, "stage", n = 3u64, label = "x", ok = true);
        g.close();
        let snap = rec.snapshot();
        assert_eq!(snap.spans[0].name, "stage");
        assert_eq!(
            snap.spans[0].fields,
            vec![
                ("n".to_owned(), Value::U64(3)),
                ("label".to_owned(), Value::Str("x".to_owned())),
                ("ok".to_owned(), Value::Bool(true)),
            ]
        );
    }

    #[test]
    fn span_macro_works_without_fields_and_on_disabled() {
        let rec = Recorder::disabled();
        let g = span!(rec, "noop");
        let _ = g.close();
        assert!(rec.snapshot().spans.is_empty());
    }
}
