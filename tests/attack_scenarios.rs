//! Exploit demonstrations — the *Impact* column of Table III, executed
//! end-to-end on the benchmark SoCs: each seeded bug is not just a
//! property violation but an actually exploitable condition, and the same
//! attack is blocked on the clean design.

use soccar_rtl::value::LogicVec;
use soccar_sim::{InitPolicy, Simulator};
use soccar_soc::SocModel;

fn boot_auto(variant: Option<u32>) -> (soccar_rtl::Design, String) {
    let design = soccar_soc::generate(SocModel::AutoSoc, variant);
    let d = soccar_rtl::compile("soc.v", &design.source, &design.top)
        .expect("compile")
        .0;
    (d, design.top)
}

fn zero_inputs(sim: &mut Simulator<'_, soccar_sim::ConcreteAlgebra>, d: &soccar_rtl::Design) {
    for net in d.top_inputs().collect::<Vec<_>>() {
        let w = d.net(net).width;
        sim.write_input(net, LogicVec::zeros(w)).expect("in");
    }
}

fn release_resets(sim: &mut Simulator<'_, soccar_sim::ConcreteAlgebra>, d: &soccar_rtl::Design) {
    for net in d.top_inputs().collect::<Vec<_>>() {
        if d.net(net).local_name.contains("rst") {
            sim.write_input(net, LogicVec::from_u64(1, 1)).expect("rst");
        }
    }
}

/// Drives one AXI host write and waits for bvalid.
fn host_write(
    sim: &mut Simulator<'_, soccar_sim::ConcreteAlgebra>,
    d: &soccar_rtl::Design,
    top: &str,
    addr: u64,
    data: u64,
) {
    let n = |s: &str| d.find_net(&format!("{top}.{s}")).expect("net");
    let clk = n("clk");
    sim.write_input(n("host_awaddr"), LogicVec::from_u64(32, addr))
        .expect("a");
    sim.write_input(n("host_wdata"), LogicVec::from_u64(32, data))
        .expect("w");
    sim.write_input(n("host_awvalid"), LogicVec::from_u64(1, 1))
        .expect("v");
    sim.settle().expect("settle");
    for _ in 0..12 {
        sim.tick(clk).expect("tick");
        if sim.net_logic(n("host_bvalid")).to_u64() == Some(1) {
            break;
        }
    }
    sim.write_input(n("host_awvalid"), LogicVec::from_u64(1, 0))
        .expect("v");
    sim.settle().expect("settle");
    sim.tick(clk).expect("tick");
}

/// Data-integrity exploit (AutoSoC #1, bug at `sram_sp`): after a partial
/// `mem_rst_n` reset, a host write into the *protected* half of the memory
/// subsystem's SRAM lands — on the clean design the same write is blocked.
#[test]
fn unauthorized_write_lands_only_on_the_buggy_variant() {
    // Protected region: sram_sp addr MSB set. The SRAM sees
    // wb_addr[15:2] (AW = 14), so byte address bit 15 selects protection.
    let protected_byte_addr = 0x0000_8004u64;
    let mem_word = (protected_byte_addr >> 2) & 0x3FFF;
    for (variant, expect_landed) in [(Some(1), true), (None, false)] {
        let (d, top) = boot_auto(variant);
        let mut sim = Simulator::concrete(&d, InitPolicy::Zeros);
        zero_inputs(&mut sim, &d);
        sim.settle().expect("settle");
        release_resets(&mut sim, &d);
        sim.settle().expect("settle");
        let clk = d.find_net(&format!("{top}.clk")).expect("clk");
        for _ in 0..4 {
            sim.tick(clk).expect("tick");
        }
        // Partial asynchronous reset of the memory domain only.
        let mem_rst = d.find_net(&format!("{top}.mem_rst_n")).expect("rst");
        sim.write_input(mem_rst, LogicVec::from_u64(1, 0))
            .expect("rst");
        sim.settle().expect("settle");
        sim.write_input(mem_rst, LogicVec::from_u64(1, 1))
            .expect("rst");
        sim.settle().expect("settle");
        // The attack: write into the protected region without unlock.
        host_write(&mut sim, &d, &top, protected_byte_addr, 0x5EC0_0BAD);
        let mem = d
            .find_memory(&format!("{top}.u_mem.u_sram0.mem"))
            .expect("mem");
        let landed = sim.mem_logic(mem, mem_word).to_u64() == Some(0x5EC0_0BAD);
        assert_eq!(
            landed, expect_landed,
            "variant {variant:?}: write landed = {landed}"
        );
    }
}

/// Privilege exploit (AutoSoC #2, bug at `rv32im_core`): a partial CPU
/// reset leaves core 2 in the undefined privilege encoding `2'b10`,
/// observable at the chip pins — "no available privilege level".
#[test]
fn privilege_mode_bricked_only_on_the_buggy_variant() {
    for (variant, expect_undefined) in [(Some(2), true), (None, false)] {
        let (d, top) = boot_auto(variant);
        let mut sim = Simulator::concrete(&d, InitPolicy::Zeros);
        zero_inputs(&mut sim, &d);
        sim.settle().expect("settle");
        release_resets(&mut sim, &d);
        sim.settle().expect("settle");
        let clk = d.find_net(&format!("{top}.clk")).expect("clk");
        for _ in 0..6 {
            sim.tick(clk).expect("tick");
        }
        // Partial asynchronous reset of the CPU domain.
        let cpu_rst = d.find_net(&format!("{top}.cpu_rst_n")).expect("rst");
        sim.write_input(cpu_rst, LogicVec::from_u64(1, 0))
            .expect("rst");
        sim.settle().expect("settle");
        let priv2 = d.find_net(&format!("{top}.priv2")).expect("priv2");
        let v = sim.net_logic(priv2).to_u64().expect("priv");
        assert_eq!(
            v == 0b10,
            expect_undefined,
            "variant {variant:?}: priv2 = {v:b}"
        );
        // The healthy cores (RV32I/RV32IC) are fine either way.
        let priv0 = d.find_net(&format!("{top}.priv0")).expect("priv0");
        assert_ne!(sim.net_logic(priv0).to_u64(), Some(0b10));
    }
}

/// Information-leakage exploit (AutoSoC #2, implicit bug at `sha256`):
/// a reset glitch landing while the clock is high makes the ciphertext
/// port emit the raw plaintext — but only on the buggy variant, and only
/// in that timing window.
#[test]
fn plaintext_dumped_only_in_the_clock_high_window() {
    let (d, top) = boot_auto(Some(2));
    let mut sim = Simulator::concrete(&d, InitPolicy::Zeros);
    zero_inputs(&mut sim, &d);
    sim.settle().expect("settle");
    release_resets(&mut sim, &d);
    sim.settle().expect("settle");
    let n = |s: &str| d.find_net(&format!("{top}.{s}")).expect("net");
    let clk = n("clk");
    let pt = 0x0123_4567_89AB_CDEFu64;
    sim.write_input(n("tst_pt"), LogicVec::from_u64(64, pt))
        .expect("pt");
    sim.write_input(n("tst_key"), LogicVec::from_u64(64, 0x11))
        .expect("key");
    // Start the SHA engine (tst_start[1]).
    sim.write_input(n("tst_start"), LogicVec::from_u64(5, 0b00010))
        .expect("start");
    sim.settle().expect("settle");
    sim.tick(clk).expect("tick");
    sim.write_input(n("tst_start"), LogicVec::from_u64(5, 0))
        .expect("start");
    sim.settle().expect("settle");
    let ct = d
        .find_net(&format!("{top}.u_crypto.u_sha256.ct_out"))
        .expect("ct");
    // Clock-low glitch: no leak.
    let crst = n("crypto_rst_n");
    sim.write_input(crst, LogicVec::from_u64(1, 0))
        .expect("rst");
    sim.settle().expect("settle");
    assert_ne!(
        sim.net_logic(ct).to_u64(),
        Some(pt),
        "low-phase glitch is safe"
    );
    sim.write_input(crst, LogicVec::from_u64(1, 1))
        .expect("rst");
    sim.settle().expect("settle");
    // Reload, then glitch during the high phase: plaintext dumped.
    sim.write_input(n("tst_start"), LogicVec::from_u64(5, 0b00010))
        .expect("start");
    sim.settle().expect("settle");
    sim.tick(clk).expect("tick");
    sim.write_input(clk, LogicVec::from_u64(1, 1)).expect("clk");
    sim.settle().expect("settle");
    sim.write_input(crst, LogicVec::from_u64(1, 0))
        .expect("rst");
    sim.settle().expect("settle");
    assert_eq!(
        sim.net_logic(ct).to_u64(),
        Some(pt),
        "high-phase glitch dumps the plaintext"
    );
    let leak = d.find_net(&format!("{top}.leak_flags")).expect("leak");
    assert_eq!(
        sim.net_logic(leak).to_u64().map(|v| (v >> 1) & 1),
        Some(1),
        "the observation point flags it"
    );
}
