//! Determinism regression: the parallel stages (AR_CFG extraction
//! fan-out, speculative flip solving, variant sweeps) must merge by
//! stable keys, never completion order, so the full pipeline produces a
//! byte-identical canonical report for every job count. These tests run
//! the complete pipeline — frontend, lint, extraction, composition,
//! binding, concolic testing — on both bundled SoCs at `--jobs 1` and
//! `--jobs 4` and compare the serialized `AnalysisReport` JSON.

use proptest::prelude::*;
use soccar::evaluation::evaluate_generated;
use soccar::evaluation::evaluate_variant;
use soccar::SoccarConfig;
use soccar_soc::{GenSpec, SocModel};

/// Full-pipeline canonical JSON for one bug-seeded variant at `jobs`.
fn canonical_json(model: SocModel, number: u32, jobs: usize) -> String {
    canonical_json_faulted(model, number, jobs, "")
}

/// Same, but with a `SOCCAR_FAULTS`-style plan injected and `keep_going`
/// set so the injected faults degrade rather than abort.
fn canonical_json_faulted(model: SocModel, number: u32, jobs: usize, faults: &str) -> String {
    let spec = soccar_soc::variant(model, number).expect("bundled variant exists");
    let mut config = SoccarConfig::default();
    config.concolic.cycles = 12;
    config.concolic.max_rounds = 4;
    config.jobs = jobs;
    if !faults.is_empty() {
        config.keep_going = true;
        config.fault_plan = soccar_exec::FaultPlan::parse(faults).expect("valid fault plan");
    }
    let eval = evaluate_variant(&spec, config).expect("benchmark variants always evaluate");
    eval.report
        .canonical_json()
        .expect("canonical report serializes")
}

#[test]
fn cluster_soc_report_is_byte_identical_across_job_counts() {
    let serial = canonical_json(SocModel::ClusterSoc, 1, 1);
    let parallel = canonical_json(SocModel::ClusterSoc, 1, 4);
    assert_eq!(serial, parallel);
    // The run exercised the parallel stages on real work, not a trivial
    // empty report.
    assert!(serial.contains("\"ar_events\""));
    assert!(serial.contains("\"solver_calls\""));
}

#[test]
fn auto_soc_report_is_byte_identical_across_job_counts() {
    let serial = canonical_json(SocModel::AutoSoc, 2, 1);
    let parallel = canonical_json(SocModel::AutoSoc, 2, 4);
    assert_eq!(serial, parallel);
    assert!(serial.contains("\"violations\""));
}

#[test]
fn faulted_cluster_soc_report_is_byte_identical_across_job_counts() {
    // A fixed fault plan degrades the same stages by the same reasons no
    // matter how many workers race: injection points are keyed on serial
    // per-item indices, never completion order.
    let faults = "solver_unknown@1,task_panic@extract:2";
    let serial = canonical_json_faulted(SocModel::ClusterSoc, 1, 1, faults);
    let parallel = canonical_json_faulted(SocModel::ClusterSoc, 1, 4, faults);
    assert_eq!(serial, parallel);
    // The faults actually landed: the report is degraded, not pristine.
    assert!(
        serial.contains("\"status\": \"degraded\""),
        "expected degraded health in:\n{serial}"
    );
    assert!(serial.contains("injected fault: solver_unknown@1"));
    assert!(serial.contains("injected fault: task_panic@extract:2"));
}

/// Full-pipeline canonical JSON for a *generated* design at a given
/// job count, incremental-solver setting, and portfolio setting.
/// Mirrors what `SOCCAR_JOBS` / `SOCCAR_INCREMENTAL` /
/// `SOCCAR_PORTFOLIO` select via the environment, set directly on the
/// config so all combinations can run in one process without racing on
/// env vars.
fn generated_canonical_json(
    spec: &GenSpec,
    jobs: usize,
    incremental: bool,
    portfolio: bool,
) -> String {
    let mut config = SoccarConfig::default();
    config.concolic.cycles = 10;
    config.concolic.max_rounds = 3;
    config.concolic.sweep_stride = 3;
    config.concolic.incremental = incremental;
    config.concolic.portfolio = portfolio;
    config.jobs = jobs;
    let eval = evaluate_generated(spec, config).expect("generated designs always evaluate");
    eval.report
        .canonical_json()
        .expect("canonical report serializes")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// The determinism contract extended beyond the two hand-built
    /// SoCs: any seeded topology produces one canonical report across
    /// `SOCCAR_JOBS={1,4}` × `SOCCAR_INCREMENTAL={0,1}` ×
    /// `SOCCAR_PORTFOLIO={0,1}`. The portfolio dimension is the racing
    /// contract made visible: first-definite-answer-wins must never
    /// change which answer that is (portfolio only applies on the
    /// incremental path, so the `incremental=false` × `portfolio=true`
    /// cell doubles as the "ignored knob stays ignored" check).
    #[test]
    fn generated_soc_reports_are_byte_identical_across_jobs_and_solver_modes(
        seed in 0u64..4096,
        scale in 1u32..3,
    ) {
        let spec = GenSpec { seed, scale };
        let baseline = generated_canonical_json(&spec, 1, true, false);
        for (jobs, incremental, portfolio) in [
            (1, false, false),
            (4, true, false),
            (4, false, false),
            (1, true, true),
            (4, true, true),
            (4, false, true),
        ] {
            let other = generated_canonical_json(&spec, jobs, incremental, portfolio);
            prop_assert_eq!(
                &baseline,
                &other,
                "gen:{}:{} diverged at jobs={} incremental={} portfolio={}",
                seed,
                scale,
                jobs,
                incremental,
                portfolio
            );
        }
        // Real work happened: the report carries solver and sweep fields.
        prop_assert!(baseline.contains("\"solver_calls\""));
        prop_assert!(baseline.contains("\"violations\""));
    }
}

#[test]
fn canonical_report_carries_no_wall_clock_fields() {
    let json = canonical_json(SocModel::ClusterSoc, 2, 2);
    for timing in ["elapsed", "busy_secs", "utilization", "\"jobs\""] {
        assert!(!json.contains(timing), "canonical JSON leaks `{timing}`");
    }
}
