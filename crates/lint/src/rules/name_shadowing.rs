//! `reset-name-shadowing` — a signal that matches the reset naming
//! convention but is not structurally a reset.
//!
//! SoCCAR's reset identification (paper footnote 1) leans on a naming
//! convention. A data signal named `rst_count` or `clear_pending` matches
//! the convention while carrying no reset semantics, polluting the reset
//! inventory and the domain analysis built on it. This rule flags
//! declared signals whose name matches the convention but that are never
//! edge-qualified in a sensitivity list, never tested by a leading reset
//! conditional, and never forwarded to a child reset port.

use soccar_rtl::span::Span;

use crate::context::LintContext;
use crate::diagnostic::{Diagnostic, Severity};
use crate::rules::{LintRule, SYNC_MARKERS};

/// See the module docs.
#[derive(Debug, Clone, Copy, Default)]
pub struct ResetNameShadowing;

impl LintRule for ResetNameShadowing {
    fn id(&self) -> &'static str {
        "reset-name-shadowing"
    }

    fn description(&self) -> &'static str {
        "signal matching the reset naming convention that is not structurally a reset"
    }

    fn default_severity(&self) -> Severity {
        Severity::Info
    }

    fn check(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        for view in &ctx.modules {
            let mut candidates: Vec<(&str, Span)> = view
                .module
                .ports
                .iter()
                .map(|p| (p.name.as_str(), p.span))
                .collect();
            candidates.extend(
                view.module
                    .net_decls()
                    .flat_map(|d| &d.names)
                    .map(|d| (d.name.as_str(), d.span)),
            );
            for (name, span) in candidates {
                if !ctx.naming.is_reset_name(name) {
                    continue;
                }
                let lower = name.to_ascii_lowercase();
                if SYNC_MARKERS.iter().any(|m| lower.contains(m)) {
                    continue; // synchronizer stages are reset infrastructure
                }
                if used_as_reset(ctx, view, name) {
                    continue;
                }
                out.push(Diagnostic::new(
                    self.id(),
                    self.default_severity(),
                    &view.module.name,
                    span,
                    format!(
                        "`{name}` matches the reset naming convention but is never used \
                         as a reset (no edge sensitivity, no leading reset test, not \
                         forwarded to a child reset port); it shadows name-based reset \
                         identification"
                    ),
                ));
            }
        }
    }
}

fn used_as_reset(ctx: &LintContext<'_>, view: &crate::context::ModuleView<'_>, name: &str) -> bool {
    // Edge-qualified anywhere, or tested by a leading conditional.
    for block in view.module.always_blocks() {
        if block.edge_items().any(|i| i.signal == name) {
            return true;
        }
        if soccar_cfg::leading_condition_tests(&block.body, name) {
            return true;
        }
    }
    // Forwarded (possibly through an expression) into a child reset port.
    for inst in view.module.instances() {
        let child = ctx.modules.iter().find(|v| v.module.name == inst.module);
        for conn in &inst.conns {
            let Some(expr) = &conn.expr else { continue };
            let mut reads = Vec::new();
            expr.collect_reads(&mut reads);
            if !reads.iter().any(|r| r == name) {
                continue;
            }
            let port_is_reset = match child {
                Some(v) => v.is_reset(&conn.port),
                None => ctx.naming.is_reset_name(&conn.port),
            };
            if port_is_reset {
                return true;
            }
        }
    }
    false
}
