//! **Ablation: governor analysis** — the paper's central negative result
//! and its proposed fix.
//!
//! With the published extraction rules (`Explicit`) the SHA256 implicit
//! clock-composed governor in AutoSoC Variant #2 is invisible: the block
//! never enters the AR_CFG, the engine never schedules a clock-high reset
//! assertion, and the leak goes undetected. The `Refined` extension
//! ("more refined comprehension of … the interplay of clock and
//! asynchronous resets to create implicit governors") recovers it.

use soccar::evaluation::{evaluate_variant, render_outcomes};
use soccar::SoccarConfig;
use soccar_bench::{paper_config, render_table};
use soccar_cfg::GovernorAnalysis;

fn main() {
    let spec = soccar_soc::variant(soccar_soc::SocModel::AutoSoc, 2).expect("variant");
    let mut rows = Vec::new();
    for analysis in [GovernorAnalysis::Explicit, GovernorAnalysis::Refined] {
        let config = SoccarConfig {
            analysis,
            ..paper_config()
        };
        let eval = evaluate_variant(&spec, config).expect("evaluates");
        let sha = eval
            .outcomes
            .iter()
            .find(|o| o.implicit)
            .expect("implicit bug present");
        rows.push(vec![
            format!("{analysis:?}"),
            eval.report.extraction.ar_events.to_string(),
            format!("{}/{}", eval.detected(), eval.outcomes.len()),
            if sha.detected { "DETECTED" } else { "MISSED" }.to_owned(),
            format!("{:.2}", eval.verification_time().as_secs_f64()),
        ]);
        println!("{}", render_outcomes(&eval));
    }
    println!("Ablation — governor analysis on AutoSoC Variant #2");
    println!(
        "{}",
        render_table(
            &[
                "Analysis",
                "AR events",
                "Detected",
                "SHA256 implicit bug",
                "Seconds"
            ],
            &rows
        )
    );
}
