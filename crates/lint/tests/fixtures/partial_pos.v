// Positive: the operational arm writes key_reg but the reset arm never
// clears it — the paper's information-leakage seed shape (Table III).
module eng(input clk, input rst_n, input [7:0] k, input start,
           output reg [7:0] key_reg, output reg busy);
  always @(posedge clk or negedge rst_n)
    if (!rst_n) begin
      busy <= 1'b0;
    end else begin
      busy <= 1'b1;
      key_reg <= k;
    end
endmodule
