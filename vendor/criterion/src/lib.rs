//! Offline vendored subset of the `criterion` benchmarking API.
//!
//! The build environment for this repository has no network access, so the
//! workspace vendors the slice of criterion its benches use: [`Criterion`],
//! [`BenchmarkGroup`] (`benchmark_group` / `sample_size` / `bench_function`
//! / `finish`), [`Bencher::iter`] / [`Bencher::iter_batched`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple: each benchmark runs a small fixed
//! number of timed iterations and prints the mean wall-clock time. There is
//! no statistical analysis, warm-up calibration, or HTML report — the goal
//! is that `cargo bench` compiles and produces order-of-magnitude numbers
//! offline, not publication-grade statistics.

use std::time::{Duration, Instant};

/// Top-level benchmark driver (vendored subset).
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 20,
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark under this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut bencher = Bencher {
            samples: self.sample_size,
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut bencher);
        let mean = if bencher.iters == 0 {
            Duration::ZERO
        } else {
            bencher.elapsed / u32::try_from(bencher.iters).unwrap_or(u32::MAX)
        };
        println!(
            "  {}/{id}: {mean:?} mean over {} iters",
            self.name, bencher.iters
        );
        self
    }

    /// Ends the group (upstream flushes reports here; a no-op offline).
    pub fn finish(self) {}
}

/// Per-benchmark timing driver handed to the closure.
pub struct Bencher {
    samples: usize,
    elapsed: Duration,
    iters: u64,
}

/// Batch sizing for [`Bencher::iter_batched`] (vendored subset: every
/// variant behaves like `PerIteration`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Fresh setup output for every routine call.
    PerIteration,
    /// Accepted for API compatibility; treated as `PerIteration`.
    SmallInput,
    /// Accepted for API compatibility; treated as `PerIteration`.
    LargeInput,
}

impl Bencher {
    /// Times `routine`, running it once per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.samples {
            let start = Instant::now();
            let out = routine();
            self.elapsed += start.elapsed();
            self.iters += 1;
            drop(out);
        }
    }

    /// Times `routine` on inputs built by `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            let out = routine(input);
            self.elapsed += start.elapsed();
            self.iters += 1;
            drop(out);
        }
    }
}

/// Bundles benchmark functions into a runner function, as upstream.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` invoking each [`criterion_group!`] runner.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_times_and_counts() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("unit");
        g.sample_size(3);
        let mut calls = 0u64;
        g.bench_function("iter", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 3);
        let mut batched = 0u64;
        g.bench_function("batched", |b| {
            b.iter_batched(|| 2u64, |x| batched += x, BatchSize::PerIteration);
        });
        assert_eq!(batched, 6);
        g.finish();
    }
}
