//! # soccar-soc
//!
//! The SoCCAR evaluation testbed: generators for the **ClusterSoC** and
//! **AutoSoC** benchmark designs of Section V-A, the IP classification of
//! Table II, the bug catalog of Table III and the seeded variants of
//! Table IV.
//!
//! Everything is emitted as genuine Verilog text and compiled through the
//! `soccar-rtl` frontend, so the full SoCCAR pipeline — extraction,
//! composition, concolic testing — runs on real RTL, exactly as the paper
//! requires ("SoCCAR works directly on the RTL implementation").

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ip;

pub use ip::crypto::CryptoBug;
pub use ip::riscv::{CoreBug, CoreVariant};
pub use ip::sram::MemoryBug;
pub use ip::wishbone::BusBug;

pub mod bugs;
pub mod cluster;

pub use bugs::{variant, variants, BugInstance, SocModel, VariantSpec, ViolationType};
pub use cluster::SocDesign;

pub mod auto;
pub mod catalog;
pub mod checks;
pub mod generate;
pub mod topology;

pub use catalog::{resolve, ResolvedSoc};
pub use checks::{expected_detectors, security_checks, symbolic_inputs, CheckKind, CheckSpec};
pub use generate::{DetectionStage, GenSpec, GeneratedSoc, Manifest, ManifestBug};

/// Generates any benchmark SoC by model and optional variant number.
///
/// # Panics
///
/// Panics if `variant_number` does not exist for `model` (see
/// [`bugs::variants`]).
#[must_use]
pub fn generate(model: SocModel, variant_number: Option<u32>) -> SocDesign {
    let spec = variant_number.map(|n| {
        bugs::variant(model, n).unwrap_or_else(|| panic!("{model:?} has no variant #{n}"))
    });
    match model {
        SocModel::ClusterSoc => cluster::generate(spec.as_ref()),
        SocModel::AutoSoc => auto::generate(spec.as_ref()),
    }
}
