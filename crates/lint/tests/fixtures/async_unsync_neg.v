// Negative: the canonical 2-FF reset release synchronizer. Assertion is
// still asynchronous; release is re-timed into the clk domain through the
// constant-shift chain rst_meta -> rst_sync_n.
module reset_sync(input clk, input rst_n, output reg rst_sync_n);
  reg rst_meta;
  always @(posedge clk or negedge rst_n)
    if (!rst_n) begin
      rst_meta   <= 1'b0;
      rst_sync_n <= 1'b0;
    end else begin
      rst_meta   <= 1'b1;
      rst_sync_n <= rst_meta;
    end
endmodule
