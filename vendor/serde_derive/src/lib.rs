//! Offline vendored `#[derive(Serialize)]` for the vendored serde subset.
//!
//! Supports named-field structs — plain or with lifetime-only generics
//! (`struct View<'a> { ... }`) — plus the `#[serde(with = "module")]`
//! and `#[serde(skip)]` field attributes — exactly the shapes this
//! workspace derives. Anything else produces a compile error asking for
//! a hand-written impl.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    with: Option<String>,
    skip: bool,
}

/// Derives `serde::Serialize` for a named-field struct, optionally with
/// lifetime parameters.
///
/// # Panics
///
/// Panics (compile error) on enums, tuple structs, or structs with type
/// or const generics.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip container attributes and visibility up to the `struct` keyword.
    let mut name = None;
    while i < tokens.len() {
        if let TokenTree::Ident(id) = &tokens[i] {
            let s = id.to_string();
            if s == "struct" {
                i += 1;
                if let Some(TokenTree::Ident(n)) = tokens.get(i) {
                    name = Some(n.to_string());
                }
                i += 1;
                break;
            }
            assert!(
                s != "enum" && s != "union",
                "vendored serde_derive only supports structs; \
                 hand-implement Serialize for {s}s"
            );
        }
        i += 1;
    }
    let name = name.expect("struct name after `struct` keyword");

    // Optional generics: lifetimes only (`<'a>`, `<'a, 'b>`).
    let mut generics = String::new();
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        i += 1;
        let mut tick = false;
        loop {
            match tokens.get(i) {
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                    i += 1;
                    break;
                }
                Some(TokenTree::Punct(p)) => {
                    tick = p.as_char() == '\'';
                    generics.push(p.as_char());
                }
                Some(TokenTree::Ident(id)) => {
                    assert!(
                        tick,
                        "vendored serde_derive only supports lifetime generics ({name}<{id}>)"
                    );
                    tick = false;
                    generics.push_str(&id.to_string());
                }
                Some(t) => panic!("unsupported generics token `{t}` on struct {name}"),
                None => panic!("unterminated generics on struct {name}"),
            }
            i += 1;
        }
    }

    // Next meaningful token must be the brace group.
    let body = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                panic!("vendored serde_derive does not support generic structs ({name})")
            }
            Some(_) => i += 1,
            None => panic!("struct {name} has no named-field body"),
        }
    };

    let self_ty = if generics.is_empty() {
        name.clone()
    } else {
        format!("{name}<{generics}>")
    };
    let fields = parse_fields(body);
    let mut out = String::new();
    out.push_str(&format!(
        "impl<{generics}> ::serde::Serialize for {self_ty} {{\n\
         fn serialize<__S: ::serde::Serializer>(&self, __serializer: __S) \
         -> ::core::result::Result<__S::Ok, __S::Error> {{\n\
         use ::serde::ser::SerializeStruct as _;\n"
    ));
    let live: Vec<&Field> = fields.iter().filter(|f| !f.skip).collect();
    out.push_str(&format!(
        "let mut __s = ::serde::Serializer::serialize_struct(__serializer, \"{name}\", {})?;\n",
        live.len()
    ));
    for f in &live {
        if let Some(with) = &f.with {
            assert!(
                generics.is_empty(),
                "vendored serde_derive: `with` attribute unsupported on generic struct {name}"
            );
            out.push_str(&format!(
                "{{\n\
                 struct __With<'a>(&'a {name});\n\
                 impl<'a> ::serde::Serialize for __With<'a> {{\n\
                 fn serialize<__S2: ::serde::Serializer>(&self, __serializer: __S2) \
                 -> ::core::result::Result<__S2::Ok, __S2::Error> {{\n\
                 {with}::serialize(&self.0.{field}, __serializer)\n\
                 }}\n}}\n\
                 __s.serialize_field(\"{field}\", &__With(self))?;\n\
                 }}\n",
                field = f.name,
            ));
        } else {
            out.push_str(&format!(
                "__s.serialize_field(\"{0}\", &self.{0})?;\n",
                f.name
            ));
        }
    }
    out.push_str("__s.end()\n}\n}\n");
    out.parse().expect("generated impl parses")
}

fn parse_fields(body: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut with = None;
        let mut skip = false;
        // Field attributes.
        loop {
            match tokens.get(i) {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                        read_serde_attr(g.stream(), &mut with, &mut skip);
                    }
                    i += 2;
                }
                _ => break,
            }
        }
        // Visibility.
        if matches!(&tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            i += 1;
            if matches!(&tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        }
        // Name.
        let Some(TokenTree::Ident(fname)) = tokens.get(i) else {
            break; // trailing comma / end
        };
        let name = fname.to_string();
        i += 1;
        // `:` then the type, until a comma at angle-bracket depth 0.
        debug_assert!(
            matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ':'),
            "expected `:` after field {name}"
        );
        i += 1;
        let mut depth = 0i32;
        while let Some(t) = tokens.get(i) {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field { name, with, skip });
    }
    fields
}

/// Reads one `[...]` attribute body; fills `with`/`skip` for `serde` attrs.
fn read_serde_attr(body: TokenStream, with: &mut Option<String>, skip: &mut bool) {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    match tokens.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return, // doc comment or foreign attribute
    }
    let Some(TokenTree::Group(args)) = tokens.get(1) else {
        return;
    };
    let args: Vec<TokenTree> = args.stream().into_iter().collect();
    let mut j = 0;
    while j < args.len() {
        if let TokenTree::Ident(key) = &args[j] {
            match key.to_string().as_str() {
                "skip" => *skip = true,
                "with" => {
                    // with = "path"
                    if let Some(TokenTree::Literal(lit)) = args.get(j + 2) {
                        let s = lit.to_string();
                        *with = Some(s.trim_matches('"').to_owned());
                    }
                    j += 2;
                }
                _ => {} // tolerate unknown options
            }
        }
        j += 1;
    }
}
