//! Reset-signal identification.
//!
//! The paper (footnote 1) identifies reset signals by "a universal naming
//! format with terms such as `resetn` or `rst`", optionally refined by the
//! automated clock/reset analysis of EDA tools. This module implements
//! both: a configurable name heuristic and a structural analysis (a signal
//! that appears edge-qualified in a sensitivity list *alongside* a clock
//! and is tested by the leading conditional of the block is a reset
//! regardless of its name).

use soccar_rtl::ast::{Edge, Module, Sensitivity, Stmt};

/// Configurable reset naming convention.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResetNaming {
    patterns: Vec<String>,
    clock_patterns: Vec<String>,
}

impl Default for ResetNaming {
    fn default() -> ResetNaming {
        ResetNaming {
            patterns: vec!["rst".into(), "reset".into(), "clear".into()],
            clock_patterns: vec!["clk".into(), "clock".into()],
        }
    }
}

impl ResetNaming {
    /// The default convention (`rst`, `reset`, `clear` / `clk`, `clock`).
    #[must_use]
    pub fn new() -> ResetNaming {
        ResetNaming::default()
    }

    /// Replaces the reset name patterns.
    #[must_use]
    pub fn with_patterns(mut self, patterns: Vec<String>) -> ResetNaming {
        self.patterns = patterns;
        self
    }

    /// `true` if `name` looks like a reset by naming convention.
    #[must_use]
    pub fn is_reset_name(&self, name: &str) -> bool {
        looks_like_reset_name(name, &self.patterns)
    }

    /// `true` if `name` looks like a clock by naming convention.
    #[must_use]
    pub fn is_clock_name(&self, name: &str) -> bool {
        let lower = name.to_ascii_lowercase();
        self.clock_patterns
            .iter()
            .any(|p| lower.contains(p.as_str()))
    }
}

/// Case-insensitive substring match of `name` against `patterns` — the
/// naming heuristic shared by reset identification and the lint rules
/// (e.g. `reset-name-shadowing` reuses it to find reset-looking signals
/// that are not structurally resets).
#[must_use]
pub fn looks_like_reset_name(name: &str, patterns: &[String]) -> bool {
    let lower = name.to_ascii_lowercase();
    patterns.iter().any(|p| lower.contains(p.as_str()))
}

/// How a reset signal was identified.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResetEvidence {
    /// Name heuristic only.
    Name,
    /// Structural analysis only (edge-qualified + leading conditional).
    Structural,
    /// Both agree.
    Both,
}

/// An identified reset signal of one module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResetSignal {
    /// Local signal name.
    pub name: String,
    /// Assertion polarity: `true` for active-low (`rst_n`) resets.
    pub active_low: bool,
    /// How it was identified.
    pub evidence: ResetEvidence,
}

/// Identifies the reset signals of `module`.
///
/// A signal qualifies if (a) its name matches the convention and it appears
/// edge-qualified in some sensitivity list, or (b) structurally: it is
/// edge-qualified in a list together with at least one other edge signal
/// and the block's leading conditional tests it. Polarity comes from the
/// edge (negedge → active-low), falling back to the name (`_n`/`n`
/// suffix → active-low).
///
/// # Examples
///
/// ```
/// use soccar_cfg::reset_id::{identify_resets, ResetNaming};
/// use soccar_rtl::{parser::parse, span::FileId};
///
/// let unit = parse(FileId(0), "module m(input clk, input rst_n, output reg q);
///   always @(posedge clk or negedge rst_n)
///     if (!rst_n) q <= 1'b0; else q <= 1'b1;
/// endmodule").expect("parse");
/// let resets = identify_resets(&unit.modules[0], &ResetNaming::new());
/// assert_eq!(resets.len(), 1);
/// assert_eq!(resets[0].name, "rst_n");
/// assert!(resets[0].active_low);
/// ```
#[must_use]
pub fn identify_resets(module: &Module, naming: &ResetNaming) -> Vec<ResetSignal> {
    let mut found: Vec<ResetSignal> = Vec::new();
    let mut note = |name: &str, active_low: bool, evidence: ResetEvidence| {
        if let Some(existing) = found.iter_mut().find(|r| r.name == name) {
            if existing.evidence != evidence {
                existing.evidence = ResetEvidence::Both;
            }
            return;
        }
        found.push(ResetSignal {
            name: name.to_owned(),
            active_low,
            evidence,
        });
    };

    for block in module.always_blocks() {
        let Sensitivity::List(items) = &block.sensitivity else {
            continue;
        };
        let edge_items: Vec<_> = items.iter().filter(|i| i.edge.is_some()).collect();
        for item in &edge_items {
            let active_low = match item.edge {
                Some(Edge::Neg) => true,
                Some(Edge::Pos) => false,
                None => name_suggests_active_low(&item.signal),
            };
            let name_hit = naming.is_reset_name(&item.signal);
            let tested = leading_condition_tests(&block.body, &item.signal);
            let structural_hit =
                edge_items.len() >= 2 && tested && !naming.is_clock_name(&item.signal);
            match (name_hit, structural_hit) {
                (true, true) => note(&item.signal, active_low, ResetEvidence::Both),
                (true, false) => note(&item.signal, active_low, ResetEvidence::Name),
                (false, true) => note(&item.signal, active_low, ResetEvidence::Structural),
                (false, false) => {}
            }
        }
    }
    // Ports that match the naming convention but never appear in a
    // sensitivity list (e.g. resets merely forwarded to children) are
    // reported with Name evidence so domain tracing can follow them.
    for port in &module.ports {
        if naming.is_reset_name(&port.name) && !found.iter().any(|r| r.name == port.name) {
            found.push(ResetSignal {
                name: port.name.clone(),
                active_low: name_suggests_active_low(&port.name),
                evidence: ResetEvidence::Name,
            });
        }
    }
    found
}

/// `true` if the name ends in an active-low marker (`_n`, `_ni`, `n`
/// directly after `rst`/`reset`).
#[must_use]
pub fn name_suggests_active_low(name: &str) -> bool {
    let lower = name.to_ascii_lowercase();
    lower.ends_with("_n")
        || lower.ends_with("_ni")
        || lower.ends_with("resetn")
        || lower.ends_with("rstn")
}

/// Returns `true` if the first statement of `body` (descending through
/// `begin` blocks) is an `if` whose condition tests `signal`.
#[must_use]
pub fn leading_condition_tests(body: &Stmt, signal: &str) -> bool {
    leading_if(body).is_some_and(|(cond, _, _)| cond.is_signal_test(signal))
}

/// Descends through `begin` wrappers to the first `if`, returning
/// `(condition, then, else)`.
#[must_use]
pub fn leading_if(body: &Stmt) -> Option<(&soccar_rtl::ast::Expr, &Stmt, Option<&Stmt>)> {
    match body {
        Stmt::Block { stmts, .. } => stmts.first().and_then(leading_if),
        Stmt::If {
            cond,
            then_stmt,
            else_stmt,
            ..
        } => Some((cond, then_stmt, else_stmt.as_deref())),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soccar_rtl::parser::parse;
    use soccar_rtl::span::FileId;

    fn module(src: &str) -> soccar_rtl::ast::Module {
        let mut unit = parse(FileId(0), src).expect("parse");
        unit.modules.remove(0)
    }

    #[test]
    fn named_active_low_reset() {
        let m = module(
            "module m(input clk, rst_n, output reg q);
               always @(posedge clk or negedge rst_n)
                 if (!rst_n) q <= 1'b0; else q <= 1'b1;
             endmodule",
        );
        let r = identify_resets(&m, &ResetNaming::new());
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].name, "rst_n");
        assert!(r[0].active_low);
        assert_eq!(r[0].evidence, ResetEvidence::Both);
    }

    #[test]
    fn named_active_high_reset() {
        let m = module(
            "module m(input clk, input reset, output reg q);
               always @(posedge clk or posedge reset)
                 if (reset) q <= 1'b0; else q <= 1'b1;
             endmodule",
        );
        let r = identify_resets(&m, &ResetNaming::new());
        assert_eq!(r.len(), 1);
        assert!(!r[0].active_low);
    }

    #[test]
    fn structural_reset_with_odd_name() {
        // `init_b` matches no pattern but is clearly a reset structurally.
        let m = module(
            "module m(input clk, input init_b, output reg q);
               always @(posedge clk or negedge init_b)
                 if (!init_b) q <= 1'b0; else q <= 1'b1;
             endmodule",
        );
        let r = identify_resets(&m, &ResetNaming::new());
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].name, "init_b");
        assert_eq!(r[0].evidence, ResetEvidence::Structural);
        assert!(r[0].active_low);
    }

    #[test]
    fn clock_not_misidentified() {
        let m = module(
            "module m(input clk, rst_n, output reg q);
               always @(posedge clk or negedge rst_n)
                 if (!rst_n) q <= 1'b0; else q <= 1'b1;
             endmodule",
        );
        let r = identify_resets(&m, &ResetNaming::new());
        assert!(r.iter().all(|s| s.name != "clk"));
    }

    #[test]
    fn forwarded_reset_port_reported() {
        // A module that only forwards the reset to a child still reports it.
        let m = module("module hub(input rst_n, input clk); endmodule");
        let r = identify_resets(&m, &ResetNaming::new());
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].name, "rst_n");
        assert_eq!(r[0].evidence, ResetEvidence::Name);
    }

    #[test]
    fn implicit_governor_block_not_structurally_flagged() {
        // The SHA256 bug construct: reset edge alone in the sensitivity
        // list, body gated by the clock level — there is no *leading test
        // of the reset*, so structural evidence does not fire; only the
        // name heuristic sees it.
        let m = module(
            "module m(input clk, sec_rst_n, input [7:0] d, output reg [7:0] q);
               always @(negedge sec_rst_n)
                 if (clk) q <= d;
             endmodule",
        );
        let r = identify_resets(&m, &ResetNaming::new());
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].evidence, ResetEvidence::Name);
    }

    #[test]
    fn leading_if_descends_blocks() {
        let m = module(
            "module m(input clk, rst, output reg q);
               always @(posedge clk or posedge rst) begin
                 if (rst) q <= 1'b0; else q <= 1'b1;
               end
             endmodule",
        );
        let blk = m.always_blocks().next().expect("block");
        assert!(leading_condition_tests(&blk.body, "rst"));
        assert!(!leading_condition_tests(&blk.body, "clk"));
    }

    #[test]
    fn active_low_name_suffixes() {
        assert!(name_suggests_active_low("rst_n"));
        assert!(name_suggests_active_low("po_resetn"));
        assert!(name_suggests_active_low("RSTN"));
        assert!(!name_suggests_active_low("reset"));
        assert!(!name_suggests_active_low("rst_in"));
    }

    #[test]
    fn custom_patterns() {
        let naming = ResetNaming::new().with_patterns(vec!["nuke".into()]);
        assert!(naming.is_reset_name("nuke_all"));
        assert!(!naming.is_reset_name("rst_n"));
    }
}
