//! # soccar-lint
//!
//! Rule-based static analysis over the elaborated design and per-module
//! AR_CFGs — a fast pre-pass that runs before (or instead of) concolic
//! testing and flags reset-domain hazards purely structurally.
//!
//! Concolic testing (Algorithm 3) proves behaviors by simulating them;
//! that is precise but costs simulation rounds and solver calls. Many of
//! the paper's Table III bug classes, however, are visible in the RTL
//! *structure* alone: an operational arm assigning registers the reset arm
//! never clears, an always block governed by a reset it never tests, a
//! reset woven out of combinational logic. The linter catches those in
//! milliseconds and — crucially — catches the implicit-governor construct
//! that defeats the Explicit extraction (Section V-C), so the blind spot
//! is at least *reported* even when the concolic stage would miss it.
//!
//! Rules implement the [`LintRule`] trait and live in a registry
//! ([`Linter`]) with per-rule allow/deny configuration; external crates
//! can plug their own rules in via [`Linter::with_rule`].
//!
//! # Examples
//!
//! ```
//! use soccar_lint::Linter;
//!
//! let report = Linter::new()
//!     .lint_source("t.v", "
//!       module sha(input clk, input rst_n, input [7:0] pt, output reg [7:0] ct);
//!         always @(negedge rst_n)
//!           if (clk) ct <= pt;   // implicit governor: Explicit analysis is blind
//!       endmodule")
//!     .expect("parses");
//! assert!(report
//!     .diagnostics
//!     .iter()
//!     .any(|d| d.rule == "implicit-governor" && d.module == "sha"));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod context;
pub mod diagnostic;
pub mod rules;

use serde::{ser::SerializeStruct as _, Serialize, Serializer};
use soccar_cfg::ResetNaming;
use soccar_rtl::ast::SourceUnit;
use soccar_rtl::span::SourceMap;

pub use context::{LintContext, ModuleView};
pub use diagnostic::{Diagnostic, Severity};
pub use rules::{default_rules, LintRule};

/// Per-rule enable/deny configuration.
#[derive(Debug, Clone, Default)]
pub struct LintConfig {
    /// Rule ids to disable entirely.
    pub allow: Vec<String>,
    /// Rule ids whose findings are escalated to [`Severity::Error`].
    pub deny: Vec<String>,
}

/// The lint rule registry and runner.
pub struct Linter {
    rules: Vec<Box<dyn LintRule>>,
    naming: ResetNaming,
    config: LintConfig,
}

impl std::fmt::Debug for Linter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Linter")
            .field("rules", &self.rules.len())
            .field("config", &self.config)
            .finish()
    }
}

impl Default for Linter {
    fn default() -> Linter {
        Linter::new()
    }
}

impl Linter {
    /// A linter with the built-in rule set and default configuration.
    #[must_use]
    pub fn new() -> Linter {
        Linter {
            rules: default_rules(),
            naming: ResetNaming::new(),
            config: LintConfig::default(),
        }
    }

    /// Replaces the allow/deny configuration.
    #[must_use]
    pub fn with_config(mut self, config: LintConfig) -> Linter {
        self.config = config;
        self
    }

    /// Replaces the reset naming convention.
    #[must_use]
    pub fn with_naming(mut self, naming: ResetNaming) -> Linter {
        self.naming = naming;
        self
    }

    /// Registers an additional rule (external rules plug in here).
    #[must_use]
    pub fn with_rule(mut self, rule: Box<dyn LintRule>) -> Linter {
        self.rules.push(rule);
        self
    }

    /// The registered rules, in registration order.
    pub fn rules(&self) -> impl Iterator<Item = &dyn LintRule> {
        self.rules.iter().map(Box::as_ref)
    }

    /// `true` if `id` names a registered rule.
    #[must_use]
    pub fn is_known_rule(&self, id: &str) -> bool {
        self.rules.iter().any(|r| r.id() == id)
    }

    /// Parses `source` and lints it.
    ///
    /// # Errors
    ///
    /// Returns the parser's message if `source` is not valid input.
    pub fn lint_source(&self, file_name: &str, source: &str) -> Result<LintReport, String> {
        let mut map = SourceMap::new();
        let file = map.add_file(file_name, source);
        let unit = soccar_rtl::parser::parse(file, source).map_err(|e| e.to_string())?;
        Ok(self.lint_unit(&unit, &map))
    }

    /// Lints an already-parsed unit, resolving spans against `map`.
    #[must_use]
    pub fn lint_unit(&self, unit: &SourceUnit, map: &SourceMap) -> LintReport {
        let ctx = LintContext::build(unit, map, &self.naming);
        let mut diagnostics = Vec::new();
        for rule in &self.rules {
            if self.config.allow.iter().any(|a| a == rule.id()) {
                continue;
            }
            let before = diagnostics.len();
            rule.check(&ctx, &mut diagnostics);
            if self.config.deny.iter().any(|d| d == rule.id()) {
                for diag in &mut diagnostics[before..] {
                    diag.severity = Severity::Error;
                }
            }
        }
        for diag in &mut diagnostics {
            diag.location = map.describe(diag.span);
        }
        diagnostics.sort_by(|a, b| {
            b.severity
                .cmp(&a.severity)
                .then_with(|| a.module.cmp(&b.module))
                .then_with(|| a.span.start.cmp(&b.span.start))
                .then_with(|| a.rule.cmp(b.rule))
        });
        LintReport { diagnostics }
    }
}

/// The outcome of one lint run: diagnostics sorted most severe first.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// Findings, sorted by severity (descending), module, position.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// Number of error-level findings.
    #[must_use]
    pub fn errors(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Number of warning-level findings.
    #[must_use]
    pub fn warnings(&self) -> usize {
        self.count(Severity::Warning)
    }

    /// Number of info-level findings.
    #[must_use]
    pub fn infos(&self) -> usize {
        self.count(Severity::Info)
    }

    /// The most severe finding, if any.
    #[must_use]
    pub fn worst(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity).max()
    }

    /// One-line `N error(s), N warning(s), N info` summary.
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "{} error(s), {} warning(s), {} info",
            self.errors(),
            self.warnings(),
            self.infos()
        )
    }
}

impl Serialize for LintReport {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut s = serializer.serialize_struct("LintReport", 4)?;
        s.serialize_field("errors", &self.errors())?;
        s.serialize_field("warnings", &self.warnings())?;
        s.serialize_field("infos", &self.infos())?;
        s.serialize_field("diagnostics", &self.diagnostics)?;
        s.end()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const IMPLICIT: &str =
        "module sha(input clk, input rst_n, input [7:0] pt, output reg [7:0] ct);
        always @(negedge rst_n)
          if (clk) ct <= pt;
      endmodule";

    #[test]
    fn registry_reports_and_sorts() {
        let report = Linter::new().lint_source("t.v", IMPLICIT).expect("parse");
        assert!(!report.diagnostics.is_empty());
        // Sorted most severe first.
        for pair in report.diagnostics.windows(2) {
            assert!(pair[0].severity >= pair[1].severity);
        }
        // Every diagnostic has a resolved location.
        assert!(report
            .diagnostics
            .iter()
            .all(|d| d.location.contains("t.v:")));
    }

    #[test]
    fn allow_disables_a_rule() {
        let config = LintConfig {
            allow: vec!["implicit-governor".into()],
            deny: vec![],
        };
        let report = Linter::new()
            .with_config(config)
            .lint_source("t.v", IMPLICIT)
            .expect("parse");
        assert!(report
            .diagnostics
            .iter()
            .all(|d| d.rule != "implicit-governor"));
    }

    #[test]
    fn deny_escalates_to_error() {
        let config = LintConfig {
            allow: vec![],
            deny: vec!["implicit-governor".into()],
        };
        let report = Linter::new()
            .with_config(config)
            .lint_source("t.v", IMPLICIT)
            .expect("parse");
        let diag = report
            .diagnostics
            .iter()
            .find(|d| d.rule == "implicit-governor")
            .expect("fires");
        assert_eq!(diag.severity, Severity::Error);
    }

    #[test]
    fn external_rules_plug_in() {
        struct ModuleCounter;
        impl LintRule for ModuleCounter {
            fn id(&self) -> &'static str {
                "module-counter"
            }
            fn description(&self) -> &'static str {
                "test rule: one info per module"
            }
            fn default_severity(&self) -> Severity {
                Severity::Info
            }
            fn check(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
                for view in &ctx.modules {
                    out.push(Diagnostic::new(
                        self.id(),
                        self.default_severity(),
                        &view.module.name,
                        view.module.span,
                        "module seen",
                    ));
                }
            }
        }
        let linter = Linter::new().with_rule(Box::new(ModuleCounter));
        assert!(linter.is_known_rule("module-counter"));
        let report = linter.lint_source("t.v", IMPLICIT).expect("parse");
        assert_eq!(
            report
                .diagnostics
                .iter()
                .filter(|d| d.rule == "module-counter")
                .count(),
            1
        );
    }

    #[test]
    fn parse_errors_surface() {
        assert!(Linter::new().lint_source("t.v", "module broken(").is_err());
    }
}
