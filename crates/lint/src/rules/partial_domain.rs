//! `partial-reset-domain` — registers split between reset-governed and
//! never-reset.
//!
//! Two findings, in decreasing severity:
//!
//! 1. **Error** — inside one guarded block, a register assigned in the
//!    operational arm but not in the reset arm: reset leaves it holding
//!    pre-reset (possibly secret) state. This is exactly the paper's
//!    Table III *information leakage* class, and the construct the
//!    `LeakExplicit` bug seeds (`key_reg`/`pt_reg` not scrubbed).
//! 2. **Info** — a module that is otherwise reset-governed also contains
//!    clocked registers with no reset at all. Sometimes deliberate
//!    (verification monitors), but worth surfacing because those
//!    registers silently escape every reset-domain property.

use std::collections::BTreeSet;

use soccar_cfg::{assigned_signals, EventArm};

use crate::context::LintContext;
use crate::diagnostic::{Diagnostic, Severity};
use crate::rules::LintRule;

/// See the module docs.
#[derive(Debug, Clone, Copy, Default)]
pub struct PartialResetDomain;

impl LintRule for PartialResetDomain {
    fn id(&self) -> &'static str {
        "partial-reset-domain"
    }

    fn description(&self) -> &'static str {
        "registers split between reset-governed and never-reset"
    }

    fn default_severity(&self) -> Severity {
        Severity::Error
    }

    fn check(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        for view in &ctx.modules {
            // Finding 1: operational-arm registers the reset arm misses.
            for reset_ev in &view.cfg.events {
                if reset_ev.arm != EventArm::ResetArm {
                    continue;
                }
                let Some(governor) = &reset_ev.governor else {
                    continue;
                };
                let Some(op_ev) = view.cfg.events.iter().find(|e| {
                    e.always_index == reset_ev.always_index && e.arm == EventArm::OperationalArm
                }) else {
                    continue;
                };
                let cleared: BTreeSet<&str> =
                    reset_ev.assigned.iter().map(String::as_str).collect();
                let missing: Vec<&str> = op_ev
                    .assigned
                    .iter()
                    .map(String::as_str)
                    .filter(|s| !cleared.contains(s))
                    .collect();
                if !missing.is_empty() {
                    out.push(Diagnostic::new(
                        self.id(),
                        self.default_severity(),
                        &view.module.name,
                        op_ev.span,
                        format!(
                            "register(s) {} are assigned in the operational arm but not \
                             in the `{}` reset arm; reset leaves them holding pre-reset \
                             state",
                            name_list(&missing),
                            governor.reset
                        ),
                    ));
                }
            }

            // Finding 2: never-reset registers in a reset-governed module.
            let governed: BTreeSet<String> = view
                .module
                .always_blocks()
                .filter(|b| !view.async_resets_of(b).is_empty())
                .flat_map(|b| assigned_signals(&b.body))
                .collect();
            if governed.is_empty() {
                continue;
            }
            for block in view.module.always_blocks() {
                if block.is_combinational() || !view.async_resets_of(block).is_empty() {
                    continue;
                }
                let unreset: Vec<String> = assigned_signals(&block.body)
                    .into_iter()
                    .filter(|s| !governed.contains(s))
                    .collect();
                if !unreset.is_empty() {
                    let unreset: Vec<&str> = unreset.iter().map(String::as_str).collect();
                    out.push(Diagnostic::new(
                        self.id(),
                        Severity::Info,
                        &view.module.name,
                        block.span,
                        format!(
                            "register(s) {} are clocked but never reset while the rest \
                             of the module is reset-governed; they escape every \
                             reset-domain property",
                            name_list(&unreset)
                        ),
                    ));
                }
            }
        }
    }
}

fn name_list(names: &[&str]) -> String {
    names
        .iter()
        .map(|n| format!("`{n}`"))
        .collect::<Vec<_>>()
        .join(", ")
}
