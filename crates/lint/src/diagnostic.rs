//! Span-carrying, severity-ranked lint diagnostics.

use std::fmt;

use serde::{ser::SerializeStruct as _, Serialize, Serializer};
use soccar_rtl::span::Span;

/// How serious a finding is. Ordered: `Info < Warning < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Style / hygiene observation; no functional risk established.
    Info,
    /// Likely defect or construct known to defeat downstream analyses.
    Warning,
    /// Structural reset-domain violation.
    Error,
}

impl Severity {
    /// Lower-case label used in text and JSON output.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl Serialize for Severity {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self.label())
    }
}

/// One lint finding, anchored to a source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable rule identifier (e.g. `async-reset-unsynchronized`).
    pub rule: &'static str,
    /// Severity after any registry overrides.
    pub severity: Severity,
    /// Module the finding is in.
    pub module: String,
    /// Source anchor.
    pub span: Span,
    /// Resolved `file:line:col`, filled in by the lint runner.
    pub location: String,
    /// Human-readable description of the finding.
    pub message: String,
}

impl Diagnostic {
    /// Creates a diagnostic with an unresolved location (the runner
    /// resolves spans against its [`soccar_rtl::span::SourceMap`]).
    #[must_use]
    pub fn new(
        rule: &'static str,
        severity: Severity,
        module: impl Into<String>,
        span: Span,
        message: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            rule,
            severity,
            module: module.into(),
            span,
            location: String::new(),
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {} (module `{}`): {}",
            self.severity, self.rule, self.location, self.module, self.message
        )
    }
}

impl Serialize for Diagnostic {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut s = serializer.serialize_struct("Diagnostic", 5)?;
        s.serialize_field("rule", &self.rule)?;
        s.serialize_field("severity", &self.severity)?;
        s.serialize_field("module", &self.module)?;
        s.serialize_field("location", &self.location)?;
        s.serialize_field("message", &self.message)?;
        s.end()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_and_labels() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
        assert_eq!(Severity::Error.label(), "error");
    }

    #[test]
    fn display_carries_all_context() {
        let mut d = Diagnostic::new(
            "some-rule",
            Severity::Warning,
            "aes",
            Span::dummy(),
            "something looks off",
        );
        d.location = "t.v:3:1".into();
        assert_eq!(
            d.to_string(),
            "warning[some-rule] t.v:3:1 (module `aes`): something looks off"
        );
    }
}
