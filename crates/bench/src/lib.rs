//! # soccar-bench
//!
//! The benchmark harness: one binary per table/figure of the SoCCAR paper
//! (see DESIGN.md §4 for the experiment index), shared configuration
//! helpers, and the random-fuzzing baseline used by the ablation bench.
//!
//! Run `cargo run --release -p soccar-bench --bin <target>` with target one
//! of: `table1`, `table2`, `table3`, `table4`, `detection`, `figure1`,
//! `figure2`, `ablation_governor`, `ablation_init`, `ablation_baseline`.

#![warn(missing_docs)]

use std::collections::BTreeSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use soccar::evaluation::VariantEvaluation;
use soccar::{Soccar, SoccarConfig};
use soccar_concolic::{ConcolicConfig, PropertyMonitor, SecurityProperty, Violation};
use soccar_lint::{Diagnostic, Linter};
use soccar_rtl::value::LogicVec;
use soccar_sim::{InitPolicy, Simulator};
use soccar_soc::GenSpec;
use soccar_soc::{SocDesign, SocModel};

/// The evaluation configuration used by all detection benches: paper
/// policy (all-ones registers), a 16-cycle horizon, a full sweep.
#[must_use]
pub fn paper_config() -> SoccarConfig {
    SoccarConfig {
        concolic: ConcolicConfig {
            cycles: 16,
            max_rounds: 6,
            sweep_stride: 1,
            init: InitPolicy::Ones,
            ..ConcolicConfig::default()
        },
        ..SoccarConfig::default()
    }
}

/// The reduced-rounds configuration of the CI `bench-smoke` job: a
/// shorter horizon and a strided sweep, tuned so the full variant matrix
/// finishes in seconds while still detecting every bug the full
/// configuration detects. Deterministic like every other configuration,
/// so smoke-mode `BENCH_*.json` counters can be gated exactly against
/// the baselines in `crates/bench/baselines/`.
#[must_use]
pub fn smoke_config() -> SoccarConfig {
    SoccarConfig {
        concolic: ConcolicConfig {
            cycles: 10,
            max_rounds: 3,
            sweep_stride: 3,
            init: InitPolicy::Ones,
            ..ConcolicConfig::default()
        },
        ..SoccarConfig::default()
    }
}

/// The pinned configuration of the `stress` bench binary: the
/// generated-corpus recall oracle and scale records run under one fixed
/// configuration — independent of smoke/full mode — so the
/// `BENCH_gen_*.json` counters are one fixed point across every
/// invocation. Matches the reduced-rounds smoke budget (the generated
/// designs are bigger than the bundled SoCs; the budget already
/// detects every seeded bug, see `tests/gen_recall.rs`).
#[must_use]
pub fn stress_config() -> SoccarConfig {
    SoccarConfig {
        analysis: soccar_cfg::GovernorAnalysis::Explicit,
        concolic: ConcolicConfig {
            cycles: 10,
            max_rounds: 3,
            sweep_stride: 3,
            init: InitPolicy::Ones,
            // Pinned rather than env-derived: the gated `smt.*` counters
            // differ between solver strategies (the canonical *report*
            // does not), so the baseline must depend on neither
            // `SOCCAR_INCREMENTAL` nor `SOCCAR_PORTFOLIO` — nor on the
            // solver-speed escape hatches below.
            incremental: true,
            portfolio: false,
            bve: true,
            clause_sharing: true,
            trail_reuse: true,
            ..ConcolicConfig::default()
        },
        jobs: 1,
        ..SoccarConfig::default()
    }
}

/// The ~10x stress point: scale 15 ⇒ 11·15 + 4 = 169 generated modules,
/// more than ten times ClusterSoC's 16. Analyzed in full by the stress
/// tier with detection recall gated against the ground-truth manifest.
pub const STRESS_X10: GenSpec = GenSpec {
    seed: 11,
    scale: 15,
};

/// The ~50x stress point: scale 73 ⇒ 11·73 + 4 = 807 generated modules.
/// Too large for a full concolic sweep in CI budget — the stress tier
/// runs the lint pre-pass (implicit-bug recall gated) and the frozen
/// flip-workload clause-reuse probe on it instead.
pub const STRESS_X50: GenSpec = GenSpec {
    seed: 11,
    scale: 73,
};

/// Evaluates one generated design and folds the outcome into a bench
/// variant: manifest recall (`bugs`, `detected`, `missed`,
/// `false_alarms`), topology facts (`gen.modules`, `gen.clusters`,
/// `gen.reset_domains`, `gen.bugs`), and the usual concolic counters —
/// all gated. The quantized wall-clock rides along as `seconds_q`
/// (reported, never gated).
///
/// # Panics
///
/// Panics if the generated design fails to evaluate (generated designs
/// always elaborate — that is a library invariant, not a bench knob).
#[must_use]
pub fn gen_recall_variant(spec: &GenSpec, config: &SoccarConfig) -> soccar_obs::BenchVariant {
    let recorder = soccar_obs::Recorder::enabled();
    let (eval, elapsed) = recorder.time("bench.gen_recall", || {
        soccar::evaluate_generated_traced(spec, config.clone(), recorder.clone())
            .expect("generated designs always evaluate")
    });
    let snap = recorder.snapshot();
    let trace = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
    let c = &eval.report.concolic;
    let mut counters = std::collections::BTreeMap::new();
    for (name, value) in [
        ("bugs", eval.recall.total as u64),
        ("detected", eval.recall.detected as u64),
        ("missed", eval.recall.missed.len() as u64),
        ("false_alarms", eval.recall.false_alarms as u64),
        ("gen.modules", u64::from(eval.manifest.modules)),
        ("gen.clusters", u64::from(spec.scale)),
        ("gen.reset_domains", u64::from(eval.manifest.reset_domains)),
        ("gen.bugs", eval.manifest.bugs.len() as u64),
        ("rounds", c.rounds as u64),
        ("solver_calls", c.solver_calls as u64),
        ("solver_sat", c.solver_sat as u64),
        ("targets_covered", c.targets_covered as u64),
        ("targets_total", c.targets_total as u64),
        // The trace-level solver counters ride along with the report's
        // own `solver_calls` (every issued flip query): `smt.queries`
        // counts the actual SAT invocations the solver front-end saw.
        ("smt.queries", trace("smt.queries")),
        ("smt.sat", trace("smt.sat")),
        ("smt.clauses_reused", trace("smt.clauses_reused")),
        ("flip_candidates", trace("concolic.flip_candidates")),
    ] {
        counters.insert(name.to_owned(), value);
    }
    soccar_obs::BenchVariant {
        variant: spec.name(),
        counters,
        timings_q: std::collections::BTreeMap::new(),
        seconds_q: soccar_obs::quantize_seconds(elapsed.as_secs_f64()),
    }
}

/// The pinned-sweep recall report (`BENCH_gen_sweep.json`): one gated
/// record per [`soccar_soc::generate::pinned_sweep`] design. A recall
/// regression shows up as a `detected`/`missed` counter diff naming the
/// exact `gen:<seed>:<scale>` design to reproduce.
///
/// # Panics
///
/// Panics if any sweep design misses a manifest bug or raises a false
/// alarm — the stress tier must fail loudly even before the baseline
/// diff runs.
#[must_use]
pub fn gen_sweep_report(config: &SoccarConfig) -> soccar_obs::BenchReport {
    let mut variants = Vec::new();
    for spec in soccar_soc::generate::pinned_sweep() {
        let v = gen_recall_variant(&spec, config);
        assert_eq!(
            v.counters["missed"],
            0,
            "{}: manifest bugs went undetected (recall gate)",
            spec.name()
        );
        assert_eq!(
            v.counters["false_alarms"],
            0,
            "{}: violations outside the manifest's detector set",
            spec.name()
        );
        variants.push(v);
    }
    soccar_obs::BenchReport {
        soc: "gen_sweep".to_owned(),
        mode: "stress".to_owned(),
        variants,
    }
}

/// Flip-candidate cap of the x10 `flip_timing` record: deep enough into
/// the generated window that assumption prefixes repeat (so trail reuse
/// has prefixes to keep), small enough to keep the stress tier in
/// budget.
const GEN_X10_FLIP_CAP: usize = 512;

/// The `flip_timing` record on the `gen:11:15` x10 stress design: the
/// frozen flip workload solved incrementally with the solver-speed
/// passes pinned on, against a floor-backtracking control with trail
/// reuse disabled. `flip_incremental_q` / `flip_trail_reuse_q` timings
/// are reported only; the solver counters — including
/// `smt.eliminated_vars`, `smt.trail_reused`, and the derived
/// `trail_reuse_engaged` flag — are gated at their measured values, so
/// a change in whether the passes engage at generated scale trips the
/// baseline, not an assumption.
///
/// # Panics
///
/// Panics if trail reuse changes any flip answer — reuse is a pure
/// optimization, never a semantics knob.
#[must_use]
pub fn gen_x10_flip_record() -> soccar_obs::BenchVariant {
    let soc = soccar_soc::generate::generate(&STRESS_X10);
    // Pinned rather than env-derived, like every gated record: the
    // counters below differ across the solver-speed CI legs.
    let concolic = ConcolicConfig {
        cycles: 10,
        seed: 7,
        symbolic_inputs: soc.symbolic.clone(),
        bve: true,
        clause_sharing: true,
        trail_reuse: true,
        ..ConcolicConfig::default()
    };
    let workload = custom_flip_workload(&soc.source, &soc.top, concolic);
    let cap = GEN_X10_FLIP_CAP;
    let recorder = soccar_obs::Recorder::disabled();
    // One warm-up pass, then the best of a few runs, per timing side.
    let time_best = |w: &soccar_concolic::FlipWorkload| {
        let (sat, mut best) = recorder.time("bench.gen_x10.flip_warmup", || {
            w.solve_incremental(cap, &recorder)
        });
        for _ in 0..2 {
            let (again, t) = recorder.time("bench.gen_x10.flip_run", || {
                w.solve_incremental(cap, &recorder)
            });
            assert_eq!(sat, again, "gen_x10: flip solving is not deterministic");
            best = best.min(t);
        }
        (sat, best)
    };
    let (sat, incremental) = time_best(&workload);
    let control = workload.clone().with_trail_reuse(false);
    let (control_sat, trail_reuse_off) = time_best(&control);
    assert_eq!(
        sat, control_sat,
        "gen_x10: trail reuse changed a flip answer"
    );
    // One separately counted pass feeds the gated counters.
    let counted = soccar_obs::Recorder::enabled();
    assert_eq!(workload.solve_incremental(cap, &counted), sat);
    let snap = counted.snapshot();
    let counter = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
    let mut counters = std::collections::BTreeMap::new();
    counters.insert(
        "flip_candidates".to_owned(),
        workload.candidates(cap) as u64,
    );
    counters.insert("flip_sat".to_owned(), sat as u64);
    counters.insert(
        "trail_reuse_engaged".to_owned(),
        u64::from(counter("smt.trail_reused") > 0),
    );
    for name in [
        "smt.incremental_calls",
        "smt.blast_cache_hits",
        "smt.clauses_reused",
        "smt.eliminated_vars",
        "smt.trail_reused",
    ] {
        counters.insert(name.to_owned(), counter(name));
    }
    let mut timings_q = std::collections::BTreeMap::new();
    timings_q.insert(
        "flip_incremental_q".to_owned(),
        soccar_obs::quantize_seconds(incremental.as_secs_f64()),
    );
    timings_q.insert(
        "flip_trail_reuse_q".to_owned(),
        soccar_obs::quantize_seconds(trail_reuse_off.as_secs_f64()),
    );
    soccar_obs::BenchVariant {
        variant: format!("{} flip_timing", soc.name),
        counters,
        timings_q,
        seconds_q: soccar_obs::quantize_seconds((incremental + trail_reuse_off).as_secs_f64()),
    }
}

/// The 10x-scale report (`BENCH_gen_x10.json`): [`STRESS_X10`] analyzed
/// in full, plus the [`gen_x10_flip_record`] solver-speed timing on the
/// same design. Gated like the sweep, plus the ISSUE 7 acceptance floor
/// asserted directly: ≥160 modules and at least one real solver call
/// per concolic round.
///
/// # Panics
///
/// Panics on a recall miss, a false alarm, fewer than 160 modules, or a
/// round that drove no solver call.
#[must_use]
pub fn gen_x10_report(config: &SoccarConfig) -> soccar_obs::BenchReport {
    let v = gen_recall_variant(&STRESS_X10, config);
    assert!(
        v.counters["gen.modules"] >= 160,
        "the 10x stress design shrank below 10x ClusterSoC ({} modules)",
        v.counters["gen.modules"]
    );
    assert_eq!(v.counters["missed"], 0, "10x recall gate");
    assert_eq!(v.counters["false_alarms"], 0, "10x false-alarm gate");
    // ≥1 real solver call per concolic (flip-planning) round. The
    // report's `solver_calls` now counts every issued flip query
    // (consumed or speculative), so the gate reads it directly.
    let flip_rounds = config.concolic.max_rounds as u64;
    assert!(
        v.counters["solver_calls"] >= flip_rounds && v.counters["flip_candidates"] > 0,
        "the 10x design must drive ≥1 real solver call per round \
         ({} calls / {} candidates over {} flip rounds)",
        v.counters["solver_calls"],
        v.counters["flip_candidates"],
        flip_rounds
    );
    soccar_obs::BenchReport {
        soc: "gen_x10".to_owned(),
        mode: "stress".to_owned(),
        variants: vec![v, gen_x10_flip_record()],
    }
}

/// The 50x-scale report (`BENCH_gen_x50.json`) — two records on
/// [`STRESS_X50`]:
///
/// * `lint_recall`: the lint pre-pass over all ~800 modules, with the
///   manifest's implicit (lint-stage) bugs gated fully flagged;
/// * `clause_reuse_probe`: the frozen flip workload solved
///   incrementally, answering whether larger generated flip windows
///   reuse clauses on a *real* workload (the synthetic
///   [`clause_reuse_record`] design was built because the bundled SoCs'
///   windows are too shallow). The answer is **recorded either way** —
///   `clause_reuse_engaged` is gated at its measured value, not
///   asserted non-zero — so a future change in either direction trips
///   the baseline, not an assumption.
///
/// Measured answer (recorded in the baseline): learnt-clause reuse does
/// **not** scale with the frozen window. At scale 73 the probe reuses
/// none, because every capped solve localizes to its own candidate cone
/// through the assumption literals and completes conflict-free — there
/// are no learnt clauses to carry (and the probe's engine passes no
/// property monitors, so its windows carry no check obligations
/// either). The real-workload reuse evidence at scale lives in the
/// full-pipeline x10 record instead, where cross-round window
/// accumulation — check obligations included — reuses clauses by the
/// million (see `smt.clauses_reused` in `BENCH_gen_x10.json`).
///
/// # Panics
///
/// Panics if a manifest lint-stage bug goes unflagged.
#[must_use]
pub fn gen_x50_report() -> soccar_obs::BenchReport {
    let soc = soccar_soc::generate::generate(&STRESS_X50);
    let recorder = soccar_obs::Recorder::disabled();

    // Lint recall over the whole generated corpus at 50x.
    let (diagnostics, lint_elapsed) =
        recorder.time("bench.gen_x50.lint", || lint_soc("gen_x50.v", &soc.source));
    let flagged: BTreeSet<&str> = diagnostics
        .iter()
        .filter(|d| d.rule == "implicit-governor")
        .map(|d| d.module.as_str())
        .collect();
    let implicit: Vec<_> = soc.manifest.bugs.iter().filter(|b| b.implicit).collect();
    for bug in &implicit {
        assert!(
            flagged.contains(bug.module.as_str()),
            "{}: implicit bug in `{}` not flagged by implicit-governor",
            soc.name,
            bug.module
        );
    }
    let mut lint_counters = std::collections::BTreeMap::new();
    lint_counters.insert("gen.modules".to_owned(), u64::from(soc.manifest.modules));
    lint_counters.insert("lint.implicit_bugs".to_owned(), implicit.len() as u64);
    lint_counters.insert(
        "lint.implicit_flagged".to_owned(),
        implicit
            .iter()
            .filter(|b| flagged.contains(b.module.as_str()))
            .count() as u64,
    );
    lint_counters.insert("lint.diagnostics".to_owned(), diagnostics.len() as u64);
    let lint_variant = soccar_obs::BenchVariant {
        variant: format!("{} lint_recall", soc.name),
        counters: lint_counters,
        timings_q: std::collections::BTreeMap::new(),
        seconds_q: soccar_obs::quantize_seconds(lint_elapsed.as_secs_f64()),
    };

    // Clause-reuse probe on the real 50x flip workload. The solver-speed
    // knobs are pinned on so the gated counters — `smt.eliminated_vars`,
    // `smt.trail_reused`, and the derived engagement flags — are one
    // fixed point across the `SOCCAR_BVE` / `SOCCAR_TRAIL_REUSE` legs.
    let concolic = ConcolicConfig {
        cycles: 10,
        seed: 7,
        symbolic_inputs: soc.symbolic.clone(),
        bve: true,
        clause_sharing: true,
        trail_reuse: true,
        ..ConcolicConfig::default()
    };
    let workload = custom_flip_workload(&soc.source, &soc.top, concolic);
    // Deep enough into the 13k-candidate window that SAT flips appear
    // (the first ~2k candidates are all UNSAT at this scale), small
    // enough to keep the probe in milliseconds.
    let cap = 2048;
    let probe_recorder = soccar_obs::Recorder::enabled();
    let (sat, probe_elapsed) = probe_recorder.time("bench.gen_x50.probe", || {
        workload.solve_incremental(cap, &probe_recorder)
    });
    let snap = probe_recorder.snapshot();
    let counter = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
    let reused = counter("smt.clauses_reused");
    let mut probe_counters = std::collections::BTreeMap::new();
    probe_counters.insert(
        "flip_candidates".to_owned(),
        workload.candidates(cap) as u64,
    );
    probe_counters.insert("flip_sat".to_owned(), sat as u64);
    probe_counters.insert("clause_reuse_engaged".to_owned(), u64::from(reused > 0));
    probe_counters.insert(
        "trail_reuse_engaged".to_owned(),
        u64::from(counter("smt.trail_reused") > 0),
    );
    for name in [
        "smt.incremental_calls",
        "smt.blast_cache_hits",
        "smt.clauses_reused",
        "smt.eliminated_vars",
        "smt.trail_reused",
    ] {
        probe_counters.insert(name.to_owned(), counter(name));
    }
    let probe_variant = soccar_obs::BenchVariant {
        variant: format!("{} clause_reuse_probe", soc.name),
        counters: probe_counters,
        timings_q: std::collections::BTreeMap::new(),
        seconds_q: soccar_obs::quantize_seconds(probe_elapsed.as_secs_f64()),
    };

    soccar_obs::BenchReport {
        soc: "gen_x50".to_owned(),
        mode: "stress".to_owned(),
        variants: vec![lint_variant, probe_variant],
    }
}

/// Generates a benchmark SoC (the clean baseline when `variant` is
/// `None`) and compiles it to an elaborated design — the boilerplate
/// shared by every bench binary.
///
/// # Panics
///
/// Panics if the design fails to compile (the bundled benchmarks always
/// compile; bench binaries are driver code, not a library API).
#[must_use]
pub fn compile_soc(model: SocModel, variant: Option<u32>) -> (SocDesign, soccar_rtl::Design) {
    let soc = soccar_soc::generate(model, variant);
    let (design, _) =
        soccar_rtl::compile("soc.v", &soc.source, &soc.top).expect("benchmark SoCs always compile");
    (soc, design)
}

/// Lints generated SoC source.
///
/// # Panics
///
/// Panics on parse failure (the bundled benchmarks always parse).
#[must_use]
pub fn lint_soc(name: &str, source: &str) -> Vec<Diagnostic> {
    Linter::new()
        .lint_source(name, source)
        .expect("benchmark SoCs always parse")
        .diagnostics
}

/// A diagnostic's identity for clean/seeded diffing, ignoring location
/// (line numbers shift when bugs are seeded).
#[must_use]
pub fn diagnostic_key(d: &Diagnostic) -> (String, String, String) {
    (d.rule.to_owned(), d.module.clone(), d.message.clone())
}

/// Lints a bug-seeded variant *differentially*: the clean baseline of
/// the same SoC is linted too, and only diagnostics absent from the
/// baseline are returned. Some rules intentionally fire on idioms the
/// clean benchmarks contain (e.g. the never-reset `pt_shadow` monitors);
/// the diff isolates what the seeded bugs themselves introduce.
#[must_use]
pub fn differential_lint(model: SocModel, variant: u32) -> Vec<Diagnostic> {
    let clean = soccar_soc::generate(model, None);
    let seeded = soccar_soc::generate(model, Some(variant));
    let baseline: BTreeSet<_> = lint_soc("clean.v", &clean.source)
        .iter()
        .map(diagnostic_key)
        .collect();
    lint_soc("seeded.v", &seeded.source)
        .into_iter()
        .filter(|d| !baseline.contains(&diagnostic_key(d)))
        .collect()
}

/// Evaluates every bug-seeded benchmark variant under [`paper_config`],
/// fanning the independent runs across `jobs` workers (`0` = auto, see
/// [`soccar_exec::resolve_jobs`]). Each run keeps its inner pipeline
/// serial — the parallelism budget is spent at the variant level, where
/// the work units are largest. Results come back in
/// [`soccar_soc::variants`] order for every job count.
///
/// # Panics
///
/// Panics if a benchmark variant fails to evaluate.
#[must_use]
pub fn evaluate_all_variants(jobs: usize) -> (Vec<VariantEvaluation>, soccar_exec::PoolStats) {
    evaluate_all_variants_config(jobs, &paper_config())
}

/// [`evaluate_all_variants`] under an explicit configuration (the smoke
/// mode of the CI bench job passes [`smoke_config`]).
///
/// # Panics
///
/// Panics if a benchmark variant fails to evaluate.
#[must_use]
pub fn evaluate_all_variants_config(
    jobs: usize,
    config: &SoccarConfig,
) -> (Vec<VariantEvaluation>, soccar_exec::PoolStats) {
    let specs = soccar_soc::variants();
    soccar_exec::parallel_map_stats(jobs, &specs, |spec| {
        let mut config = config.clone();
        config.jobs = 1;
        soccar::evaluate_variant(spec, config).expect("benchmark variants always evaluate")
    })
}

/// Folds a variant sweep into one [`soccar_obs::BenchReport`] per SoC
/// model, in model order, with the per-variant detection counters the CI
/// gate compares exactly: `detected`, `bugs`, `false_alarms`, `rounds`,
/// `solver_calls`, `solver_sat`, `targets_covered`, `targets_total`, and
/// the resilience counters `resilience.solver_unknown`,
/// `resilience.flips_failed`, `resilience.degraded_rounds` (all zero on
/// a healthy run — the gate catches a build that silently starts
/// degrading). The quantized verification time rides along as
/// `seconds_q` (reported, never gated).
///
/// `evals` must be in [`soccar_soc::variants`] order (what
/// [`evaluate_all_variants`] returns).
#[must_use]
pub fn bench_reports(evals: &[VariantEvaluation], mode: &str) -> Vec<soccar_obs::BenchReport> {
    let specs = soccar_soc::variants();
    assert_eq!(specs.len(), evals.len(), "one evaluation per variant spec");
    let mut reports: Vec<soccar_obs::BenchReport> = Vec::new();
    for (spec, eval) in specs.iter().zip(evals) {
        let soc = format!("{:?}", spec.soc).to_lowercase();
        if reports.last().map(|r| r.soc.as_str()) != Some(soc.as_str()) {
            reports.push(soccar_obs::BenchReport {
                soc,
                mode: mode.to_owned(),
                variants: Vec::new(),
            });
        }
        let mut counters = std::collections::BTreeMap::new();
        let c = &eval.report.concolic;
        for (name, value) in [
            ("detected", eval.detected() as u64),
            ("bugs", eval.outcomes.len() as u64),
            ("false_alarms", eval.false_alarms.len() as u64),
            ("rounds", c.rounds as u64),
            ("solver_calls", c.solver_calls as u64),
            ("solver_sat", c.solver_sat as u64),
            ("targets_covered", c.targets_covered as u64),
            ("targets_total", c.targets_total as u64),
            ("resilience.solver_unknown", c.solver_unknown as u64),
            ("resilience.flips_failed", c.flips_failed as u64),
            ("resilience.degraded_rounds", c.degraded_rounds as u64),
        ] {
            counters.insert(name.to_owned(), value);
        }
        reports
            .last_mut()
            .expect("pushed above")
            .variants
            .push(soccar_obs::BenchVariant {
                variant: eval.variant.clone(),
                counters,
                timings_q: std::collections::BTreeMap::new(),
                seconds_q: soccar_obs::quantize_seconds(eval.verification_time().as_secs_f64()),
            });
    }
    reports
}

/// Builds the frozen one-round [`soccar_concolic::FlipWorkload`] for a
/// bundled SoC under `config` — the shared input of the `flip_solving`
/// benchmark (one-shot vs incremental flip solving on identical state).
///
/// # Panics
///
/// Panics if the bundled SoC fails to compile or simulate (bench driver
/// code, not a library API).
#[must_use]
pub fn flip_workload(model: SocModel, config: &SoccarConfig) -> soccar_concolic::FlipWorkload {
    let soc = soccar_soc::generate(model, None);
    let unit = soccar_rtl::parser::parse(soccar_rtl::span::FileId(0), &soc.source)
        .expect("benchmark SoCs always parse");
    let design =
        soccar_rtl::elaborate::elaborate(&unit, &soc.top).expect("benchmark SoCs always elaborate");
    let arcfg = soccar_cfg::compose_soc(
        &unit,
        &soc.top,
        &soccar_cfg::ResetNaming::new(),
        config.analysis,
    )
    .expect("benchmark SoCs always compose");
    let bound = soccar_cfg::bind_events(&design, &arcfg).expect("benchmark SoCs always bind");
    let mut concolic = config.concolic.clone();
    concolic.symbolic_inputs = soccar_soc::symbolic_inputs(model);
    // The catalog security checks ride along so the frozen round records
    // its symbolic check obligations — the window content the
    // `flip_solving` record's `smt.clauses_reused` gate measures.
    let properties: Vec<SecurityProperty> = soccar_soc::security_checks(model)
        .iter()
        .map(soccar::property_of)
        .collect();
    let mut engine = soccar_concolic::ConcolicEngine::new(&design, &bound, properties, concolic)
        .expect("benchmark SoCs always build an engine");
    engine
        .flip_workload()
        .expect("benchmark SoCs always simulate")
}

/// Outcome of one `flip_solving` comparison: the synthetic bench variant
/// recorded into `BENCH_<soc>.json` plus the raw (unquantized) timings
/// for speedup reporting.
#[derive(Debug, Clone)]
pub struct FlipSolvingRecord {
    /// The `flip_solving` record appended to the SoC's bench report:
    /// deterministic counters (`flip_candidates`, `flip_sat`,
    /// `smt.incremental_calls`, `smt.blast_cache_hits`,
    /// `smt.clauses_reused`, `smt.eliminated_vars`, `smt.trail_reused`)
    /// are gated; `flip_oneshot_q` / `flip_incremental_q` /
    /// `flip_trail_reuse_q` timings are reported only.
    pub variant: soccar_obs::BenchVariant,
    /// Wall-clock of the one-shot pass.
    pub oneshot: std::time::Duration,
    /// Wall-clock of the incremental pass (trail reuse on).
    pub incremental: std::time::Duration,
    /// Wall-clock of the incremental control pass with trail reuse
    /// disabled — the floor-backtracking baseline `flip_incremental_q`
    /// is compared against.
    pub trail_reuse_off: std::time::Duration,
}

impl FlipSolvingRecord {
    /// One-shot time over incremental time — the headline win.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.oneshot.as_secs_f64() / self.incremental.as_secs_f64().max(1e-9)
    }

    /// Floor-backtracking time over trail-reuse time — the trail-reuse
    /// win inside the incremental strategy.
    #[must_use]
    pub fn trail_reuse_speedup(&self) -> f64 {
        self.trail_reuse_off.as_secs_f64() / self.incremental.as_secs_f64().max(1e-9)
    }
}

/// How many flip candidates the `flip_solving` benchmark solves per SoC.
/// Large enough that the shared path prefix dominates and the window
/// spans gate-bearing branch conditions (comparisons, not just 1-bit
/// guards), small enough that the one-shot (quadratic re-blasting) side
/// stays in benchmark budget.
pub const FLIP_SOLVING_CAP: usize = 256;

/// Runs the `flip_solving` comparison for one SoC model: solves the same
/// frozen flip candidates one-shot and incrementally, asserts the SAT
/// counts agree, and returns the bench record.
///
/// # Panics
///
/// Panics if the strategies disagree on any SAT count (that would be an
/// incremental-solver soundness bug, not a perf regression), or if the
/// incremental window reused no clauses — the bundled SoCs' windows carry
/// check-obligation clauses precisely so this stays observable.
#[must_use]
pub fn flip_solving_record(model: SocModel, config: &SoccarConfig) -> FlipSolvingRecord {
    // Pinned rather than env-derived: the gated counters below include
    // `smt.eliminated_vars` and `smt.trail_reused`, which differ across
    // the `SOCCAR_BVE` / `SOCCAR_TRAIL_REUSE` CI legs.
    let mut config = config.clone();
    config.concolic.bve = true;
    config.concolic.clause_sharing = true;
    config.concolic.trail_reuse = true;
    let workload = flip_workload(model, &config);
    let cap = FLIP_SOLVING_CAP;
    // Criterion-style timing: one warm-up pass, then the best of a few
    // runs (the timings are reported, never gated, so "best" beats "one
    // noisy sample"). The span API is the one timing code path (see
    // `detection.rs`).
    let recorder = soccar_obs::Recorder::disabled();
    let time_best = |f: &dyn Fn() -> usize| {
        let (sat, mut best) = recorder.time("bench.flip_solving.warmup", f);
        for _ in 0..4 {
            let (again, t) = recorder.time("bench.flip_solving.run", f);
            assert_eq!(sat, again, "{model:?}: flip solving is not deterministic");
            best = best.min(t);
        }
        (sat, best)
    };
    let (oneshot_sat, oneshot) = time_best(&|| workload.solve_oneshot(cap, &recorder));
    let (incremental_sat, incremental) = time_best(&|| workload.solve_incremental(cap, &recorder));
    assert_eq!(
        oneshot_sat, incremental_sat,
        "{model:?}: one-shot and incremental flip solving disagreed"
    );
    // The floor-backtracking control: the same incremental pass with
    // trail reuse disabled. Its timing rides along as
    // `flip_trail_reuse_q`, so the reuse win stays measured, and its
    // SAT count must agree — trail reuse never changes an answer.
    let control = workload.clone().with_trail_reuse(false);
    let (control_sat, trail_reuse_off) = time_best(&|| control.solve_incremental(cap, &recorder));
    assert_eq!(
        incremental_sat, control_sat,
        "{model:?}: trail reuse changed a flip answer"
    );
    // One separately counted pass feeds the gated counters.
    let inc_recorder = soccar_obs::Recorder::enabled();
    assert_eq!(
        workload.solve_incremental(cap, &inc_recorder),
        incremental_sat
    );
    let snap = inc_recorder.snapshot();
    assert!(
        snap.counters
            .get("smt.clauses_reused")
            .copied()
            .unwrap_or(0)
            > 0,
        "{model:?}: the bundled SoC's own flip window reused no clauses — \
         check-obligation folding has silently stopped engaging"
    );
    assert!(
        snap.counters
            .get("smt.eliminated_vars")
            .copied()
            .unwrap_or(0)
            > 0,
        "{model:?}: inprocessing eliminated no variables on the flip window — \
         bounded variable elimination has silently stopped engaging"
    );
    let mut counters = std::collections::BTreeMap::new();
    counters.insert(
        "flip_candidates".to_owned(),
        workload.candidates(cap) as u64,
    );
    counters.insert("flip_sat".to_owned(), oneshot_sat as u64);
    for name in [
        "smt.incremental_calls",
        "smt.blast_cache_hits",
        "smt.clauses_reused",
        "smt.eliminated_vars",
        "smt.trail_reused",
    ] {
        counters.insert(
            name.to_owned(),
            snap.counters.get(name).copied().unwrap_or(0),
        );
    }
    let mut timings_q = std::collections::BTreeMap::new();
    timings_q.insert(
        "flip_oneshot_q".to_owned(),
        soccar_obs::quantize_seconds(oneshot.as_secs_f64()),
    );
    timings_q.insert(
        "flip_incremental_q".to_owned(),
        soccar_obs::quantize_seconds(incremental.as_secs_f64()),
    );
    timings_q.insert(
        "flip_trail_reuse_q".to_owned(),
        soccar_obs::quantize_seconds(trail_reuse_off.as_secs_f64()),
    );
    FlipSolvingRecord {
        variant: soccar_obs::BenchVariant {
            variant: format!("{model:?} flip_solving"),
            counters,
            timings_q,
            seconds_q: soccar_obs::quantize_seconds((oneshot + incremental).as_secs_f64()),
        },
        oneshot,
        incremental,
        trail_reuse_off,
    }
}

/// The gated-magic design of the `clause_reuse` bench record: the flag
/// only flips when a symbolic byte hits a constant, so every flip solve
/// shares a deep path prefix and the incremental solver's clause reuse
/// is *guaranteed* to engage. The bundled SoCs' flip windows are too
/// shallow for reuse (`smt.clauses_reused` is 0 in their `flip_solving`
/// records), which previously left the counter ungated — a regression
/// that silently disabled clause reuse would have passed CI.
const CLAUSE_REUSE_SRC: &str = "
module ip(input clk, input rst_n, input [7:0] magic,
          output reg flag, output reg [7:0] ctr);
  always @(posedge clk or negedge rst_n)
    if (!rst_n) begin
      if (magic == 8'h5A) flag <= 1'b1;
      ctr <= 8'd0;
    end else ctr <= ctr + 8'd1;
endmodule
module top(input clk, input dom_rst_n, input [7:0] magic,
           output flag, output [7:0] ctr);
  ip u (.clk(clk), .rst_n(dom_rst_n), .magic(magic),
        .flag(flag), .ctr(ctr));
endmodule";

/// Builds the frozen [`soccar_concolic::FlipWorkload`] for an arbitrary
/// source file (the custom-design twin of [`flip_workload`]).
///
/// # Panics
///
/// Panics if the design fails to compile or simulate (bench driver code,
/// not a library API).
#[must_use]
pub fn custom_flip_workload(
    source: &str,
    top: &str,
    concolic: ConcolicConfig,
) -> soccar_concolic::FlipWorkload {
    let unit = soccar_rtl::parser::parse(soccar_rtl::span::FileId(0), source)
        .expect("bench designs always parse");
    let design =
        soccar_rtl::elaborate::elaborate(&unit, top).expect("bench designs always elaborate");
    let arcfg = soccar_cfg::compose_soc(
        &unit,
        top,
        &soccar_cfg::ResetNaming::new(),
        soccar_cfg::GovernorAnalysis::Explicit,
    )
    .expect("bench designs always compose");
    let bound = soccar_cfg::bind_events(&design, &arcfg).expect("bench designs always bind");
    let mut engine = soccar_concolic::ConcolicEngine::new(&design, &bound, Vec::new(), concolic)
        .expect("bench designs always build an engine");
    engine
        .flip_workload()
        .expect("bench designs always simulate")
}

/// Runs the `clause_reuse` record: incremental flip solving on the
/// gated-magic design, solved serially, with `smt.clauses_reused` gated
/// **non-zero** (and exact, like every gated counter). The configuration
/// is pinned — independent of smoke/full mode — so the record is one
/// fixed point across every bench invocation.
///
/// # Panics
///
/// Panics if clause reuse fails to engage at all — that is the
/// regression this record exists to catch, and it must fail loudly even
/// before the baseline diff runs.
#[must_use]
pub fn clause_reuse_record() -> soccar_obs::BenchVariant {
    let concolic = ConcolicConfig {
        cycles: 10,
        seed: 7,
        symbolic_inputs: vec!["top.magic".into()],
        ..ConcolicConfig::default()
    };
    let workload = custom_flip_workload(CLAUSE_REUSE_SRC, "top", concolic);
    let cap = 16;
    let recorder = soccar_obs::Recorder::enabled();
    let (sat, elapsed) = recorder.time("bench.clause_reuse.run", || {
        workload.solve_incremental(cap, &recorder)
    });
    let snap = recorder.snapshot();
    let counter = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
    assert!(
        counter("smt.clauses_reused") > 0,
        "incremental flip solving reused no clauses on the gated-magic design — \
         clause reuse has silently stopped engaging"
    );
    let mut counters = std::collections::BTreeMap::new();
    counters.insert(
        "flip_candidates".to_owned(),
        workload.candidates(cap) as u64,
    );
    counters.insert("flip_sat".to_owned(), sat as u64);
    for name in [
        "smt.incremental_calls",
        "smt.blast_cache_hits",
        "smt.clauses_reused",
    ] {
        counters.insert(name.to_owned(), counter(name));
    }
    let mut timings_q = std::collections::BTreeMap::new();
    timings_q.insert(
        "clause_reuse_q".to_owned(),
        soccar_obs::quantize_seconds(elapsed.as_secs_f64()),
    );
    soccar_obs::BenchVariant {
        variant: "clause_reuse".to_owned(),
        counters,
        timings_q,
        seconds_q: soccar_obs::quantize_seconds(elapsed.as_secs_f64()),
    }
}

/// Per-profile conflict budget of the `solver_maintenance` sharing race.
/// Small enough that the canonical profile cannot finish the pigeonhole
/// formula inside its first slice (so clones exist and learn), and fixed
/// so the race — and with it every gated counter — is deterministic.
const SHARING_RACE_CONFLICTS: u64 = 64;

/// Asserts the 6-pigeons-into-5-holes formula (UNSAT, conflict-rich)
/// into `solver` over `g`.
fn assert_pigeonhole(g: &mut soccar_smt::TermGraph, solver: &mut soccar_smt::Solver) {
    let holes = g.const_u64(3, 5);
    let pigeons: Vec<_> = (0..6).map(|i| g.var(format!("p{i}"), 3)).collect();
    for &p in &pigeons {
        let in_range = g.ult(p, holes);
        solver.assert(in_range);
    }
    for i in 0..pigeons.len() {
        for j in i + 1..pigeons.len() {
            let distinct = g.ne(pigeons[i], pigeons[j]);
            solver.assert(distinct);
        }
    }
}

/// Runs the `solver_maintenance` record, two phases over the same
/// conflict-rich pigeonhole formula (6 bit-vector pigeons into 5 holes,
/// UNSAT):
///
/// 1. **Maintenance**: one-shot solve under a pinned aggressive
///    [`soccar_smt::SolverProfile`] (restart interval 2, learnt-DB
///    reduction from 8 clauses), with the modern-CDCL maintenance
///    counters `smt.restarts` and `smt.learnt_deleted` gated
///    **non-zero** (and exact, like every gated counter).
/// 2. **Sharing race**: a portfolio race on a fresh solver under a
///    per-profile budget of `SHARING_RACE_CONFLICTS` (64) conflicts —
///    deliberately too small for the canonical profile's first slice, so
///    clones are created, learn, and drain their glue clauses back
///    through the export filter. `smt.shared_imported` and
///    `smt.portfolio_learnts_discarded` are gated non-zero: without this
///    phase the bundled SoCs' flip solves (which never outlive the first
///    slice) would let a silently broken sharing path pass CI. The
///    solver-speed knobs are pinned on so the record is byte-identical
///    across `SOCCAR_BVE` / `SOCCAR_CLAUSE_SHARING` /
///    `SOCCAR_TRAIL_REUSE` legs.
///
/// The bundled SoCs' own flip solves are conflict-free, so without this
/// record a regression that silently disabled restarts, learnt-DB
/// reduction, or clause sharing would pass CI.
///
/// # Panics
///
/// Panics if the formula stops being UNSAT, or if restarts, learnt-DB
/// reduction, or clause sharing fail to engage — the regressions this
/// record exists to catch must fail loudly even before the baseline
/// diff runs.
#[must_use]
pub fn solver_maintenance_record() -> soccar_obs::BenchVariant {
    let mut g = soccar_smt::TermGraph::new();
    let mut solver = soccar_smt::Solver::new();
    solver.set_profile(soccar_smt::SolverProfile {
        seed: 0,
        invert_phase: false,
        restart_base: 2,
        reduce_base: 8,
    });
    assert_pigeonhole(&mut g, &mut solver);
    let recorder = soccar_obs::Recorder::enabled();
    let (result, elapsed) = recorder.time("bench.solver_maintenance.run", || {
        solver.check_traced(&g, &recorder)
    });
    assert!(
        matches!(result, soccar_smt::CheckResult::Unsat),
        "the pigeonhole formula must be UNSAT"
    );
    let snap = recorder.snapshot();
    let counter = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
    assert!(
        counter("smt.restarts") > 0,
        "the aggressive profile drove no restarts — Luby restarting has \
         silently stopped engaging"
    );
    assert!(
        counter("smt.learnt_deleted") > 0,
        "the aggressive profile deleted no learnt clauses — learnt-DB \
         reduction has silently stopped engaging"
    );

    // Phase 2: the sharing race, on its own recorder so the maintenance
    // counters above stay exactly what phase 1 produced.
    let mut race_g = soccar_smt::TermGraph::new();
    let mut race = soccar_smt::Solver::with_budget(soccar_smt::SolveBudget {
        max_conflicts: Some(SHARING_RACE_CONFLICTS),
        max_decisions: None,
    });
    race.set_bve(true);
    race.set_clause_sharing(true);
    race.set_trail_reuse(true);
    assert_pigeonhole(&mut race_g, &mut race);
    let race_recorder = soccar_obs::Recorder::enabled();
    let (race_result, race_elapsed) = race_recorder.time("bench.solver_maintenance.race", || {
        race.check_assuming_portfolio_traced(&race_g, &[], &race_recorder)
    });
    assert!(
        !race_result.is_sat(),
        "the budgeted race must answer Unsat or Unknown on the pigeonhole \
         formula, got {race_result:?}"
    );
    let race_snap = race_recorder.snapshot();
    let race_counter = |name: &str| race_snap.counters.get(name).copied().unwrap_or(0);
    assert!(
        race_counter("smt.shared_imported") > 0,
        "the budgeted portfolio race imported no clone glue clauses — \
         clause sharing has silently stopped engaging"
    );
    assert!(
        race_counter("smt.portfolio_learnts_discarded") > 0,
        "the budgeted portfolio race discarded no clone learnt clauses — \
         the export filter has silently stopped filtering"
    );

    let mut counters = std::collections::BTreeMap::new();
    for name in ["smt.restarts", "smt.learnt_deleted", "smt.learnt_kept"] {
        counters.insert(name.to_owned(), counter(name));
    }
    for name in ["smt.shared_imported", "smt.portfolio_learnts_discarded"] {
        counters.insert(name.to_owned(), race_counter(name));
    }
    let mut timings_q = std::collections::BTreeMap::new();
    timings_q.insert(
        "solver_maintenance_q".to_owned(),
        soccar_obs::quantize_seconds(elapsed.as_secs_f64()),
    );
    timings_q.insert(
        "sharing_race_q".to_owned(),
        soccar_obs::quantize_seconds(race_elapsed.as_secs_f64()),
    );
    soccar_obs::BenchVariant {
        variant: "solver_maintenance".to_owned(),
        counters,
        timings_q,
        seconds_q: soccar_obs::quantize_seconds((elapsed + race_elapsed).as_secs_f64()),
    }
}

/// Outcome of one `incremental_reanalysis` comparison: the bench variant
/// recorded into `BENCH_<soc>.json` plus the raw timings for speedup
/// reporting.
#[derive(Debug, Clone)]
pub struct ReanalysisRecord {
    /// The record appended to the SoC's bench report. Gated counters:
    /// `modules_total`, `modules_reparsed` / `modules_reextracted`
    /// (exactly 1 after the single-module edit), `repeat_report_hit`,
    /// `repeat_targets_rerun` (0). Timings (`cold_q`, `warm_q`,
    /// `repeat_q`) are reported only.
    pub variant: soccar_obs::BenchVariant,
    /// Wall-clock of the cold batch analysis of the edited source.
    pub cold: std::time::Duration,
    /// Wall-clock of the warm incremental re-analysis after the edit.
    pub warm: std::time::Duration,
    /// Wall-clock of repeating the identical request (report-tier hit).
    pub repeat: std::time::Duration,
}

impl ReanalysisRecord {
    /// Cold time over warm time after the edit. Bounded by the
    /// structural-tier savings: a semantic edit re-runs concolic in full
    /// (a selective re-run could not stay byte-identical to the batch
    /// pipeline — its round and solver counters are global), so expect
    /// modest wins here and the dramatic one from [`Self::repeat_speedup`].
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.cold.as_secs_f64() / self.warm.as_secs_f64().max(1e-9)
    }

    /// Cold time over repeat time — the cached-serving win.
    #[must_use]
    pub fn repeat_speedup(&self) -> f64 {
        self.cold.as_secs_f64() / self.repeat.as_secs_f64().max(1e-9)
    }
}

/// Applies the bench's canonical single-module edit: an inert driven
/// wire appended to the **first** module of `source`. Comments would not
/// change the structural fingerprint (they must not — that is what the
/// session's extract tier keys on), so the edit adds real structure
/// while leaving behaviour untouched.
#[must_use]
pub fn single_module_edit(source: &str) -> String {
    source.replacen(
        "endmodule",
        "  wire bench_probe_unused;\n  assign bench_probe_unused = 1'b0;\nendmodule",
        1,
    )
}

/// Runs the `incremental_reanalysis` comparison for one SoC model: a
/// warm [`soccar::AnalysisSession`] re-analyzes the SoC after a
/// single-module edit, against a cold batch run of the same edited
/// source. The warm pass must re-parse and re-extract exactly **one**
/// module (gated) and produce a byte-identical canonical report
/// (asserted); the cold/warm timings are reported, never gated.
///
/// # Panics
///
/// Panics if the warm report diverges from the cold batch report, or if
/// the edit fails to localize to one module.
#[must_use]
pub fn incremental_reanalysis_record(model: SocModel, config: &SoccarConfig) -> ReanalysisRecord {
    let soc = soccar_soc::generate(model, None);
    let edited = single_module_edit(&soc.source);
    assert_ne!(edited, soc.source, "the edit must land");
    let properties: Vec<SecurityProperty> = soccar_soc::security_checks(model)
        .iter()
        .map(soccar::property_of)
        .collect();
    let mut config = config.clone();
    config.concolic.symbolic_inputs = soccar_soc::symbolic_inputs(model);
    config.jobs = 1;
    let file = format!("{model:?}.v").to_lowercase();

    let recorder = soccar_obs::Recorder::disabled();
    let qos = soccar::RequestQos::default();
    // Criterion-style: best of a few runs for both sides (the timings
    // are reported, never gated, so "best" beats "one noisy sample").
    const RUNS: usize = 3;
    // Cold: the batch pipeline on the edited source, from nothing.
    let (cold_report, mut cold) = recorder.time("bench.reanalysis.cold", || {
        Soccar::new(config.clone())
            .analyze(&file, &edited, &soc.top, properties.clone())
            .expect("benchmark SoCs always analyze")
    });
    for _ in 1..RUNS {
        let (_, t) = recorder.time("bench.reanalysis.cold", || {
            Soccar::new(config.clone())
                .analyze(&file, &edited, &soc.top, properties.clone())
                .expect("benchmark SoCs always analyze")
        });
        cold = cold.min(t);
    }
    // Warm: a session primed with the pre-edit design re-analyzes. Each
    // run primes a fresh session (untimed) so the timed request always
    // sees warm structural tiers but no cached result for the edit.
    let mut best: Option<(
        (soccar::AnalysisReport, soccar::RequestStats),
        std::time::Duration,
        soccar::AnalysisSession,
    )> = None;
    for _ in 0..RUNS {
        let mut session = soccar::AnalysisSession::new(config.clone());
        session
            .analyze(&file, &soc.source, &soc.top, properties.clone(), &qos)
            .expect("benchmark SoCs always analyze");
        let (outcome, t) = recorder.time("bench.reanalysis.warm", || {
            session
                .analyze(&file, &edited, &soc.top, properties.clone(), &qos)
                .expect("benchmark SoCs always analyze")
        });
        if best.as_ref().map_or(true, |(_, b, _)| t < *b) {
            best = Some((outcome, t, session));
        }
    }
    let ((warm_report, stats), warm, mut session) = best.expect("RUNS > 0");
    assert_eq!(
        stats.modules_reparsed, 1,
        "{model:?}: the single-module edit must re-parse exactly one module"
    );
    assert_eq!(
        stats.modules_reextracted, 1,
        "{model:?}: the single-module edit must re-extract exactly one module"
    );
    assert_eq!(
        warm_report.canonical_json().expect("canonical json"),
        cold_report.canonical_json().expect("canonical json"),
        "{model:?}: warm incremental re-analysis diverged from the cold batch"
    );
    // Repeat: the identical request again is a pure report-tier hit.
    let ((_, repeat_stats), repeat) = recorder.time("bench.reanalysis.repeat", || {
        session
            .analyze(&file, &edited, &soc.top, properties.clone(), &qos)
            .expect("benchmark SoCs always analyze")
    });
    let mut counters = std::collections::BTreeMap::new();
    counters.insert("modules_total".to_owned(), stats.modules_total as u64);
    counters.insert("modules_reparsed".to_owned(), stats.modules_reparsed as u64);
    counters.insert(
        "modules_reextracted".to_owned(),
        stats.modules_reextracted as u64,
    );
    counters.insert(
        "repeat_report_hit".to_owned(),
        u64::from(repeat_stats.report_cache_hit),
    );
    counters.insert(
        "repeat_targets_rerun".to_owned(),
        repeat_stats.targets_rerun as u64,
    );
    let mut timings_q = std::collections::BTreeMap::new();
    timings_q.insert(
        "cold_q".to_owned(),
        soccar_obs::quantize_seconds(cold.as_secs_f64()),
    );
    timings_q.insert(
        "warm_q".to_owned(),
        soccar_obs::quantize_seconds(warm.as_secs_f64()),
    );
    timings_q.insert(
        "repeat_q".to_owned(),
        soccar_obs::quantize_seconds(repeat.as_secs_f64()),
    );
    ReanalysisRecord {
        variant: soccar_obs::BenchVariant {
            variant: format!("{model:?} incremental_reanalysis"),
            counters,
            timings_q,
            seconds_q: soccar_obs::quantize_seconds((cold + warm).as_secs_f64()),
        },
        cold,
        warm,
        repeat,
    }
}

/// Appends the serving-oriented records to every SoC's bench report: the
/// per-SoC `incremental_reanalysis` comparison and the (SoC-independent,
/// pinned-config) `clause_reuse` record. Returns the reanalysis records
/// for speedup reporting.
pub fn append_serving_records(
    reports: &mut [soccar_obs::BenchReport],
    config: &SoccarConfig,
) -> Vec<(SocModel, ReanalysisRecord)> {
    let clause_reuse = clause_reuse_record();
    let solver_maintenance = solver_maintenance_record();
    let mut out = Vec::new();
    for report in reports {
        let model = match report.soc.as_str() {
            "clustersoc" => SocModel::ClusterSoc,
            "autosoc" => SocModel::AutoSoc,
            other => panic!("no bundled SoC model for bench report `{other}`"),
        };
        let record = incremental_reanalysis_record(model, config);
        report.variants.push(record.variant.clone());
        report.variants.push(clause_reuse.clone());
        report.variants.push(solver_maintenance.clone());
        out.push((model, record));
    }
    out
}

/// Appends one `flip_solving` variant to every SoC's bench report and
/// returns the records (for speedup reporting). `reports` must cover
/// each SoC at most once (what [`bench_reports`] produces).
pub fn append_flip_solving(
    reports: &mut [soccar_obs::BenchReport],
    config: &SoccarConfig,
) -> Vec<(SocModel, FlipSolvingRecord)> {
    let mut out = Vec::new();
    for report in reports {
        let model = match report.soc.as_str() {
            "clustersoc" => SocModel::ClusterSoc,
            "autosoc" => SocModel::AutoSoc,
            other => panic!("no bundled SoC model for bench report `{other}`"),
        };
        let record = flip_solving_record(model, config);
        report.variants.push(record.variant.clone());
        out.push((model, record));
    }
    out
}

/// Writes every report into `dir` (created if absent) and returns the
/// written paths.
///
/// # Errors
///
/// Propagates filesystem errors, prefixed with the offending path.
pub fn write_bench_reports(
    dir: &std::path::Path,
    reports: &[soccar_obs::BenchReport],
) -> Result<Vec<std::path::PathBuf>, String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let mut paths = Vec::new();
    for report in reports {
        let path = dir.join(report.file_name());
        std::fs::write(&path, report.to_json()).map_err(|e| format!("{}: {e}", path.display()))?;
        paths.push(path);
    }
    Ok(paths)
}

/// Gates freshly generated reports against the checked-in baselines in
/// `dir`: every counter must match exactly (timings are ignored, see
/// [`soccar_obs::strip_timing`]). Returns all mismatch descriptions —
/// empty means the gate passes. A missing baseline file is itself a
/// mismatch, so adding a SoC model forces a baseline refresh.
#[must_use]
pub fn check_bench_baselines(
    dir: &std::path::Path,
    reports: &[soccar_obs::BenchReport],
) -> Vec<String> {
    let mut problems = Vec::new();
    for report in reports {
        let path = dir.join(report.file_name());
        match std::fs::read_to_string(&path) {
            Err(e) => problems.push(format!("{}: {e}", path.display())),
            Ok(baseline) => problems.extend(
                soccar_obs::diff_against_baseline(&report.to_json(), &baseline)
                    .into_iter()
                    .map(|d| format!("{}: {d}", path.display())),
            ),
        }
    }
    problems
}

/// Common bench-binary flags.
#[derive(Debug, Clone, Default)]
pub struct BenchArgs {
    /// `--jobs <n>`: worker threads (`0` = auto).
    pub jobs: usize,
    /// `--compare-jobs`: run the sweep serial then parallel and report
    /// the speedup.
    pub compare_jobs: bool,
    /// `--smoke`: run the reduced-rounds CI configuration
    /// ([`smoke_config`]) instead of [`paper_config`]. Binaries without a
    /// config knob (e.g. `table1`) accept and ignore it, so the CI job
    /// can pass one flag set to every bench.
    pub smoke: bool,
    /// `--bench-out <dir>`: where `BENCH_<soc>.json` files are written
    /// (default: the current directory).
    pub bench_out: Option<String>,
    /// `--check-baseline <dir>`: diff the generated `BENCH_*.json`
    /// counters against the baselines in `<dir>` and exit non-zero on any
    /// mismatch.
    pub check_baseline: Option<String>,
}

impl BenchArgs {
    /// The evaluation configuration this invocation asked for.
    #[must_use]
    pub fn config(&self) -> SoccarConfig {
        if self.smoke {
            smoke_config()
        } else {
            paper_config()
        }
    }

    /// The mode slug recorded in emitted `BENCH_*.json` files.
    #[must_use]
    pub fn mode(&self) -> &'static str {
        if self.smoke {
            "smoke"
        } else {
            "full"
        }
    }
}

/// Parses the common bench flags from `std::env::args`.
///
/// # Panics
///
/// Panics on a malformed or unknown argument.
#[must_use]
pub fn bench_args() -> BenchArgs {
    let mut out = BenchArgs::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--jobs" => {
                let v = args.next().expect("--jobs needs a value");
                out.jobs = v.parse().expect("--jobs takes a number");
            }
            "--compare-jobs" => out.compare_jobs = true,
            "--smoke" => out.smoke = true,
            "--bench-out" => out.bench_out = Some(args.next().expect("--bench-out needs a value")),
            "--check-baseline" => {
                out.check_baseline = Some(args.next().expect("--check-baseline needs a value"));
            }
            other => panic!(
                "unexpected argument `{other}` (options: --jobs <n>, --compare-jobs, \
                 --smoke, --bench-out <dir>, --check-baseline <dir>)"
            ),
        }
    }
    out
}

/// Renders a text table with aligned columns.
#[must_use]
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| {
        let mut line = String::from("| ");
        for (i, c) in cells.iter().enumerate() {
            let pad = widths.get(i).copied().unwrap_or(0);
            line.push_str(&format!("{c:<pad$} | "));
        }
        line.trim_end().to_owned()
    };
    let hdr: Vec<String> = headers.iter().map(|h| (*h).to_owned()).collect();
    out.push_str(&fmt_row(&hdr, &widths));
    out.push('\n');
    out.push('|');
    for w in &widths {
        out.push_str(&"-".repeat(w + 2));
        out.push('|');
    }
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// The **random reset-fuzzing baseline** of the `ablation_baseline` bench:
/// no AR_CFG, no solver, no systematic sweep — just random asynchronous
/// reset pulses and random data inputs for the same cycle budget, with the
/// same security monitors. This is the "dynamic validation" strawman of
/// Section III ("it is clearly prohibitive to comprehensively exercise all
/// possible reset combinations").
///
/// Returns the distinct violated property names.
///
/// # Panics
///
/// Panics if the design fails to compile or stimulate (baseline runs are
/// driver code, not a library API).
#[must_use]
pub fn random_baseline(
    model: SocModel,
    variant: u32,
    rounds: u32,
    cycles: u64,
    seed: u64,
) -> Vec<String> {
    let (_, d) = compile_soc(model, Some(variant));
    let checks = soccar_soc::security_checks(model);
    let properties: Vec<SecurityProperty> = checks.iter().map(soccar::property_of).collect();
    // Discover reset inputs and clock by name, like a fuzzing harness would.
    let naming = soccar_cfg::ResetNaming::new();
    let mut resets = Vec::new();
    let mut clocks = Vec::new();
    let mut data = Vec::new();
    for net in d.top_inputs() {
        let info = d.net(net);
        if naming.is_clock_name(&info.local_name) {
            clocks.push(net);
        } else if info.local_name.contains("rst") {
            resets.push((net, info.local_name.ends_with("_n")));
        } else {
            data.push((net, info.width));
        }
    }
    let domains: Vec<(String, bool)> = resets
        .iter()
        .map(|(n, al)| (d.net(*n).name.clone(), *al))
        .collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut violated: Vec<String> = Vec::new();
    for _ in 0..rounds {
        let mut sim = Simulator::concrete(&d, InitPolicy::Ones);
        let mut monitors: Vec<PropertyMonitor> = properties
            .iter()
            .filter_map(|p| PropertyMonitor::resolve(&d, p.clone(), &domains).ok())
            .collect();
        for (net, active_low) in &resets {
            sim.write_input(*net, LogicVec::from_u64(1, u64::from(*active_low)))
                .expect("reset");
        }
        for clk in &clocks {
            sim.write_input(*clk, LogicVec::from_u64(1, 0))
                .expect("clk");
        }
        for (net, w) in &data {
            sim.write_input(*net, LogicVec::zeros(*w)).expect("data");
        }
        sim.settle().expect("settle");
        let mut fresh: Vec<Violation> = Vec::new();
        for cycle in 0..cycles {
            // Random asynchronous pulses: each reset flips with p=1/8.
            for (net, active_low) in &resets {
                if rng.gen_ratio(1, 8) {
                    let assert_now = rng.gen_bool(0.5);
                    let v = u64::from(assert_now != *active_low);
                    sim.write_input(*net, LogicVec::from_u64(1, v))
                        .expect("reset");
                }
            }
            for (net, w) in &data {
                let mut v = LogicVec::zeros(*w);
                for i in 0..*w {
                    if rng.gen_bool(0.5) {
                        v.set_bit(i, soccar_rtl::Bit::One);
                    }
                }
                sim.write_input(*net, v).expect("data");
            }
            sim.settle().expect("settle");
            for clk in &clocks {
                sim.write_input(*clk, LogicVec::from_u64(1, 1))
                    .expect("clk");
            }
            sim.settle().expect("settle");
            // Sub-cycle glitch: occasionally flip a reset while the clock
            // is high (the timing window of the implicit-governor bug).
            for (net, active_low) in &resets {
                if rng.gen_ratio(1, 16) {
                    let assert_now = rng.gen_bool(0.5);
                    let v = u64::from(assert_now != *active_low);
                    sim.write_input(*net, LogicVec::from_u64(1, v))
                        .expect("reset");
                    sim.settle().expect("settle");
                }
            }
            for clk in &clocks {
                sim.write_input(*clk, LogicVec::from_u64(1, 0))
                    .expect("clk");
            }
            sim.settle().expect("settle");
            for mon in &mut monitors {
                fresh.extend(mon.check_cycle(&sim, cycle).expect("resolved monitor"));
            }
        }
        for v in fresh {
            if !violated.contains(&v.property) {
                violated.push(v.property);
            }
        }
    }
    violated.sort();
    violated
}

/// Runs the random fuzzer round by round until `property` fires, up to
/// `cap` rounds. Returns the (1-based) detecting round.
///
/// # Panics
///
/// Panics if the design fails to compile or stimulate.
#[must_use]
pub fn fuzzer_rounds_to_detect(
    model: SocModel,
    variant: u32,
    property: &str,
    cycles: u64,
    seed: u64,
    cap: u32,
) -> Option<u32> {
    for round in 1..=cap {
        // Re-run with an increasing budget; the RNG stream is a function
        // of (seed, round) so each round is fresh but reproducible.
        let v = random_baseline(
            model,
            variant,
            1,
            cycles,
            seed.wrapping_mul(0x9E37_79B9)
                .wrapping_add(u64::from(round)),
        );
        if v.iter().any(|p| p == property) {
            return Some(round);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renderer_aligns() {
        let t = render_table(
            &["A", "Column"],
            &[
                vec!["x".into(), "1".into()],
                vec!["longer".into(), "22".into()],
            ],
        );
        assert!(t.contains("| A      | Column |"));
        assert!(t.contains("| longer | 22     |"));
    }

    #[test]
    fn compile_soc_builds_the_clean_baseline() {
        let (soc, design) = compile_soc(SocModel::ClusterSoc, None);
        assert!(soc.variant.is_none());
        assert!(design.top_inputs().count() > 0);
    }

    #[test]
    fn differential_lint_drops_every_baseline_diagnostic() {
        let baseline: BTreeSet<_> = lint_soc(
            "clean.v",
            &soccar_soc::generate(SocModel::ClusterSoc, None).source,
        )
        .iter()
        .map(diagnostic_key)
        .collect();
        assert!(!baseline.is_empty(), "clean SoC lints to some diagnostics");
        for d in differential_lint(SocModel::ClusterSoc, 1) {
            assert!(!baseline.contains(&diagnostic_key(&d)));
        }
    }

    #[test]
    fn single_module_edit_changes_exactly_one_structural_fingerprint() {
        let source = soccar_soc::generate(SocModel::ClusterSoc, None).source;
        let edited = single_module_edit(&source);
        assert_ne!(edited, source);
        let fp = |src: &str| -> Vec<u64> {
            soccar_rtl::parser::parse(soccar_rtl::span::FileId(0), src)
                .expect("parse")
                .modules
                .iter()
                .map(soccar_rtl::fingerprint::module_fingerprint)
                .collect()
        };
        let before = fp(&source);
        let after = fp(&edited);
        assert_eq!(before.len(), after.len());
        let changed = before.iter().zip(&after).filter(|(a, b)| a != b).count();
        assert_eq!(changed, 1, "the bench edit must localize to one module");
    }

    #[test]
    fn stress_scales_hit_their_module_floors() {
        // Pure string generation — cheap even in debug builds.
        let x10 = soccar_soc::generate::generate(&STRESS_X10);
        assert!(
            x10.manifest.modules >= 160,
            "10x point must stay ≥10x ClusterSoC's 16 modules"
        );
        let x50 = soccar_soc::generate::generate(&STRESS_X50);
        assert!(x50.manifest.modules >= 800, "50x point shrank");
        assert!(
            x50.manifest.bugs.iter().any(|b| b.implicit),
            "the 50x lint-recall record needs at least one implicit bug"
        );
    }

    #[test]
    fn solver_maintenance_record_engages_both_phases() {
        // The record self-gates (it panics if restarts, reduction, or
        // clause sharing fail to engage); this test just keeps it
        // exercised in the tier-1 suite and pins the counter surface.
        let v = solver_maintenance_record();
        for name in [
            "smt.restarts",
            "smt.learnt_deleted",
            "smt.shared_imported",
            "smt.portfolio_learnts_discarded",
        ] {
            assert!(
                v.counters.contains_key(name),
                "solver_maintenance must record {name}"
            );
        }
    }

    #[test]
    fn baseline_runs_and_reports() {
        // One short random round on ClusterSoC #2. The contract here is
        // only "runs and returns sorted distinct names".
        let v = random_baseline(SocModel::ClusterSoc, 2, 1, 6, 42);
        let mut sorted = v.clone();
        sorted.sort();
        assert_eq!(v, sorted);
    }
}
