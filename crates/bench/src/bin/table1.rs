//! **Table I** — Area statistics of ClusterSoC and AutoSoC variants.
//!
//! The paper's numbers come from Xilinx Vivado synthesis; ours from the
//! `soccar-synth` technology model (DESIGN.md §3). Paper reference values
//! are printed alongside for the shape comparison recorded in
//! EXPERIMENTS.md.

use soccar_bench::{bench_args, compile_soc, render_table};
use soccar_soc::SocModel;
use soccar_synth::{estimate, TechModel};

fn main() {
    // (label, model, variant, paper LUT, paper LUTRAM, paper BRAM)
    let rows_spec = [
        (
            "ClusterSoC Variant #1",
            SocModel::ClusterSoc,
            1,
            16906,
            2698,
            124,
        ),
        (
            "ClusterSoC Variant #2",
            SocModel::ClusterSoc,
            2,
            17047,
            2618,
            126,
        ),
        (
            "ClusterSoC Variant #3",
            SocModel::ClusterSoc,
            3,
            15891,
            2298,
            126,
        ),
        ("AutoSoC Variant #1", SocModel::AutoSoc, 1, 33861, 2971, 128),
        ("AutoSoC Variant #2", SocModel::AutoSoc, 2, 32972, 2874, 128),
    ];
    let jobs = bench_args().jobs;
    let tech = TechModel::default();
    // Generate + compile + estimate fans out; the rows stay in spec order.
    let rows = soccar_exec::parallel_map(jobs, &rows_spec, |spec| {
        let (label, model, variant, p_lut, p_lutram, p_bram) = *spec;
        let (_, d) = compile_soc(model, Some(variant));
        let a = estimate(&d, &tech);
        vec![
            label.to_owned(),
            a.lut.to_string(),
            a.lutram.to_string(),
            a.bram.to_string(),
            format!("{p_lut}"),
            format!("{p_lutram}"),
            format!("{p_bram}"),
        ]
    });
    println!("Table I — Area statistics (measured vs paper/Vivado)");
    println!(
        "{}",
        render_table(
            &[
                "SoC Variant",
                "LUT",
                "LUTRAM",
                "BRAM",
                "paper LUT",
                "paper LUTRAM",
                "paper BRAM"
            ],
            &rows
        )
    );
    println!(
        "Note: measured values use the deterministic 6-LUT technology model of\n\
         soccar-synth, not Vivado; the claim under test is scale and ordering\n\
         (AutoSoC ≈ 2× ClusterSoC), not absolute agreement."
    );
}
