//! Quickstart: find a reset-scrubbing bug in a small IP in ~20 lines.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use soccar::{Soccar, SoccarConfig};
use soccar_concolic::{PropertyKind, SecurityProperty};
use soccar_rtl::LogicVec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An AES-ish block whose asynchronous reset forgets to clear the key
    // register — the paper's motivating bug class.
    let rtl = "
        module aes(input clk, input rst_n, input load, input [31:0] key_in,
                   output reg [31:0] key_reg, output reg [7:0] rounds);
          always @(posedge clk or negedge rst_n)
            if (!rst_n) begin
              rounds <= 8'd0;            // BUG: key_reg is not cleared!
            end else begin
              if (load) key_reg <= key_in;
              rounds <= rounds + 8'd1;
            end
        endmodule
        module top(input clk, input crypto_rst_n, input load, input [31:0] key_in,
                   output [31:0] key, output [7:0] rounds);
          aes u_aes (.clk(clk), .rst_n(crypto_rst_n), .load(load),
                     .key_in(key_in), .key_reg(key), .rounds(rounds));
        endmodule";

    // The security regression: "after a reset the key must be cleared".
    let property = SecurityProperty {
        name: "aes-key-cleared".into(),
        module: "aes".into(),
        kind: PropertyKind::ClearedAfterReset {
            domain: "top.crypto_rst_n".into(),
            signal: "top.u_aes.key_reg".into(),
            expected: LogicVec::zeros(32),
            window: 0,
        },
    };

    let report =
        Soccar::new(SoccarConfig::default()).analyze("quickstart.v", rtl, "top", vec![property])?;

    println!("pipeline stages:");
    for stage in &report.stages {
        println!(
            "  {:<9} {:>8.3}s  {}",
            stage.stage,
            stage.elapsed.as_secs_f64(),
            stage.detail
        );
    }
    println!();
    println!(
        "AR_CFG: {} reset-governed events, {} reset domain(s)",
        report.extraction.ar_events, report.extraction.reset_domains
    );
    println!();
    if report.violations().is_empty() {
        println!("no violations found");
    } else {
        for v in report.violations() {
            println!("{v}");
        }
        for w in &report.concolic.witnesses {
            println!("  witness [{}]: {}", w.property, w.schedule.summary());
        }
    }
    Ok(())
}
