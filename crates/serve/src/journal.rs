//! The persistent cache journal behind `soccar serve --cache-dir`.
//!
//! A crash-only daemon cannot serialize its cache tiers on the way down
//! (a SIGKILL gives it no way down), so durability is append-only and
//! write-ahead-shaped: every *successful, cacheable* analyze request is
//! journaled as its canonical request JSON, and a restarting daemon
//! **replays** those requests through a fresh
//! [`soccar::incremental::AnalysisSession`] to rebuild all five cache
//! tiers. Because served bodies are byte-identical to batch output by
//! construction, replaying the requests reproduces the pre-crash cache
//! state exactly — warm-restart parity is structural, not best-effort.
//!
//! # On-disk format
//!
//! One file, `journal.soccar`, inside the `--cache-dir`:
//!
//! ```text
//! header := magic "SOCCARJ\x01" (8 bytes) | version u32 BE   (= 1)
//! record := length u32 BE | checksum u64 BE | payload (length bytes)
//! ```
//!
//! The checksum is FNV-1a over the payload. Records are capped at
//! [`crate::proto::MAX_FRAME`] bytes, like wire frames. A record that is
//! truncated (the write raced a crash), oversized, or checksum-corrupt
//! ends the replay: the bad record **and everything after it** are
//! discarded, the file is truncated back to the last good offset, and
//! the daemon starts *degraded with a named reason* instead of refusing
//! to start — losing tail cache entries only costs recomputation.
//!
//! Appends are deduplicated by payload checksum, so a hot request that
//! is served a thousand times is journaled once and the file grows with
//! the *working set*, not the request count.

use std::collections::HashSet;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use soccar_exec::FaultPlan;

use crate::proto::MAX_FRAME;

/// Journal file name inside the cache directory.
pub const JOURNAL_FILE: &str = "journal.soccar";

/// File magic: identifies the journal format (and its major revision)
/// before the version word is trusted.
const MAGIC: &[u8; 8] = b"SOCCARJ\x01";

/// Current schema version, written after the magic.
const VERSION: u32 = 1;

/// Bytes of header before the first record.
const HEADER_LEN: u64 = 12;

/// Bytes of record framing before the payload (length + checksum).
const RECORD_HEADER_LEN: u64 = 12;

/// FNV-1a over `bytes` — the per-record checksum. Stable, dependency-free
/// and byte-order-independent; this is an integrity check against torn
/// writes, not an adversarial MAC.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// What a [`Journal::open`] replay recovered.
#[derive(Debug, Clone, Default)]
pub struct Replay {
    /// Journaled request payloads, oldest first, each checksum-verified.
    pub records: Vec<String>,
    /// Records (or torn tails) discarded during recovery.
    pub skipped: u64,
    /// The named degradation reason, when recovery discarded anything.
    pub degraded: Option<String>,
}

/// An open, replayed journal ready for appends.
#[derive(Debug)]
pub struct Journal {
    file: File,
    path: PathBuf,
    seen: HashSet<u64>,
}

impl Journal {
    /// Opens (creating if absent) the journal in `dir` and replays it.
    ///
    /// Corrupt or truncated tail records are discarded — the file is
    /// truncated back to the last good record and the loss is reported
    /// through [`Replay::degraded`], never as an error: a crash-only
    /// service must start on whatever survived. The
    /// `journal_corrupt:replay` fault point (1-based record index)
    /// treats a healthy record as corrupt to drive exactly that path.
    ///
    /// # Errors
    ///
    /// Only on real I/O failures (unreadable directory, permission
    /// denied) and on a header that belongs to a different format or a
    /// future schema version — silently replaying a file we do not
    /// understand could poison the cache.
    pub fn open(dir: &Path, plan: &FaultPlan) -> std::io::Result<(Journal, Replay)> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(JOURNAL_FILE);
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let len = file.metadata()?.len();
        if len == 0 {
            file.write_all(MAGIC)?;
            file.write_all(&VERSION.to_be_bytes())?;
            file.flush()?;
            return Ok((
                Journal {
                    file,
                    path,
                    seen: HashSet::new(),
                },
                Replay::default(),
            ));
        }
        let mut header = [0u8; HEADER_LEN as usize];
        if len < HEADER_LEN {
            return Err(bad_header(&path, "file shorter than the journal header"));
        }
        file.read_exact(&mut header)?;
        if &header[..8] != MAGIC {
            return Err(bad_header(&path, "bad magic (not a soccar journal)"));
        }
        let version = u32::from_be_bytes([header[8], header[9], header[10], header[11]]);
        if version != VERSION {
            return Err(bad_header(
                &path,
                &format!("schema version {version} (this build reads {VERSION})"),
            ));
        }

        let mut replay = Replay::default();
        let mut seen = HashSet::new();
        let mut good_end = HEADER_LEN;
        let mut offset = HEADER_LEN;
        let mut index: u64 = 0;
        loop {
            if offset == len {
                break;
            }
            index += 1;
            let (verdict, next) = read_record(&mut file, offset, len);
            match verdict {
                RecordVerdict::Ok(payload) => {
                    if plan.should_inject("journal_corrupt:replay", index) {
                        replay.skipped += 1;
                        replay.degraded = Some(format!(
                            "journal: record {index} corrupt (injected fault); \
                             discarded {} byte(s) of tail",
                            len - offset
                        ));
                        break;
                    }
                    seen.insert(fnv1a(payload.as_bytes()));
                    replay.records.push(payload);
                    good_end = next;
                    offset = next;
                }
                RecordVerdict::Corrupt(why) => {
                    replay.skipped += 1;
                    replay.degraded = Some(format!(
                        "journal: record {index} {why}; discarded {} byte(s) of tail",
                        len - offset
                    ));
                    break;
                }
            }
        }
        if good_end < len {
            // Drop the corrupt tail so the next append lands on a clean
            // record boundary instead of extending garbage.
            file.set_len(good_end)?;
        }
        file.seek(SeekFrom::End(0))?;
        Ok((Journal { file, path, seen }, replay))
    }

    /// Appends one request payload; `Ok(false)` when an identical
    /// payload is already journaled (dedup by checksum). The record is
    /// flushed before returning, so a crash after a served response
    /// never loses that response's journal entry.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; rejects payloads over
    /// [`crate::proto::MAX_FRAME`] bytes.
    pub fn append(&mut self, payload: &str) -> std::io::Result<bool> {
        let bytes = payload.as_bytes();
        let len = u32::try_from(bytes.len())
            .ok()
            .filter(|len| *len <= MAX_FRAME)
            .ok_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::InvalidInput, "journal record too large")
            })?;
        let checksum = fnv1a(bytes);
        if !self.seen.insert(checksum) {
            return Ok(false);
        }
        self.file.write_all(&len.to_be_bytes())?;
        self.file.write_all(&checksum.to_be_bytes())?;
        self.file.write_all(bytes)?;
        self.file.flush()?;
        Ok(true)
    }

    /// The journal file's path (diagnostics).
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }
}

enum RecordVerdict {
    Ok(String),
    Corrupt(&'static str),
}

/// Reads the record starting at `offset`; returns the verdict and the
/// offset just past it. Every failure mode maps to `Corrupt` — at replay
/// time a short read *is* a torn record, not an I/O environment error.
fn read_record(file: &mut File, offset: u64, len: u64) -> (RecordVerdict, u64) {
    if len - offset < RECORD_HEADER_LEN {
        return (RecordVerdict::Corrupt("truncated mid-header"), len);
    }
    let mut header = [0u8; RECORD_HEADER_LEN as usize];
    if file.read_exact(&mut header).is_err() {
        return (RecordVerdict::Corrupt("unreadable header"), len);
    }
    let payload_len = u64::from(u32::from_be_bytes([
        header[0], header[1], header[2], header[3],
    ]));
    let checksum = u64::from_be_bytes([
        header[4], header[5], header[6], header[7], header[8], header[9], header[10], header[11],
    ]);
    if payload_len > u64::from(MAX_FRAME) {
        return (RecordVerdict::Corrupt("oversized (corrupt length)"), len);
    }
    let end = offset + RECORD_HEADER_LEN + payload_len;
    if end > len {
        return (RecordVerdict::Corrupt("truncated mid-payload"), len);
    }
    let mut payload = vec![0u8; payload_len as usize];
    if file.read_exact(&mut payload).is_err() {
        return (RecordVerdict::Corrupt("unreadable payload"), len);
    }
    if fnv1a(&payload) != checksum {
        return (RecordVerdict::Corrupt("corrupt (checksum mismatch)"), len);
    }
    match String::from_utf8(payload) {
        Ok(text) => (RecordVerdict::Ok(text), end),
        Err(_) => (RecordVerdict::Corrupt("corrupt (payload not utf-8)"), len),
    }
}

fn bad_header(path: &Path, why: &str) -> std::io::Error {
    std::io::Error::new(
        std::io::ErrorKind::InvalidData,
        format!("{}: {why}", path.display()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("soccar-journal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn records_survive_reopen_and_dedup() {
        let dir = temp_dir("roundtrip");
        let plan = FaultPlan::default();
        {
            let (mut journal, replay) = Journal::open(&dir, &plan).expect("create");
            assert!(replay.records.is_empty() && replay.degraded.is_none());
            assert!(journal.append("{\"cmd\":\"analyze\",\"n\":1}").unwrap());
            assert!(journal.append("{\"cmd\":\"analyze\",\"n\":2}").unwrap());
            assert!(
                !journal.append("{\"cmd\":\"analyze\",\"n\":1}").unwrap(),
                "identical payloads are journaled once"
            );
        }
        let (mut journal, replay) = Journal::open(&dir, &plan).expect("reopen");
        assert_eq!(
            replay.records,
            vec![
                "{\"cmd\":\"analyze\",\"n\":1}",
                "{\"cmd\":\"analyze\",\"n\":2}"
            ]
        );
        assert_eq!(replay.skipped, 0);
        assert!(replay.degraded.is_none());
        assert!(
            !journal.append("{\"cmd\":\"analyze\",\"n\":1}").unwrap(),
            "dedup set is rebuilt from the replay"
        );
        assert!(journal.append("{\"cmd\":\"analyze\",\"n\":3}").unwrap());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_tail_record_degrades_and_is_dropped() {
        let dir = temp_dir("torn");
        let plan = FaultPlan::default();
        {
            let (mut journal, _) = Journal::open(&dir, &plan).expect("create");
            journal.append("first").unwrap();
            journal.append("second-gets-torn").unwrap();
        }
        let path = dir.join(JOURNAL_FILE);
        let full = std::fs::read(&path).unwrap();
        // Tear the last record mid-payload, as a crash mid-write would.
        std::fs::write(&path, &full[..full.len() - 4]).unwrap();
        let (mut journal, replay) = Journal::open(&dir, &plan).expect("recover");
        assert_eq!(replay.records, vec!["first"]);
        assert_eq!(replay.skipped, 1);
        let reason = replay.degraded.expect("named degradation");
        assert!(
            reason.contains("record 2 truncated mid-payload"),
            "{reason}"
        );
        // The torn bytes are gone: a new append lands cleanly and both
        // records replay on the next open.
        journal.append("third").unwrap();
        drop(journal);
        let (_, replay) = Journal::open(&dir, &plan).expect("reopen");
        assert_eq!(replay.records, vec!["first", "third"]);
        assert!(replay.degraded.is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checksum_mismatch_degrades_with_a_named_reason() {
        let dir = temp_dir("bitflip");
        let plan = FaultPlan::default();
        {
            let (mut journal, _) = Journal::open(&dir, &plan).expect("create");
            journal.append("healthy").unwrap();
            journal.append("flipped").unwrap();
        }
        let path = dir.join(JOURNAL_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff; // flip a payload bit of the second record
        std::fs::write(&path, &bytes).unwrap();
        let (_, replay) = Journal::open(&dir, &plan).expect("recover");
        assert_eq!(replay.records, vec!["healthy"]);
        assert_eq!(replay.skipped, 1);
        let reason = replay.degraded.expect("named degradation");
        assert!(
            reason.contains("record 2 corrupt (checksum mismatch)"),
            "{reason}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replay_fault_point_corrupts_the_indexed_record() {
        let dir = temp_dir("fault");
        {
            let (mut journal, _) = Journal::open(&dir, &FaultPlan::default()).expect("create");
            journal.append("one").unwrap();
            journal.append("two").unwrap();
            journal.append("three").unwrap();
        }
        let plan = FaultPlan::parse("journal_corrupt@replay:2").expect("plan");
        let (_, replay) = Journal::open(&dir, &plan).expect("recover");
        assert_eq!(replay.records, vec!["one"], "fault truncates from record 2");
        assert_eq!(replay.skipped, 1);
        let reason = replay.degraded.expect("named degradation");
        assert!(
            reason.contains("record 2 corrupt (injected fault)"),
            "{reason}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_headers_are_refused() {
        let dir = temp_dir("header");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(JOURNAL_FILE);
        std::fs::write(&path, b"NOTAJRNL\x00\x00\x00\x01rest").unwrap();
        assert!(Journal::open(&dir, &FaultPlan::default()).is_err());
        // A future schema version is refused too, not misread.
        let mut future = MAGIC.to_vec();
        future.extend_from_slice(&2u32.to_be_bytes());
        std::fs::write(&path, &future).unwrap();
        assert!(Journal::open(&dir, &FaultPlan::default()).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }
}
