//! The elaborated design: a flattened, name-resolved, width-annotated IR.
//!
//! [`crate::elaborate::elaborate`] lowers a parsed [`crate::ast::SourceUnit`]
//! into a [`Design`]: every instance of every module gets its own nets,
//! memories and processes, port connections become continuous-assignment
//! processes, parameters are folded away, and every expression node carries
//! its final (context-determined) width. The simulator, the concolic engine,
//! the CFG binder and the synthesis estimator all work from this structure.

use std::collections::HashMap;
use std::fmt;

use crate::ast::{BinaryOp, CaseKind, Edge, NetKind, UnaryOp};
use crate::span::Span;
use crate::value::LogicVec;

/// Index of a net (scalar/vector signal) in a [`Design`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub u32);

/// Index of a memory (unpacked array) in a [`Design`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MemId(pub u32);

/// Index of a process in a [`Design`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcessId(pub u32);

/// Index of an instance in a [`Design`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstanceId(pub u32);

/// Index of a static branch site (an `if` or one `case` comparison) in a
/// [`Design`]. The concolic engine records path constraints per site; the
/// AR_CFG binder maps extracted events onto sites.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BranchSiteId(pub u32);

/// A flattened signal.
#[derive(Debug, Clone)]
pub struct Net {
    /// Hierarchical name, e.g. `top.u_cpu.pc`.
    pub name: String,
    /// Name within its declaring module.
    pub local_name: String,
    /// Width in bits.
    pub width: u32,
    /// Declaration kind.
    pub kind: NetKind,
    /// Declaring instance.
    pub instance: InstanceId,
    /// `true` if this is an input port of the top module.
    pub is_top_input: bool,
    /// `true` if this is an output port of the top module.
    pub is_top_output: bool,
    /// Declared initializer (from `reg x = ...`), if any.
    pub init: Option<LogicVec>,
}

/// A flattened memory array.
#[derive(Debug, Clone)]
pub struct Memory {
    /// Hierarchical name.
    pub name: String,
    /// Name within its declaring module.
    pub local_name: String,
    /// Element width in bits.
    pub width: u32,
    /// Number of elements.
    pub depth: u32,
    /// Lowest valid address (arrays may be declared `[base:base+n-1]`).
    pub base: u32,
    /// Declaring instance.
    pub instance: InstanceId,
}

/// A resolved, width-annotated expression.
///
/// Every variant's first-class `width` is the *final* width after context
/// determination; the interpreter never widens implicitly.
#[derive(Debug, Clone, PartialEq)]
pub enum RExpr {
    /// Constant.
    Const(LogicVec),
    /// Whole-net read.
    Net {
        /// Net read.
        net: NetId,
        /// Net width (cached).
        width: u32,
    },
    /// Zero-extend or truncate to `width`.
    Resize {
        /// New width.
        width: u32,
        /// Inner expression.
        expr: Box<RExpr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Result width.
        width: u32,
        /// Operand.
        operand: Box<RExpr>,
    },
    /// Binary operation on equal-width operands (widening already applied).
    Binary {
        /// Operator.
        op: BinaryOp,
        /// Result width.
        width: u32,
        /// Left operand.
        lhs: Box<RExpr>,
        /// Right operand.
        rhs: Box<RExpr>,
    },
    /// Multiplexer `cond ? t : e`.
    Ternary {
        /// Result width.
        width: u32,
        /// Condition (1 bit effective).
        cond: Box<RExpr>,
        /// True value.
        then_expr: Box<RExpr>,
        /// False value.
        else_expr: Box<RExpr>,
    },
    /// Concatenation; `parts[0]` is the MSB part.
    Concat {
        /// Total width.
        width: u32,
        /// Parts, MSB first.
        parts: Vec<RExpr>,
    },
    /// Replication.
    Repeat {
        /// Total width.
        width: u32,
        /// Replication count.
        count: u32,
        /// Replicated expression.
        expr: Box<RExpr>,
    },
    /// Constant part-select `net[lo +: width]` (already normalized).
    Slice {
        /// Selected net.
        net: NetId,
        /// Low bit.
        lo: u32,
        /// Width.
        width: u32,
    },
    /// Dynamic single-bit select `net[index]`.
    IndexBit {
        /// Selected net.
        net: NetId,
        /// Index expression (self-determined width).
        index: Box<RExpr>,
    },
    /// Dynamic part-select `net[start +: width]`.
    DynSlice {
        /// Selected net.
        net: NetId,
        /// Start-bit expression.
        start: Box<RExpr>,
        /// Width.
        width: u32,
    },
    /// Memory element read `mem[index]`.
    MemRead {
        /// Memory.
        mem: MemId,
        /// Element width (cached).
        width: u32,
        /// Index expression.
        index: Box<RExpr>,
    },
}

impl RExpr {
    /// The expression's final width in bits.
    #[must_use]
    pub fn width(&self) -> u32 {
        match self {
            RExpr::Const(v) => v.width(),
            RExpr::Net { width, .. }
            | RExpr::Resize { width, .. }
            | RExpr::Unary { width, .. }
            | RExpr::Binary { width, .. }
            | RExpr::Ternary { width, .. }
            | RExpr::Concat { width, .. }
            | RExpr::Repeat { width, .. }
            | RExpr::Slice { width, .. }
            | RExpr::DynSlice { width, .. }
            | RExpr::MemRead { width, .. } => *width,
            RExpr::IndexBit { .. } => 1,
        }
    }

    /// Collects the nets read by this expression.
    pub fn collect_net_reads(&self, out: &mut Vec<NetId>) {
        match self {
            RExpr::Const(_) => {}
            RExpr::Net { net, .. } => out.push(*net),
            RExpr::Resize { expr, .. } | RExpr::Repeat { expr, .. } => {
                expr.collect_net_reads(out);
            }
            RExpr::Unary { operand, .. } => operand.collect_net_reads(out),
            RExpr::Binary { lhs, rhs, .. } => {
                lhs.collect_net_reads(out);
                rhs.collect_net_reads(out);
            }
            RExpr::Ternary {
                cond,
                then_expr,
                else_expr,
                ..
            } => {
                cond.collect_net_reads(out);
                then_expr.collect_net_reads(out);
                else_expr.collect_net_reads(out);
            }
            RExpr::Concat { parts, .. } => {
                for p in parts {
                    p.collect_net_reads(out);
                }
            }
            RExpr::Slice { net, .. } => out.push(*net),
            RExpr::IndexBit { net, index } => {
                out.push(*net);
                index.collect_net_reads(out);
            }
            RExpr::DynSlice { net, start, .. } => {
                out.push(*net);
                start.collect_net_reads(out);
            }
            RExpr::MemRead { index, .. } => index.collect_net_reads(out),
        }
    }
}

/// A resolved assignment target.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// Whole net.
    Net(NetId),
    /// Constant bit range of a net.
    Slice {
        /// Target net.
        net: NetId,
        /// Low bit.
        lo: u32,
        /// Width.
        width: u32,
    },
    /// Dynamically indexed single bit.
    IndexBit {
        /// Target net.
        net: NetId,
        /// Index expression.
        index: RExpr,
    },
    /// Dynamically indexed part-select.
    DynSlice {
        /// Target net.
        net: NetId,
        /// Start-bit expression.
        start: RExpr,
        /// Width.
        width: u32,
    },
    /// Memory element write.
    MemWrite {
        /// Target memory.
        mem: MemId,
        /// Index expression.
        index: RExpr,
    },
    /// Concatenated targets, MSB part first.
    Concat(Vec<LValue>),
}

impl LValue {
    /// Total width of the target in bits (given the owning design).
    #[must_use]
    pub fn width(&self, design: &Design) -> u32 {
        match self {
            LValue::Net(n) => design.net(*n).width,
            LValue::Slice { width, .. } | LValue::DynSlice { width, .. } => *width,
            LValue::IndexBit { .. } => 1,
            LValue::MemWrite { mem, .. } => design.memory(*mem).width,
            LValue::Concat(parts) => parts.iter().map(|p| p.width(design)).sum(),
        }
    }

    /// The nets (or memory) this lvalue drives.
    pub fn collect_targets(&self, nets: &mut Vec<NetId>, mems: &mut Vec<MemId>) {
        match self {
            LValue::Net(n)
            | LValue::Slice { net: n, .. }
            | LValue::IndexBit { net: n, .. }
            | LValue::DynSlice { net: n, .. } => nets.push(*n),
            LValue::MemWrite { mem, .. } => mems.push(*mem),
            LValue::Concat(parts) => {
                for p in parts {
                    p.collect_targets(nets, mems);
                }
            }
        }
    }
}

/// One arm of a lowered case statement.
#[derive(Debug, Clone, PartialEq)]
pub struct RCaseArm {
    /// Constant label patterns (4-state; wildcards meaningful for
    /// casez/casex). Empty for the default arm.
    pub labels: Vec<LogicVec>,
    /// Branch site recording the comparison for this arm (`None` for the
    /// default arm).
    pub site: Option<BranchSiteId>,
    /// Arm body.
    pub body: RStmt,
}

/// A resolved procedural statement.
#[derive(Debug, Clone, PartialEq)]
pub enum RStmt {
    /// Sequence.
    Block(Vec<RStmt>),
    /// Conditional with its branch site.
    If {
        /// Branch site id (for path constraints / AR_CFG binding).
        site: BranchSiteId,
        /// Condition.
        cond: RExpr,
        /// Taken when the condition is true.
        then_stmt: Box<RStmt>,
        /// Taken when the condition is false (if present).
        else_stmt: Option<Box<RStmt>>,
    },
    /// Case dispatch.
    Case {
        /// Flavor.
        kind: CaseKind,
        /// Selector expression.
        selector: RExpr,
        /// Arms in order; at most one default (empty labels).
        arms: Vec<RCaseArm>,
    },
    /// Assignment.
    Assign {
        /// Target.
        lhs: LValue,
        /// Source (already resized to the target width).
        rhs: RExpr,
        /// `true` for `<=`.
        nonblocking: bool,
    },
    /// Bounded loop over an `integer` net.
    For {
        /// Loop variable (an integer net local to the instance).
        var: NetId,
        /// Initial value.
        init: RExpr,
        /// Continuation condition.
        cond: RExpr,
        /// Step value assigned to `var` each iteration.
        step: RExpr,
        /// Body.
        body: Box<RStmt>,
    },
    /// No-op.
    Null,
}

/// How a process is triggered.
#[derive(Debug, Clone, PartialEq)]
pub enum Trigger {
    /// Edge-sensitive `always` block: runs when any listed edge occurs.
    Edges(Vec<(NetId, Edge)>),
    /// Level-sensitive: runs when any listed net changes value
    /// (combinational `always @*`, explicit level lists, continuous
    /// assignments and port bindings).
    AnyChange(Vec<NetId>),
    /// Runs once at time zero (`initial`).
    Once,
}

/// Where a process came from, for AR_CFG binding and diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcessOrigin {
    /// Declaring module name.
    pub module: String,
    /// Index among the module's `always` blocks (`None` for continuous
    /// assignments, port bindings and `initial` blocks).
    pub always_index: Option<u32>,
    /// Source span of the originating item.
    pub span: Span,
}

/// A runnable process of the elaborated design.
#[derive(Debug, Clone)]
pub struct Process {
    /// Trigger condition.
    pub trigger: Trigger,
    /// Body.
    pub body: RStmt,
    /// Owning instance.
    pub instance: InstanceId,
    /// Provenance.
    pub origin: ProcessOrigin,
}

/// Metadata about one elaborated instance.
#[derive(Debug, Clone)]
pub struct InstanceInfo {
    /// Hierarchical instance name (`top`, `top.u_cpu`, ...).
    pub name: String,
    /// Module definition name.
    pub module: String,
    /// Parent instance (`None` for the top).
    pub parent: Option<InstanceId>,
    /// Resolved parameter values.
    pub params: Vec<(String, LogicVec)>,
}

/// Kinds of branch sites.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiteKind {
    /// An `if` condition.
    If,
    /// One label comparison of a `case` arm.
    CaseArm,
}

/// Metadata about one branch site.
#[derive(Debug, Clone)]
pub struct SiteInfo {
    /// Owning process.
    pub process: ProcessId,
    /// Kind.
    pub kind: SiteKind,
    /// Source span of the condition / arm.
    pub span: Span,
}

/// The fully elaborated design.
#[derive(Debug, Clone, Default)]
pub struct Design {
    /// Name of the top module.
    pub top_module: String,
    nets: Vec<Net>,
    memories: Vec<Memory>,
    processes: Vec<Process>,
    instances: Vec<InstanceInfo>,
    sites: Vec<SiteInfo>,
    by_name: HashMap<String, NetId>,
    mem_by_name: HashMap<String, MemId>,
}

impl Design {
    /// Creates an empty design (used by the elaborator).
    #[must_use]
    pub fn new(top_module: impl Into<String>) -> Design {
        Design {
            top_module: top_module.into(),
            ..Design::default()
        }
    }

    /// All nets.
    #[must_use]
    pub fn nets(&self) -> &[Net] {
        &self.nets
    }

    /// All memories.
    #[must_use]
    pub fn memories(&self) -> &[Memory] {
        &self.memories
    }

    /// All processes.
    #[must_use]
    pub fn processes(&self) -> &[Process] {
        &self.processes
    }

    /// All instances; index 0 is the top.
    #[must_use]
    pub fn instances(&self) -> &[InstanceInfo] {
        &self.instances
    }

    /// All branch sites.
    #[must_use]
    pub fn sites(&self) -> &[SiteInfo] {
        &self.sites
    }

    /// Looks up a net.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a net of this design.
    #[must_use]
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.0 as usize]
    }

    /// Looks up a memory.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a memory of this design.
    #[must_use]
    pub fn memory(&self, id: MemId) -> &Memory {
        &self.memories[id.0 as usize]
    }

    /// Looks up a process.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a process of this design.
    #[must_use]
    pub fn process(&self, id: ProcessId) -> &Process {
        &self.processes[id.0 as usize]
    }

    /// Looks up an instance.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not an instance of this design.
    #[must_use]
    pub fn instance(&self, id: InstanceId) -> &InstanceInfo {
        &self.instances[id.0 as usize]
    }

    /// Looks up a branch site.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a site of this design.
    #[must_use]
    pub fn site(&self, id: BranchSiteId) -> &SiteInfo {
        &self.sites[id.0 as usize]
    }

    /// Finds a net by hierarchical name.
    #[must_use]
    pub fn find_net(&self, hier_name: &str) -> Option<NetId> {
        self.by_name.get(hier_name).copied()
    }

    /// Finds a memory by hierarchical name.
    #[must_use]
    pub fn find_memory(&self, hier_name: &str) -> Option<MemId> {
        self.mem_by_name.get(hier_name).copied()
    }

    /// Nets that are input ports of the top module.
    pub fn top_inputs(&self) -> impl Iterator<Item = NetId> + '_ {
        self.nets
            .iter()
            .enumerate()
            .filter(|(_, n)| n.is_top_input)
            .map(|(i, _)| NetId(i as u32))
    }

    /// Nets that are output ports of the top module.
    pub fn top_outputs(&self) -> impl Iterator<Item = NetId> + '_ {
        self.nets
            .iter()
            .enumerate()
            .filter(|(_, n)| n.is_top_output)
            .map(|(i, _)| NetId(i as u32))
    }

    /// Registers a net (elaborator use). Returns its id.
    ///
    /// # Panics
    ///
    /// Panics if a net with the same hierarchical name already exists.
    pub fn add_net(&mut self, net: Net) -> NetId {
        let id = NetId(self.nets.len() as u32);
        let prev = self.by_name.insert(net.name.clone(), id);
        assert!(prev.is_none(), "duplicate net name {}", net.name);
        self.nets.push(net);
        id
    }

    /// Registers a memory (elaborator use). Returns its id.
    ///
    /// # Panics
    ///
    /// Panics if a memory with the same hierarchical name already exists.
    pub fn add_memory(&mut self, mem: Memory) -> MemId {
        let id = MemId(self.memories.len() as u32);
        let prev = self.mem_by_name.insert(mem.name.clone(), id);
        assert!(prev.is_none(), "duplicate memory name {}", mem.name);
        self.memories.push(mem);
        id
    }

    /// Registers a process (elaborator use). Returns its id.
    pub fn add_process(&mut self, process: Process) -> ProcessId {
        let id = ProcessId(self.processes.len() as u32);
        self.processes.push(process);
        id
    }

    /// Registers an instance (elaborator use). Returns its id.
    pub fn add_instance(&mut self, inst: InstanceInfo) -> InstanceId {
        let id = InstanceId(self.instances.len() as u32);
        self.instances.push(inst);
        id
    }

    /// Mutable access to an instance (elaborator use: parameters are
    /// resolved after the instance entry is created).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not an instance of this design.
    pub fn instance_mut(&mut self, id: InstanceId) -> &mut InstanceInfo {
        &mut self.instances[id.0 as usize]
    }

    /// Registers a branch site (elaborator use). Returns its id.
    pub fn add_site(&mut self, site: SiteInfo) -> BranchSiteId {
        let id = BranchSiteId(self.sites.len() as u32);
        self.sites.push(site);
        id
    }

    /// Nets declared by `instance` (useful for property authoring).
    pub fn nets_of_instance(&self, instance: InstanceId) -> impl Iterator<Item = NetId> + '_ {
        self.nets
            .iter()
            .enumerate()
            .filter(move |(_, n)| n.instance == instance)
            .map(|(i, _)| NetId(i as u32))
    }

    /// Finds instances whose module name equals `module`.
    pub fn instances_of_module<'a>(
        &'a self,
        module: &'a str,
    ) -> impl Iterator<Item = InstanceId> + 'a {
        self.instances
            .iter()
            .enumerate()
            .filter(move |(_, i)| i.module == module)
            .map(|(i, _)| InstanceId(i as u32))
    }

    /// Summary statistics (for reports and the synthesis estimator).
    #[must_use]
    pub fn stats(&self) -> DesignStats {
        let reg_bits = self
            .nets
            .iter()
            .filter(|n| n.kind == NetKind::Reg)
            .map(|n| u64::from(n.width))
            .sum();
        let mem_bits = self
            .memories
            .iter()
            .map(|m| u64::from(m.width) * u64::from(m.depth))
            .sum();
        DesignStats {
            nets: self.nets.len(),
            memories: self.memories.len(),
            processes: self.processes.len(),
            instances: self.instances.len(),
            branch_sites: self.sites.len(),
            reg_bits,
            mem_bits,
        }
    }
}

/// Aggregate size statistics of a design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DesignStats {
    /// Number of nets.
    pub nets: usize,
    /// Number of memories.
    pub memories: usize,
    /// Number of processes.
    pub processes: usize,
    /// Number of instances.
    pub instances: usize,
    /// Number of branch sites.
    pub branch_sites: usize,
    /// Total flip-flop-candidate bits.
    pub reg_bits: u64,
    /// Total memory bits.
    pub mem_bits: u64,
}

impl fmt::Display for DesignStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} instances, {} nets, {} memories ({} bits), {} processes, {} branch sites, {} reg bits",
            self.instances, self.nets, self.memories, self.mem_bits, self.processes,
            self.branch_sites, self.reg_bits
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_net(name: &str, width: u32) -> Net {
        Net {
            name: name.into(),
            local_name: name.rsplit('.').next().unwrap_or(name).into(),
            width,
            kind: NetKind::Wire,
            instance: InstanceId(0),
            is_top_input: false,
            is_top_output: false,
            init: None,
        }
    }

    #[test]
    fn add_and_find_nets() {
        let mut d = Design::new("top");
        let a = d.add_net(dummy_net("top.a", 8));
        let b = d.add_net(dummy_net("top.b", 1));
        assert_eq!(d.find_net("top.a"), Some(a));
        assert_eq!(d.find_net("top.b"), Some(b));
        assert_eq!(d.find_net("top.c"), None);
        assert_eq!(d.net(a).width, 8);
    }

    #[test]
    #[should_panic(expected = "duplicate net name")]
    fn duplicate_net_panics() {
        let mut d = Design::new("top");
        d.add_net(dummy_net("top.a", 1));
        d.add_net(dummy_net("top.a", 1));
    }

    #[test]
    fn rexpr_width_and_reads() {
        let e = RExpr::Binary {
            op: BinaryOp::Add,
            width: 8,
            lhs: Box::new(RExpr::Net {
                net: NetId(0),
                width: 8,
            }),
            rhs: Box::new(RExpr::Resize {
                width: 8,
                expr: Box::new(RExpr::Net {
                    net: NetId(1),
                    width: 4,
                }),
            }),
        };
        assert_eq!(e.width(), 8);
        let mut reads = Vec::new();
        e.collect_net_reads(&mut reads);
        assert_eq!(reads, vec![NetId(0), NetId(1)]);
    }

    #[test]
    fn lvalue_width() {
        let mut d = Design::new("top");
        let a = d.add_net(dummy_net("top.a", 8));
        let b = d.add_net(dummy_net("top.b", 3));
        let lv = LValue::Concat(vec![
            LValue::Net(a),
            LValue::Slice {
                net: b,
                lo: 1,
                width: 2,
            },
        ]);
        assert_eq!(lv.width(&d), 10);
        let mut nets = Vec::new();
        let mut mems = Vec::new();
        lv.collect_targets(&mut nets, &mut mems);
        assert_eq!(nets, vec![a, b]);
        assert!(mems.is_empty());
    }

    #[test]
    fn stats_counts() {
        let mut d = Design::new("top");
        d.add_instance(InstanceInfo {
            name: "top".into(),
            module: "top".into(),
            parent: None,
            params: vec![],
        });
        let mut n = dummy_net("top.q", 16);
        n.kind = NetKind::Reg;
        d.add_net(n);
        d.add_memory(Memory {
            name: "top.mem".into(),
            local_name: "mem".into(),
            width: 8,
            depth: 256,
            base: 0,
            instance: InstanceId(0),
        });
        let s = d.stats();
        assert_eq!(s.reg_bits, 16);
        assert_eq!(s.mem_bits, 2048);
        assert_eq!(s.instances, 1);
        assert!(!s.to_string().is_empty());
    }
}
