//! Property tests for the four-state value library: algebraic laws over
//! random fully-defined vectors, unknown-propagation invariants, and
//! slice/concat round trips.

use proptest::prelude::*;
use soccar_rtl::value::{Bit, LogicVec};

fn logic_vec(width: u32) -> impl Strategy<Value = LogicVec> {
    proptest::collection::vec(0u8..2, width as usize).prop_map(move |bits| {
        let bs: Vec<Bit> = bits
            .iter()
            .map(|b| if *b == 1 { Bit::One } else { Bit::Zero })
            .collect();
        LogicVec::from_bits(&bs)
    })
}

fn logic_vec_4state(width: u32) -> impl Strategy<Value = LogicVec> {
    proptest::collection::vec(0u8..4, width as usize).prop_map(move |bits| {
        let bs: Vec<Bit> = bits
            .iter()
            .map(|b| match b {
                0 => Bit::Zero,
                1 => Bit::One,
                2 => Bit::X,
                _ => Bit::Z,
            })
            .collect();
        LogicVec::from_bits(&bs)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn add_is_commutative_and_associative(
        a in logic_vec(16), b in logic_vec(16), c in logic_vec(16)
    ) {
        prop_assert_eq!(a.add(&b), b.add(&a));
        prop_assert_eq!(a.add(&b).add(&c), a.add(&b.add(&c)));
    }

    #[test]
    fn sub_inverts_add(a in logic_vec(16), b in logic_vec(16)) {
        prop_assert_eq!(a.add(&b).sub(&b), a.clone());
        prop_assert_eq!(a.sub(&a).to_u64(), Some(0));
        prop_assert_eq!(a.add(&b.neg()), a.sub(&b));
    }

    #[test]
    fn mul_matches_u64(a in 0u64..65536, b in 0u64..65536) {
        let va = LogicVec::from_u64(16, a);
        let vb = LogicVec::from_u64(16, b);
        prop_assert_eq!(va.mul(&vb).to_u64(), Some((a * b) & 0xFFFF));
    }

    #[test]
    fn divrem_reconstructs(a in 1u64..4096, b in 1u64..4096) {
        let va = LogicVec::from_u64(16, a);
        let vb = LogicVec::from_u64(16, b);
        let q = va.udiv(&vb);
        let r = va.urem(&vb);
        prop_assert_eq!(q.mul(&vb).add(&r), va);
        prop_assert!(r.ult(&vb).is_all_ones());
    }

    #[test]
    fn bitwise_de_morgan(a in logic_vec(24), b in logic_vec(24)) {
        prop_assert_eq!(a.and(&b).not(), a.not().or(&b.not()));
        prop_assert_eq!(a.or(&b).not(), a.not().and(&b.not()));
        prop_assert_eq!(a.xor(&b), a.and(&b.not()).or(&a.not().and(&b)));
    }

    #[test]
    fn shifts_compose(a in logic_vec(32), s1 in 0u32..16, s2 in 0u32..16) {
        prop_assert_eq!(
            a.shl_const(s1).shl_const(s2),
            a.shl_const(s1 + s2)
        );
        prop_assert_eq!(
            a.lshr_const(s1).lshr_const(s2),
            a.lshr_const(s1 + s2)
        );
    }

    #[test]
    fn concat_slice_roundtrip(hi in logic_vec_4state(9), lo in logic_vec_4state(7)) {
        let cat = hi.concat(&lo);
        prop_assert_eq!(cat.width(), 16);
        prop_assert_eq!(cat.slice(7, 9), hi);
        prop_assert_eq!(cat.slice(0, 7), lo);
    }

    #[test]
    fn replicate_is_repeated_concat(a in logic_vec_4state(5), n in 1u32..5) {
        let rep = a.replicate(n);
        prop_assert_eq!(rep.width(), 5 * n);
        for i in 0..n {
            prop_assert_eq!(rep.slice(i * 5, 5), a.clone());
        }
    }

    #[test]
    fn unknowns_poison_arithmetic(a in logic_vec(12), x in logic_vec_4state(12)) {
        prop_assume!(x.has_unknown());
        prop_assert!(a.add(&x).is_all_x());
        prop_assert!(a.sub(&x).is_all_x());
        prop_assert!(a.mul(&x).is_all_x());
        prop_assert!(a.eq_logic(&x).is_all_x());
        prop_assert!(a.ult(&x).is_all_x());
    }

    #[test]
    fn case_equality_is_reflexive_total(a in logic_vec_4state(10), b in logic_vec_4state(10)) {
        prop_assert!(a.case_eq(&a).is_all_ones());
        let ab = a.case_eq(&b);
        prop_assert!(ab.is_all_ones() || ab.is_all_zero(), "=== is 2-state");
        prop_assert_eq!(ab.is_all_ones(), a == b);
    }

    #[test]
    fn comparisons_match_u64(a in 0u64..1_000_000, b in 0u64..1_000_000) {
        let va = LogicVec::from_u64(24, a);
        let vb = LogicVec::from_u64(24, b);
        prop_assert_eq!(va.ult(&vb).is_all_ones(), a < b);
        prop_assert_eq!(va.ule(&vb).is_all_ones(), a <= b);
        prop_assert_eq!(va.eq_logic(&vb).is_all_ones(), a == b);
    }

    #[test]
    fn reductions_match_counts(a in logic_vec(20)) {
        let ones = a.count_ones();
        prop_assert_eq!(a.reduce_or().is_all_ones(), ones > 0);
        prop_assert_eq!(a.reduce_and().is_all_ones(), ones == 20);
        prop_assert_eq!(a.reduce_xor().is_all_ones(), ones % 2 == 1);
    }

    #[test]
    fn resize_preserves_low_bits(a in logic_vec_4state(18), w in 1u32..40) {
        let r = a.resize(w);
        prop_assert_eq!(r.width(), w);
        for i in 0..w.min(18) {
            prop_assert_eq!(r.bit(i), a.bit(i));
        }
        for i in 18..w {
            prop_assert_eq!(r.bit(i), Bit::Zero);
        }
    }

    #[test]
    fn bin_str_roundtrip(a in logic_vec_4state(14)) {
        let s = format!("{a:b}");
        let back = LogicVec::from_bin_str(&s).expect("parse");
        prop_assert_eq!(back, a);
    }
}
