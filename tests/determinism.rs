//! Determinism regression: the parallel stages (AR_CFG extraction
//! fan-out, speculative flip solving, variant sweeps) must merge by
//! stable keys, never completion order, so the full pipeline produces a
//! byte-identical canonical report for every job count. These tests run
//! the complete pipeline — frontend, lint, extraction, composition,
//! binding, concolic testing — on both bundled SoCs at `--jobs 1` and
//! `--jobs 4` and compare the serialized `AnalysisReport` JSON.

use soccar::evaluation::evaluate_variant;
use soccar::SoccarConfig;
use soccar_soc::SocModel;

/// Full-pipeline canonical JSON for one bug-seeded variant at `jobs`.
fn canonical_json(model: SocModel, number: u32, jobs: usize) -> String {
    canonical_json_faulted(model, number, jobs, "")
}

/// Same, but with a `SOCCAR_FAULTS`-style plan injected and `keep_going`
/// set so the injected faults degrade rather than abort.
fn canonical_json_faulted(model: SocModel, number: u32, jobs: usize, faults: &str) -> String {
    let spec = soccar_soc::variant(model, number).expect("bundled variant exists");
    let mut config = SoccarConfig::default();
    config.concolic.cycles = 12;
    config.concolic.max_rounds = 4;
    config.jobs = jobs;
    if !faults.is_empty() {
        config.keep_going = true;
        config.fault_plan = soccar_exec::FaultPlan::parse(faults).expect("valid fault plan");
    }
    let eval = evaluate_variant(&spec, config).expect("benchmark variants always evaluate");
    eval.report
        .canonical_json()
        .expect("canonical report serializes")
}

#[test]
fn cluster_soc_report_is_byte_identical_across_job_counts() {
    let serial = canonical_json(SocModel::ClusterSoc, 1, 1);
    let parallel = canonical_json(SocModel::ClusterSoc, 1, 4);
    assert_eq!(serial, parallel);
    // The run exercised the parallel stages on real work, not a trivial
    // empty report.
    assert!(serial.contains("\"ar_events\""));
    assert!(serial.contains("\"solver_calls\""));
}

#[test]
fn auto_soc_report_is_byte_identical_across_job_counts() {
    let serial = canonical_json(SocModel::AutoSoc, 2, 1);
    let parallel = canonical_json(SocModel::AutoSoc, 2, 4);
    assert_eq!(serial, parallel);
    assert!(serial.contains("\"violations\""));
}

#[test]
fn faulted_cluster_soc_report_is_byte_identical_across_job_counts() {
    // A fixed fault plan degrades the same stages by the same reasons no
    // matter how many workers race: injection points are keyed on serial
    // per-item indices, never completion order.
    let faults = "solver_unknown@1,task_panic@extract:2";
    let serial = canonical_json_faulted(SocModel::ClusterSoc, 1, 1, faults);
    let parallel = canonical_json_faulted(SocModel::ClusterSoc, 1, 4, faults);
    assert_eq!(serial, parallel);
    // The faults actually landed: the report is degraded, not pristine.
    assert!(
        serial.contains("\"status\": \"degraded\""),
        "expected degraded health in:\n{serial}"
    );
    assert!(serial.contains("injected fault: solver_unknown@1"));
    assert!(serial.contains("injected fault: task_panic@extract:2"));
}

#[test]
fn canonical_report_carries_no_wall_clock_fields() {
    let json = canonical_json(SocModel::ClusterSoc, 2, 2);
    for timing in ["elapsed", "busy_secs", "utilization", "\"jobs\""] {
        assert!(!json.contains(timing), "canonical JSON leaks `{timing}`");
    }
}
