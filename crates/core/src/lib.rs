//! # soccar
//!
//! A from-scratch Rust reproduction of **SoCCAR: Detecting System-on-Chip
//! Security Violations Under Asynchronous Resets** (DAC 2021).
//!
//! SoCCAR detects security violations caused by *partial asynchronous
//! resets* — a register that should have been scrubbed, an address-range
//! guard that should have been re-armed, a privilege FSM knocked into an
//! undefined state — by (1) extracting the Asynchronous-Reset CFG from the
//! RTL, (2) composing it across the SoC's module hierarchy and reset
//! domains, and (3) driving concolic testing over the extracted space
//! while checking security properties.
//!
//! This crate is the facade: [`Soccar`] runs the Figure 1 pipeline on any
//! Verilog source (with a `soccar-lint` static pre-pass ahead of the
//! concolic stage), and [`evaluation`] reruns the paper's
//! red-team/blue-team experiment on the bundled ClusterSoC/AutoSoC
//! benchmarks.
//!
//! ```text
//! Verilog ─▶ soccar-rtl ─▶ soccar-cfg (Alg. 1–2) ─▶ soccar-concolic (Alg. 3)
//!                 │    └──▶ soccar-lint (pre-pass)       │
//!                 └────────── soccar-sim ◀───────────────┘
//!                                 │
//!                            soccar-smt
//! ```
//!
//! # Examples
//!
//! Detect an unscrubbed key register:
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use soccar::{Soccar, SoccarConfig};
//! use soccar_concolic::{PropertyKind, SecurityProperty};
//! use soccar_rtl::LogicVec;
//!
//! let buggy = "
//!   module aes(input clk, input rst_n, output reg [7:0] key);
//!     always @(posedge clk or negedge rst_n)
//!       if (!rst_n) key <= key;     // BUG: reset fails to clear the key
//!       else key <= 8'hA5;
//!   endmodule
//!   module top(input clk, input crypto_rst_n);
//!     aes u (.clk(clk), .rst_n(crypto_rst_n));
//!   endmodule";
//! let property = SecurityProperty {
//!     name: "aes-key-cleared".into(),
//!     module: "aes".into(),
//!     kind: PropertyKind::ClearedAfterReset {
//!         domain: "top.crypto_rst_n".into(),
//!         signal: "top.u.key".into(),
//!         expected: LogicVec::zeros(8),
//!         window: 0,
//!     },
//! };
//! let report = Soccar::new(SoccarConfig::default())
//!     .analyze("t.v", buggy, "top", vec![property])?;
//! assert_eq!(report.violations().len(), 1);
//! assert_eq!(report.violations()[0].module, "aes");
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cli;
pub mod error;
pub mod evaluation;
pub mod incremental;
pub mod json;
pub mod pipeline;

pub use error::SoccarError;
pub use evaluation::{
    evaluate_clean, evaluate_generated, evaluate_generated_traced, evaluate_variant, property_of,
    score_generated, BugOutcome, Campaign, CampaignRow, GeneratedEvaluation, GeneratedRecall,
    VariantEvaluation,
};
pub use incremental::{AnalysisSession, CacheCaps, RequestQos, RequestStats, SessionCounters};
pub use pipeline::{
    AnalysisReport, CanonicalReport, ExecSummary, ExtractionSummary, Health, Soccar, SoccarConfig,
    StageReport,
};
