//! Round-trip the full benchmark SoCs through the pretty-printer:
//! `parse → print → parse → print` must reach a fixed point, and the
//! reprinted source must elaborate to a design with identical statistics
//! and produce identical detection results.

use soccar_rtl::parser::parse;
use soccar_rtl::printer::print_unit;
use soccar_rtl::span::FileId;
use soccar_soc::SocModel;

#[test]
fn socs_roundtrip_through_the_printer() {
    for spec in soccar_soc::variants() {
        let design = soccar_soc::generate(spec.soc, Some(spec.number));
        let unit1 = parse(FileId(0), &design.source).expect("parse original");
        let printed = print_unit(&unit1);
        let unit2 = parse(FileId(0), &printed)
            .unwrap_or_else(|e| panic!("{}: reparse failed: {e}", spec.name()));
        assert_eq!(
            print_unit(&unit2),
            printed,
            "{}: printer fixed point",
            spec.name()
        );
        // Elaboration equivalence: identical structural statistics.
        let d1 = soccar_rtl::elaborate::elaborate(&unit1, &design.top).expect("elab 1");
        let d2 = soccar_rtl::elaborate::elaborate(&unit2, &design.top).expect("elab 2");
        assert_eq!(d1.stats(), d2.stats(), "{}", spec.name());
        assert_eq!(d1.nets().len(), d2.nets().len());
    }
}

#[test]
fn reprinted_variant_detects_identically() {
    use soccar::evaluation::score;
    use soccar::{Soccar, SoccarConfig};
    use soccar_concolic::{ConcolicConfig, SecurityProperty};

    let spec = soccar_soc::variant(SocModel::ClusterSoc, 2).expect("variant");
    let design = soccar_soc::generate(spec.soc, Some(spec.number));
    let unit = parse(FileId(0), &design.source).expect("parse");
    let reprinted = print_unit(&unit);

    let properties: Vec<SecurityProperty> = soccar_soc::security_checks(spec.soc)
        .iter()
        .map(soccar::property_of)
        .collect();
    let config = SoccarConfig {
        concolic: ConcolicConfig {
            cycles: 10,
            max_rounds: 2,
            sweep_stride: 4,
            symbolic_inputs: soccar_soc::symbolic_inputs(spec.soc),
            ..ConcolicConfig::default()
        },
        ..SoccarConfig::default()
    };
    let run = |src: &str| {
        let report = Soccar::new(SoccarConfig {
            analysis: config.analysis,
            naming: config.naming.clone(),
            concolic: config.concolic.clone(),
            lint: config.lint.clone(),
        })
        .analyze("soc.v", src, &design.top, properties.clone())
        .expect("analyze");
        let eval = score(&spec, report);
        let mut fired: Vec<String> = eval
            .report
            .concolic
            .violations
            .iter()
            .map(|v| v.property.clone())
            .collect();
        fired.sort();
        fired
    };
    assert_eq!(run(&design.source), run(&reprinted));
}
