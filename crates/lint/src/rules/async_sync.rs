//! `async-reset-unsynchronized` — asynchronous reset consumed without a
//! release synchronizer.
//!
//! Asserting an asynchronous reset is safe at any time, but *releasing* it
//! near the sink's active clock edge can violate recovery/removal timing
//! and drop different flops out of reset on different cycles. The standard
//! fix is a 2-FF release synchronizer in the sink clock domain. This rule
//! flags every module that consumes a raw asynchronous reset in a clocked
//! block while containing no recognizable synchronizer for it.

use std::collections::BTreeSet;

use soccar_cfg::leading_if;
use soccar_rtl::ast::{Expr, Stmt};

use crate::context::{LintContext, ModuleView};
use crate::diagnostic::{Diagnostic, Severity};
use crate::rules::{lhs_base_names, LintRule, SYNC_MARKERS};

/// See the module docs.
#[derive(Debug, Clone, Copy, Default)]
pub struct AsyncResetUnsynchronized;

impl LintRule for AsyncResetUnsynchronized {
    fn id(&self) -> &'static str {
        "async-reset-unsynchronized"
    }

    fn description(&self) -> &'static str {
        "async reset consumed with no 2-FF release synchronizer in the sink clock domain"
    }

    fn default_severity(&self) -> Severity {
        Severity::Warning
    }

    fn check(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        for view in &ctx.modules {
            let mut reported = BTreeSet::new();
            for block in view.module.always_blocks() {
                if view.clock_of(block).is_none() {
                    continue; // reset-only sensitivity: implicit-governor's case
                }
                for item in view.async_resets_of(block) {
                    let name = item.signal.to_ascii_lowercase();
                    if SYNC_MARKERS.iter().any(|m| name.contains(m)) {
                        continue; // already a synchronized copy by naming
                    }
                    if has_release_synchronizer(view, &item.signal) {
                        continue;
                    }
                    if reported.insert(item.signal.clone()) {
                        out.push(Diagnostic::new(
                            self.id(),
                            self.default_severity(),
                            &view.module.name,
                            block.span,
                            format!(
                                "asynchronous reset `{}` is consumed directly; no 2-FF \
                                 release synchronizer for it exists in this module, so \
                                 reset release can violate recovery/removal timing",
                                item.signal
                            ),
                        ));
                    }
                }
            }
        }
    }
}

/// `true` if `view` contains a recognizable 2-FF release synchronizer for
/// reset `r`: a clocked block with `r` edge-qualified, a leading test of
/// `r`, and an operational arm that shifts a constant through a chain of
/// at least two registers (`meta <= 1'b1; sync <= meta;`).
fn has_release_synchronizer(view: &ModuleView<'_>, r: &str) -> bool {
    view.module.always_blocks().any(|block| {
        view.clock_of(block).is_some()
            && view.async_resets_of(block).iter().any(|i| i.signal == r)
            && leading_if(&block.body).is_some_and(|(cond, _, els)| {
                cond.is_signal_test(r) && els.is_some_and(is_constant_shift_chain)
            })
    })
}

/// `true` if the statement is a chain of ≥2 register assignments where one
/// register is fed a constant and another is fed from a register assigned
/// in the same arm.
fn is_constant_shift_chain(arm: &Stmt) -> bool {
    let mut assigns: Vec<(Vec<String>, &Expr)> = Vec::new();
    collect_assigns(arm, &mut assigns);
    if assigns.len() < 2 {
        return false;
    }
    let targets: BTreeSet<&str> = assigns
        .iter()
        .flat_map(|(lhs, _)| lhs.iter().map(String::as_str))
        .collect();
    let feeds_constant = assigns
        .iter()
        .any(|(_, rhs)| matches!(rhs, Expr::Number { .. }));
    let shifts_stage = assigns
        .iter()
        .any(|(_, rhs)| matches!(rhs, Expr::Ident { name, .. } if targets.contains(name.as_str())));
    feeds_constant && shifts_stage
}

fn collect_assigns<'a>(stmt: &'a Stmt, out: &mut Vec<(Vec<String>, &'a Expr)>) {
    match stmt {
        Stmt::Block { stmts, .. } => {
            for s in stmts {
                collect_assigns(s, out);
            }
        }
        Stmt::Blocking { lhs, rhs, .. } | Stmt::NonBlocking { lhs, rhs, .. } => {
            let mut bases = Vec::new();
            lhs_base_names(lhs, &mut bases);
            out.push((bases, rhs));
        }
        _ => {}
    }
}
