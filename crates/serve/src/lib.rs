//! # soccar-serve
//!
//! The persistent analysis daemon behind `soccar serve`, plus the
//! `soccar` command-line binary itself.
//!
//! A long-lived [`Server`] wraps one
//! [`soccar::incremental::AnalysisSession`]: per-design caches keyed by
//! content hash, so an RTL edit re-parses and re-extracts only the
//! modules that changed and re-runs only the concolic work whose inputs
//! changed. CI and editors talk to it over a small length-prefixed JSON
//! protocol ([`proto`]) with four commands — `analyze`, `lint`,
//! `status`, `shutdown` — and every `analyze` body is **byte-identical**
//! to `soccar analyze --json` on the same input, so warm-cache serving
//! never changes results.
//!
//! ```text
//! soccar client ── frame ─▶ Server ── Mutex ─▶ AnalysisSession ─▶ pipeline
//!        ◀─ envelope+body ─┘            (content-hashed cache tiers)
//! ```
//!
//! Protocol and cache-invalidation reference: `docs/SERVER.md`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod client;
pub mod journal;
pub mod jsonval;
pub mod proto;
pub mod server;

pub use client::{roundtrip_with_retry, Client, RetryPolicy};
pub use journal::{Journal, Replay};
pub use jsonval::Json;
pub use proto::{read_frame, write_frame, Envelope, Request, MAX_FRAME};
pub use server::{resolve_request, JournalStatus, Server, ServerOptions, StatusBody, TierSizes};
