//! IP classification — the paper's **Table II**.
//!
//! "Certain bugs are relevant to certain IP types, e.g., an information
//! flow violation that compromises a key or plaintext is relevant to a
//! crypto core while a DoS attack making some privilege modes unavailable
//! would make sense in a processor IP."

use crate::bugs::ViolationType;

/// The IP classes of Table II (plus the infrastructure classes the SoCs
/// also contain).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IpClass {
    /// SRAMs, DMA engines.
    Memory,
    /// RISC-V cores.
    Processor,
    /// Crypto engines.
    Cryptographic,
    /// DSP datapaths (no Table II violation class).
    Dsp,
    /// Communication peripherals (no Table II violation class).
    Communication,
    /// Bus fabrics and bridges (bug target in ClusterSoC #3).
    Interconnect,
}

impl IpClass {
    /// Display name, matching Table II's wording.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            IpClass::Memory => "Memory IP",
            IpClass::Processor => "Processor Core",
            IpClass::Cryptographic => "Cryptographic IP",
            IpClass::Dsp => "DSP Core",
            IpClass::Communication => "Communication IP",
            IpClass::Interconnect => "Interconnect",
        }
    }

    /// The violation class relevant to this IP class (Table II's third
    /// column), if any.
    #[must_use]
    pub fn violation(self) -> Option<ViolationType> {
        match self {
            IpClass::Memory | IpClass::Interconnect => Some(ViolationType::DataIntegrity),
            IpClass::Processor => Some(ViolationType::PrivilegeMode),
            IpClass::Cryptographic => Some(ViolationType::InformationLeakage),
            IpClass::Dsp | IpClass::Communication => None,
        }
    }

    /// Example IPs implemented in this testbed (Table II's second column).
    #[must_use]
    pub fn example_ips(self) -> &'static [&'static str] {
        match self {
            IpClass::Memory => &["SRAM(SP)", "SRAM(DP)", "DMA Engine"],
            IpClass::Processor => &["RV32I", "RV32E", "RV32IC", "RV32IM"],
            IpClass::Cryptographic => &["AES192", "SHA256", "RSA", "MD5", "DES3"],
            IpClass::Dsp => &["FIR", "DFT", "IDFT", "IIR"],
            IpClass::Communication => &["UART", "SPI", "Ethernet"],
            IpClass::Interconnect => &["Wishbone B3", "AXI4-Lite"],
        }
    }
}

/// Classifies a generator module name into its IP class.
#[must_use]
pub fn classify(module: &str) -> Option<IpClass> {
    Some(match module {
        "sram_sp" | "sram_dp" | "dma_engine" => IpClass::Memory,
        m if m.starts_with("rv32") => IpClass::Processor,
        "aes192" | "sha256" | "md5" | "des3" | "rsa" => IpClass::Cryptographic,
        "fir_filter" | "iir_filter" | "dft_core" | "idft_core" => IpClass::Dsp,
        "uart" | "spi_ctrl" | "eth_mac" => IpClass::Communication,
        m if m.starts_with("wb_") || m.starts_with("axi") || m == "wb2axi_shim" => {
            IpClass::Interconnect
        }
        _ => return None,
    })
}

/// The Table II rows (classes that carry a violation type).
#[must_use]
pub fn table_ii() -> Vec<IpClass> {
    vec![IpClass::Memory, IpClass::Processor, IpClass::Cryptographic]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_rows_match_paper() {
        let rows = table_ii();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].violation(), Some(ViolationType::DataIntegrity));
        assert_eq!(rows[1].violation(), Some(ViolationType::PrivilegeMode));
        assert_eq!(rows[2].violation(), Some(ViolationType::InformationLeakage));
    }

    #[test]
    fn classification_covers_bug_targets() {
        for v in crate::bugs::variants() {
            for bug in &v.bugs {
                let class = classify(&bug.ip)
                    .unwrap_or_else(|| panic!("unclassified bug target {}", bug.ip));
                assert_eq!(
                    class.violation(),
                    Some(bug.violation),
                    "{}: bug at {} has mismatched class",
                    v.name(),
                    bug.ip
                );
            }
        }
    }

    #[test]
    fn all_generators_classified() {
        for m in [
            "sram_sp",
            "sram_dp",
            "dma_engine",
            "rv32i_core",
            "rv32imc_core",
            "aes192",
            "rsa",
            "fir_filter",
            "uart",
            "eth_mac",
            "wb_fabric",
            "axi_xbar",
            "wb2axi_shim",
        ] {
            assert!(classify(m).is_some(), "{m}");
        }
        assert!(classify("mystery").is_none());
    }

    #[test]
    fn class_metadata_nonempty() {
        for c in [
            IpClass::Memory,
            IpClass::Processor,
            IpClass::Cryptographic,
            IpClass::Dsp,
            IpClass::Communication,
            IpClass::Interconnect,
        ] {
            assert!(!c.name().is_empty());
            assert!(!c.example_ips().is_empty());
        }
    }
}
