//! Engine behaviour tests: determinism, unreachable-target accounting,
//! witness quality, and multi-domain scheduling.

use soccar_cfg::{bind_events, compose_soc, GovernorAnalysis, ResetNaming};
use soccar_concolic::{ConcolicConfig, ConcolicEngine, PropertyKind, SecurityProperty};
use soccar_rtl::parser::parse;
use soccar_rtl::span::FileId;
use soccar_rtl::LogicVec;

fn run(
    src: &str,
    props: Vec<SecurityProperty>,
    analysis: GovernorAnalysis,
    config: ConcolicConfig,
) -> soccar_concolic::ConcolicReport {
    let unit = parse(FileId(0), src).expect("parse");
    let design = soccar_rtl::elaborate::elaborate(&unit, "top").expect("elaborate");
    let soc = compose_soc(&unit, "top", &ResetNaming::new(), analysis).expect("compose");
    let bound = bind_events(&design, &soc).expect("bind");
    ConcolicEngine::new(&design, &bound, props, config)
        .expect("engine")
        .run()
        .expect("run")
}

const TWO_DOMAIN: &str = "
    module ip(input clk, input rst_n, output reg [7:0] q);
      always @(posedge clk or negedge rst_n)
        if (!rst_n) q <= 8'd0; else q <= q + 8'd1;
    endmodule
    module bad_ip(input clk, input rst_n, output reg [7:0] secret);
      always @(posedge clk or negedge rst_n)
        if (!rst_n) secret <= secret;  // BUG
        else secret <= 8'h77;
    endmodule
    module top(input clk, input a_rst_n, input b_rst_n);
      ip u_a (.clk(clk), .rst_n(a_rst_n));
      bad_ip u_b (.clk(clk), .rst_n(b_rst_n));
    endmodule";

fn secret_prop() -> SecurityProperty {
    SecurityProperty {
        name: "secret-cleared".into(),
        module: "bad_ip".into(),
        kind: PropertyKind::ClearedAfterReset {
            domain: "top.b_rst_n".into(),
            signal: "top.u_b.secret".into(),
            expected: LogicVec::zeros(8),
            window: 0,
        },
    }
}

#[test]
fn identical_seeds_give_identical_reports() {
    let config = ConcolicConfig {
        cycles: 12,
        max_rounds: 6,
        seed: 1234,
        ..ConcolicConfig::default()
    };
    let a = run(
        TWO_DOMAIN,
        vec![secret_prop()],
        GovernorAnalysis::Explicit,
        config.clone(),
    );
    let b = run(
        TWO_DOMAIN,
        vec![secret_prop()],
        GovernorAnalysis::Explicit,
        config,
    );
    assert_eq!(a.rounds, b.rounds);
    assert_eq!(a.violations, b.violations);
    assert_eq!(a.targets_covered, b.targets_covered);
    assert_eq!(a.first_violation_round, b.first_violation_round);
    assert_eq!(a.witnesses.len(), b.witnesses.len());
    for (wa, wb) in a.witnesses.iter().zip(&b.witnesses) {
        assert_eq!(wa.schedule, wb.schedule);
        assert_eq!(wa.round, wb.round);
    }
}

#[test]
fn different_seeds_still_converge_on_detection() {
    for seed in [1, 99, 0xDEAD] {
        let config = ConcolicConfig {
            cycles: 12,
            max_rounds: 6,
            seed,
            ..ConcolicConfig::default()
        };
        let r = run(
            TWO_DOMAIN,
            vec![secret_prop()],
            GovernorAnalysis::Explicit,
            config,
        );
        assert!(r.violated("secret-cleared"), "seed {seed}: {r:?}");
    }
}

#[test]
fn both_domains_are_discovered_and_pulsed() {
    let config = ConcolicConfig {
        cycles: 10,
        max_rounds: 4,
        ..ConcolicConfig::default()
    };
    let unit = parse(FileId(0), TWO_DOMAIN).expect("parse");
    let design = soccar_rtl::elaborate::elaborate(&unit, "top").expect("elaborate");
    let soc = compose_soc(
        &unit,
        "top",
        &ResetNaming::new(),
        GovernorAnalysis::Explicit,
    )
    .expect("compose");
    let bound = bind_events(&design, &soc).expect("bind");
    let engine = ConcolicEngine::new(&design, &bound, vec![], config).expect("engine");
    let sources: Vec<&str> = engine
        .domains()
        .iter()
        .map(|(s, _, _)| s.as_str())
        .collect();
    assert_eq!(sources, vec!["top.a_rst_n", "top.b_rst_n"]);
    assert!(engine.target_count() >= 4);
}

#[test]
fn internally_generated_domain_yields_unreachable_targets() {
    // The reset is derived from internal logic, not a top input: the
    // engine cannot pulse it directly and must account the targets as
    // unreachable rather than spinning forever.
    let src = "
        module ip(input clk, input rst_n, output reg [3:0] q);
          always @(posedge clk or negedge rst_n)
            if (!rst_n) q <= 4'd0; else q <= q + 4'd1;
        endmodule
        module top(input clk, input [3:0] ctl);
          wire derived_rst_n;
          assign derived_rst_n = ctl != 4'hF;
          ip u (.clk(clk), .rst_n(derived_rst_n));
        endmodule";
    let config = ConcolicConfig {
        cycles: 8,
        max_rounds: 6,
        skip_sweep: true,
        ..ConcolicConfig::default()
    };
    let r = run(src, vec![], GovernorAnalysis::Explicit, config);
    assert!(r.targets_total > 0);
    // Nothing is controllable; every uncovered target must end up
    // unreachable or covered (via the derived reset toggling at init),
    // and the run must terminate quickly.
    assert!(r.rounds <= 7, "{r:?}");
    assert_eq!(
        r.targets_covered + r.targets_unreachable,
        r.targets_total,
        "{r:?}"
    );
}

#[test]
fn witness_pulses_match_the_monitored_domain() {
    let config = ConcolicConfig {
        cycles: 12,
        max_rounds: 6,
        ..ConcolicConfig::default()
    };
    let r = run(
        TWO_DOMAIN,
        vec![secret_prop()],
        GovernorAnalysis::Explicit,
        config,
    );
    let w = r
        .witnesses
        .iter()
        .find(|w| w.property == "secret-cleared")
        .expect("witness");
    // The schedule must actually assert the violating domain.
    let b_track = w
        .schedule
        .resets
        .iter()
        .find(|t| t.source == "top.b_rst_n")
        .expect("domain track");
    assert!(
        !b_track.assert_edges().is_empty(),
        "witness asserts the domain: {}",
        w.schedule.summary()
    );
}

#[test]
fn skip_sweep_limits_rounds() {
    let config = ConcolicConfig {
        cycles: 12,
        max_rounds: 5,
        skip_sweep: true,
        ..ConcolicConfig::default()
    };
    let r = run(TWO_DOMAIN, vec![], GovernorAnalysis::Explicit, config);
    assert!(r.rounds <= 5, "{}", r.rounds);
}

/// The future-work extension: arbitrary asynchronous event lines (here an
/// IRQ) are swept like reset domains. The bug: an interrupt arriving in
/// the same instant as a privilege downgrade leaves the mode register in
/// the undefined encoding — only reachable by pulsing the IRQ line at
/// specific cycles.
#[test]
fn async_event_lines_are_swept_like_domains() {
    let src = "
        module core(input clk, input rst_n, input irq, output reg [1:0] priv_mode,
                    output reg [3:0] step);
          always @(posedge clk or negedge rst_n)
            if (!rst_n) begin
              priv_mode <= 2'b11;
              step <= 4'd0;
            end else begin
              step <= step + 4'd1;
              if (step == 4'd5) begin
                // Scheduled downgrade M → S...
                if (irq) priv_mode <= 2'b10;   // BUG: races with the IRQ path
                else priv_mode <= 2'b01;
              end else if (irq) priv_mode <= 2'b11;
            end
        endmodule
        module top(input clk, input rst_n, input ext_irq);
          core u (.clk(clk), .rst_n(rst_n), .irq(ext_irq));
        endmodule";
    let prop = SecurityProperty {
        name: "priv-legal".into(),
        module: "core".into(),
        kind: PropertyKind::AlwaysOneOf {
            signal: "top.u.priv_mode".into(),
            allowed: vec![
                LogicVec::from_u64(2, 0b00),
                LogicVec::from_u64(2, 0b01),
                LogicVec::from_u64(2, 0b11),
            ],
        },
    };
    // Without the async-event line, irq is a plain input pinned to zero:
    // the race is unreachable.
    let base = ConcolicConfig {
        cycles: 12,
        max_rounds: 4,
        seed: 5,
        ..ConcolicConfig::default()
    };
    let r = run(
        src,
        vec![prop.clone()],
        GovernorAnalysis::Explicit,
        base.clone(),
    );
    assert!(!r.violated("priv-legal"), "{r:?}");
    // With ext_irq registered as an asynchronous event, the sweep pulses
    // it across cycle positions and hits the step==5 race.
    let cfg = ConcolicConfig {
        async_events: vec!["top.ext_irq".into()],
        ..base
    };
    let r = run(src, vec![prop], GovernorAnalysis::Explicit, cfg);
    assert!(r.violated("priv-legal"), "{r:?}");
}

/// A witness schedule replayed through `TestSchedule::replay_concrete`
/// drives the design back into the violating state (here: the secret
/// register still holding data while its domain reset is asserted).
#[test]
fn replay_concrete_reproduces_the_violation_state() {
    let config = ConcolicConfig {
        cycles: 12,
        max_rounds: 6,
        ..ConcolicConfig::default()
    };
    let unit = parse(FileId(0), TWO_DOMAIN).expect("parse");
    let design = soccar_rtl::elaborate::elaborate(&unit, "top").expect("elaborate");
    let soc = compose_soc(
        &unit,
        "top",
        &ResetNaming::new(),
        GovernorAnalysis::Explicit,
    )
    .expect("compose");
    let bound = soccar_cfg::bind_events(&design, &soc).expect("bind");
    let report = ConcolicEngine::new(&design, &bound, vec![secret_prop()], config)
        .expect("engine")
        .run()
        .expect("run");
    let w = report
        .witnesses
        .iter()
        .find(|w| w.property == "secret-cleared")
        .expect("witness");
    let clk = design.find_net("top.clk").expect("clk");
    let sim = w.schedule.replay_concrete(&design, &[clk]).expect("replay");
    // During the final state of the replay the trace must contain a cycle
    // where b_rst_n was asserted; and the secret was never cleared by it.
    let secret = design.find_net("top.u_b.secret").expect("secret");
    let b_rst = design.find_net("top.b_rst_n").expect("rst");
    let rst_asserted = sim
        .trace()
        .iter()
        .any(|e| e.net == b_rst && e.value.is_all_zero());
    assert!(rst_asserted, "replay asserted the domain");
    let secret_cleared = sim
        .trace()
        .iter()
        .any(|e| e.net == secret && e.value.is_all_zero());
    assert!(!secret_cleared, "the buggy secret register never cleared");
}
