//! The recall oracle for the generated corpus (ISSUE 7, satellite 1).
//!
//! For every spec in the pinned sweep (5 seeds × 3 scales), every
//! ground-truth manifest bug must be reported — by the concolic stage
//! through its expected detector checks, or by the `implicit-governor`
//! lint rule for the Section V-C construct. A miss fails with the
//! rendered manifest entry and the seed, so the exact design can be
//! regenerated with `soccar gen gen:<seed>:<scale>`.

use soccar::evaluation::evaluate_generated;
use soccar::SoccarConfig;
use soccar_cfg::GovernorAnalysis;
use soccar_sim::InitPolicy;
use soccar_soc::generate::pinned_sweep;

fn sweep_config() -> SoccarConfig {
    let mut config = SoccarConfig {
        analysis: GovernorAnalysis::Explicit,
        ..SoccarConfig::default()
    };
    config.concolic.cycles = 10;
    config.concolic.max_rounds = 3;
    config.concolic.sweep_stride = 3;
    config.concolic.init = InitPolicy::Ones;
    config
}

#[test]
fn every_manifest_bug_in_the_pinned_sweep_is_reported() {
    let mut total = 0;
    let mut missed: Vec<String> = Vec::new();
    for spec in pinned_sweep() {
        let eval = evaluate_generated(&spec, sweep_config())
            .unwrap_or_else(|e| panic!("{}: pipeline failed: {e}", spec.name()));
        assert!(
            eval.recall.total >= 1,
            "{}: generated designs always seed at least one bug",
            spec.name()
        );
        assert_eq!(
            eval.recall.false_alarms,
            0,
            "{}: violations outside the manifest's detector set",
            spec.name()
        );
        total += eval.recall.total;
        missed.extend(eval.recall.missed);
    }
    assert!(
        missed.is_empty(),
        "missed {}/{total} manifest bugs:\n  {}",
        missed.len(),
        missed.join("\n  ")
    );
    // The sweep is big enough to mean something: 15 designs, and the
    // 50% injection rate lands well above one bug per seed on average.
    assert!(total >= 15, "suspiciously small ground truth: {total}");
}
