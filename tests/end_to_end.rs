//! Cross-crate end-to-end tests: witness replay, solver-driven coverage,
//! and pipeline behaviour on hand-written designs.

use soccar::{Soccar, SoccarConfig};
use soccar_concolic::{ConcolicConfig, PropertyKind, PropertyMonitor, SecurityProperty};
use soccar_rtl::LogicVec;
use soccar_sim::{InitPolicy, Simulator};

const GUARDED_LEAK: &str = "
    module vault(input clk, input rst_n, input [7:0] combo,
                 output reg [7:0] secret, output reg open);
      always @(posedge clk or negedge rst_n)
        if (!rst_n) begin
          open <= 1'b0;
          if (combo == 8'h5A) secret <= secret;  // BUG: kept when combo matches
          else secret <= 8'd0;
        end else begin
          secret <= 8'hC3;
          open <= combo == 8'h5A;
        end
    endmodule
    module top(input clk, input vault_rst_n, input [7:0] combo,
               output [7:0] secret, output open);
      vault u (.clk(clk), .rst_n(vault_rst_n), .combo(combo),
               .secret(secret), .open(open));
    endmodule";

fn leak_property() -> SecurityProperty {
    SecurityProperty {
        name: "vault-secret-cleared".into(),
        module: "vault".into(),
        kind: PropertyKind::ClearedAfterReset {
            domain: "top.vault_rst_n".into(),
            signal: "top.u.secret".into(),
            expected: LogicVec::zeros(8),
            window: 0,
        },
    }
}

/// The bug only manifests when the reset arrives while `combo == 0x5A` —
/// a data-guarded condition the solver must construct.
#[test]
fn solver_constructs_the_magic_combo() {
    let config = SoccarConfig {
        concolic: ConcolicConfig {
            cycles: 10,
            max_rounds: 24,
            seed: 3,
            symbolic_inputs: vec!["top.combo".into()],
            skip_sweep: true, // force the solver to do the work
            ..ConcolicConfig::default()
        },
        ..SoccarConfig::default()
    };
    let report = Soccar::new(config)
        .analyze("vault.v", GUARDED_LEAK, "top", vec![leak_property()])
        .expect("analyze");
    assert!(
        report.concolic.violated("vault-secret-cleared"),
        "report: {report:?}"
    );
    assert!(
        report.concolic.solver_calls > 0,
        "the solver must have been engaged"
    );
}

/// A witness schedule must replay: driving the recorded reset pulses and
/// input values through a fresh concrete simulation re-triggers the same
/// violation.
#[test]
fn witness_schedules_replay_concretely() {
    let config = SoccarConfig {
        concolic: ConcolicConfig {
            cycles: 10,
            max_rounds: 8,
            symbolic_inputs: vec!["top.combo".into()],
            ..ConcolicConfig::default()
        },
        ..SoccarConfig::default()
    };
    let report = Soccar::new(config)
        .analyze("vault.v", GUARDED_LEAK, "top", vec![leak_property()])
        .expect("analyze");
    let witness = report
        .concolic
        .witnesses
        .iter()
        .find(|w| w.property == "vault-secret-cleared")
        .expect("witness recorded");

    // Replay on a fresh concrete simulator.
    let (design, _) = soccar_rtl::compile("vault.v", GUARDED_LEAK, "top").expect("compile");
    let mut sim = Simulator::concrete(&design, InitPolicy::Ones);
    let mut monitor = PropertyMonitor::resolve(
        &design,
        leak_property(),
        &[("top.vault_rst_n".into(), true)],
    )
    .expect("resolve");
    let clk = design.find_net("top.clk").expect("clk");
    for track in &witness.schedule.resets {
        sim.write_input(track.net, track.value_at(u64::MAX)).ok();
        let deassert = LogicVec::from_u64(1, u64::from(track.active_low));
        sim.write_input(track.net, deassert).expect("deassert");
    }
    sim.write_input(clk, LogicVec::from_u64(1, 0)).expect("clk");
    sim.settle().expect("settle");
    let mut violated = false;
    for cycle in 0..witness.schedule.cycles {
        for track in &witness.schedule.inputs {
            sim.write_input(track.net, track.values[cycle as usize].clone())
                .expect("input");
        }
        for track in &witness.schedule.resets {
            sim.write_input(track.net, track.value_at(cycle))
                .expect("reset");
        }
        sim.settle().expect("settle");
        sim.tick(clk).expect("tick");
        if monitor
            .check_cycle(&sim, cycle)
            .expect("resolved monitor")
            .is_some()
        {
            violated = true;
            break;
        }
    }
    assert!(
        violated,
        "witness must reproduce: {}",
        witness.schedule.summary()
    );
}

/// Clean version of the same design: no violations, full coverage of the
/// reachable AR_CFG targets.
#[test]
fn fixed_design_passes_with_coverage() {
    let fixed = GUARDED_LEAK.replace(
        "if (combo == 8'h5A) secret <= secret;  // BUG: kept when combo matches\n          else secret <= 8'd0;",
        "secret <= 8'd0;",
    );
    assert_ne!(fixed, GUARDED_LEAK);
    let config = SoccarConfig {
        concolic: ConcolicConfig {
            cycles: 10,
            max_rounds: 16,
            symbolic_inputs: vec!["top.combo".into()],
            ..ConcolicConfig::default()
        },
        ..SoccarConfig::default()
    };
    let report = Soccar::new(config)
        .analyze("vault.v", &fixed, "top", vec![leak_property()])
        .expect("analyze");
    assert!(report.violations().is_empty(), "{:?}", report.violations());
    assert!(report.concolic.coverage() > 0.7, "{report:?}");
}

/// The pipeline handles multiple interacting reset domains: a violation in
/// one domain is attributed to the right module, and pulsing one domain
/// does not disturb state owned by another.
#[test]
fn multi_domain_isolation_and_attribution() {
    let rtl = "
        module cnt(input clk, input rst_n, output reg [7:0] q);
          always @(posedge clk or negedge rst_n)
            if (!rst_n) q <= 8'd0; else q <= q + 8'd1;
        endmodule
        module bad(input clk, input rst_n, output reg [7:0] q);
          always @(posedge clk or negedge rst_n)
            if (!rst_n) q <= q;      // BUG
            else q <= q + 8'd1;
        endmodule
        module top(input clk, input a_rst_n, input b_rst_n);
          cnt u_good (.clk(clk), .rst_n(a_rst_n), .q());
          bad u_bad (.clk(clk), .rst_n(b_rst_n), .q());
        endmodule";
    let props = vec![
        SecurityProperty {
            name: "good-cleared".into(),
            module: "cnt".into(),
            kind: PropertyKind::ClearedAfterReset {
                domain: "top.a_rst_n".into(),
                signal: "top.u_good.q".into(),
                expected: LogicVec::zeros(8),
                window: 0,
            },
        },
        SecurityProperty {
            name: "bad-cleared".into(),
            module: "bad".into(),
            kind: PropertyKind::ClearedAfterReset {
                domain: "top.b_rst_n".into(),
                signal: "top.u_bad.q".into(),
                expected: LogicVec::zeros(8),
                window: 0,
            },
        },
    ];
    let report = Soccar::new(SoccarConfig::default())
        .analyze("multi.v", rtl, "top", props)
        .expect("analyze");
    assert_eq!(report.extraction.reset_domains, 2);
    assert_eq!(report.violations().len(), 1);
    assert_eq!(report.violations()[0].property, "bad-cleared");
    assert_eq!(report.violations()[0].module, "bad");
}
