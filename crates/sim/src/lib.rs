//! # soccar-sim
//!
//! Event-driven RTL simulator for the SoCCAR reproduction, with first-class
//! support for **asynchronous reset domains**: reset-sensitive processes
//! fire the instant a reset edge occurs, independent of any clock, which is
//! precisely the behaviour SoCCAR (DAC 2021) validates.
//!
//! The interpreter is generic over a value [`algebra::Algebra`], so the
//! identical execution path drives:
//!
//! * pure concrete simulation ([`Simulator::concrete`]), and
//! * the concolic co-simulation of `soccar-concolic`, whose algebra pairs
//!   every value with an optional symbolic term and records path
//!   constraints through the [`algebra::Algebra::on_branch`] hook.
//!
//! Cycle-level stimulus (clocks, input schedules, asynchronous reset
//! pulses at arbitrary cycles) lives in [`stimulus`]; waveform output in
//! [`vcd`].
//!
//! # Examples
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use soccar_sim::{InitPolicy, Simulator};
//! use soccar_rtl::LogicVec;
//!
//! let (design, _) = soccar_rtl::compile("m.v", "
//!   module m(input clk, input rst_n, output reg [7:0] secret);
//!     always @(posedge clk or negedge rst_n)
//!       if (!rst_n) secret <= 8'd0;
//!       else        secret <= 8'hA5;
//!   endmodule", "m")?;
//!
//! // SoCCAR's all-ones register policy: uncleared state is visible.
//! let mut sim = Simulator::concrete(&design, InitPolicy::Ones);
//! let rst = design.find_net("m.rst_n").expect("rst");
//! let secret = design.find_net("m.secret").expect("secret");
//! sim.write_input(rst, LogicVec::from_u64(1, 0))?;
//! sim.settle()?;
//! assert_eq!(sim.net_logic(secret).to_u64(), Some(0));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod algebra;
pub mod error;
pub mod sim;
pub mod stimulus;
pub mod vcd;

pub use algebra::{Algebra, ConcreteAlgebra};
pub use error::{SimError, SimResult};
pub use sim::{InitPolicy, Simulator, TraceEvent};
