//! A minimal JSON backend for the vendored serde subset.
//!
//! The workspace vendors serde's *traits* but has no `serde_json`, so this
//! module provides the one data format the tooling needs: JSON text
//! emission for `--json` CLI output and machine-readable reports. Any type
//! implementing the vendored [`serde::Serialize`] serializes through
//! [`to_json`] (compact) or [`to_json_pretty`] (2-space indent).

use std::fmt::Write as _;

use serde::ser::{self, SerializeMap, SerializeSeq, SerializeStruct};
use serde::{Serialize, Serializer};

/// Error type for JSON serialization.
///
/// The writer itself is infallible (it appends to a `String`); errors can
/// only originate from a `Serialize` impl calling [`ser::Error::custom`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError(String);

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json serialization error: {}", self.0)
    }
}

impl std::error::Error for JsonError {}

impl ser::Error for JsonError {
    fn custom<T: std::fmt::Display>(msg: T) -> JsonError {
        JsonError(msg.to_string())
    }
}

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Only if a `Serialize` impl reports a custom error.
pub fn to_json<T: ?Sized + Serialize>(value: &T) -> Result<String, JsonError> {
    render(value, false)
}

/// Serializes `value` as human-readable JSON with 2-space indentation.
///
/// # Errors
///
/// Only if a `Serialize` impl reports a custom error.
pub fn to_json_pretty<T: ?Sized + Serialize>(value: &T) -> Result<String, JsonError> {
    render(value, true)
}

fn render<T: ?Sized + Serialize>(value: &T, pretty: bool) -> Result<String, JsonError> {
    let mut out = String::new();
    value.serialize(JsonSerializer {
        out: &mut out,
        pretty,
        depth: 0,
    })?;
    Ok(out)
}

/// Appends `s` to `out` as a JSON string literal with escaping.
fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn newline_indent(out: &mut String, depth: usize) {
    out.push('\n');
    for _ in 0..depth {
        out.push_str("  ");
    }
}

/// The serde `Serializer` writing JSON text into a borrowed `String`.
struct JsonSerializer<'a> {
    out: &'a mut String,
    pretty: bool,
    depth: usize,
}

impl<'a> JsonSerializer<'a> {
    fn open(self, opener: char, closer: char) -> Result<JsonCompound<'a>, JsonError> {
        self.out.push(opener);
        Ok(JsonCompound {
            out: self.out,
            pretty: self.pretty,
            depth: self.depth + 1,
            first: true,
            closer,
        })
    }
}

impl<'a> Serializer for JsonSerializer<'a> {
    type Ok = ();
    type Error = JsonError;
    type SerializeSeq = JsonCompound<'a>;
    type SerializeStruct = JsonCompound<'a>;
    type SerializeMap = JsonCompound<'a>;

    fn serialize_bool(self, v: bool) -> Result<(), JsonError> {
        self.out.push_str(if v { "true" } else { "false" });
        Ok(())
    }

    fn serialize_i64(self, v: i64) -> Result<(), JsonError> {
        let _ = write!(self.out, "{v}");
        Ok(())
    }

    fn serialize_u64(self, v: u64) -> Result<(), JsonError> {
        let _ = write!(self.out, "{v}");
        Ok(())
    }

    fn serialize_f64(self, v: f64) -> Result<(), JsonError> {
        if v.is_finite() {
            let _ = write!(self.out, "{v}");
        } else {
            self.out.push_str("null"); // JSON has no NaN/Infinity
        }
        Ok(())
    }

    fn serialize_str(self, v: &str) -> Result<(), JsonError> {
        write_escaped(self.out, v);
        Ok(())
    }

    fn serialize_unit(self) -> Result<(), JsonError> {
        self.out.push_str("null");
        Ok(())
    }

    fn serialize_seq(self, _len: Option<usize>) -> Result<JsonCompound<'a>, JsonError> {
        self.open('[', ']')
    }

    fn serialize_struct(
        self,
        _name: &'static str,
        _len: usize,
    ) -> Result<JsonCompound<'a>, JsonError> {
        self.open('{', '}')
    }

    fn serialize_map(self, _len: Option<usize>) -> Result<JsonCompound<'a>, JsonError> {
        self.open('{', '}')
    }
}

/// Shared builder for sequences, structs and maps.
///
/// `depth` is the indentation level of the *contents* (the opener's depth
/// plus one); `first` tracks whether a separator is needed.
#[derive(Debug)]
pub struct JsonCompound<'a> {
    out: &'a mut String,
    pretty: bool,
    depth: usize,
    first: bool,
    closer: char,
}

impl JsonCompound<'_> {
    fn element_prefix(&mut self) {
        if self.first {
            self.first = false;
        } else {
            self.out.push(',');
        }
        if self.pretty {
            newline_indent(self.out, self.depth);
        }
    }

    fn value_serializer(&mut self) -> JsonSerializer<'_> {
        JsonSerializer {
            out: self.out,
            pretty: self.pretty,
            depth: self.depth,
        }
    }

    fn key_prefix(&mut self, key: &str) {
        self.element_prefix();
        write_escaped(self.out, key);
        self.out.push(':');
        if self.pretty {
            self.out.push(' ');
        }
    }

    fn close(self) -> Result<(), JsonError> {
        if self.pretty && !self.first {
            newline_indent(self.out, self.depth - 1);
        }
        self.out.push(self.closer);
        Ok(())
    }
}

impl SerializeSeq for JsonCompound<'_> {
    type Ok = ();
    type Error = JsonError;

    fn serialize_element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), JsonError> {
        self.element_prefix();
        value.serialize(self.value_serializer())
    }

    fn end(self) -> Result<(), JsonError> {
        self.close()
    }
}

impl SerializeStruct for JsonCompound<'_> {
    type Ok = ();
    type Error = JsonError;

    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), JsonError> {
        self.key_prefix(key);
        value.serialize(self.value_serializer())
    }

    fn end(self) -> Result<(), JsonError> {
        self.close()
    }
}

impl SerializeMap for JsonCompound<'_> {
    type Ok = ();
    type Error = JsonError;

    fn serialize_entry<K: ?Sized + Serialize, V: ?Sized + Serialize>(
        &mut self,
        key: &K,
        value: &V,
    ) -> Result<(), JsonError> {
        self.element_prefix();
        // JSON object keys must be strings; serialize the key and, when it
        // rendered as a bare value (number, bool), re-wrap it in quotes.
        let before = self.out.len();
        key.serialize(self.value_serializer())?;
        if !self.out[before..].starts_with('"') {
            let raw: String = self.out.drain(before..).collect();
            write_escaped(self.out, &raw);
        }
        self.out.push(':');
        if self.pretty {
            self.out.push(' ');
        }
        value.serialize(self.value_serializer())
    }

    fn end(self) -> Result<(), JsonError> {
        self.close()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Serialize)]
    struct Inner {
        name: String,
        hits: u32,
    }

    #[derive(Serialize)]
    struct Outer {
        ok: bool,
        items: Vec<Inner>,
        note: Option<String>,
    }

    fn sample() -> Outer {
        Outer {
            ok: true,
            items: vec![
                Inner {
                    name: "a\"b".into(),
                    hits: 3,
                },
                Inner {
                    name: "line\nbreak".into(),
                    hits: 0,
                },
            ],
            note: None,
        }
    }

    #[test]
    fn compact_output_round_trips_structure() {
        let json = to_json(&sample()).expect("serializes");
        assert_eq!(
            json,
            r#"{"ok":true,"items":[{"name":"a\"b","hits":3},{"name":"line\nbreak","hits":0}],"note":null}"#
        );
    }

    #[test]
    fn pretty_output_is_indented() {
        let json = to_json_pretty(&sample()).expect("serializes");
        assert!(json.starts_with("{\n  \"ok\": true,"));
        assert!(json.ends_with("\n}"));
        assert!(json.contains("\n    {\n      \"name\": \"a\\\"b\","));
    }

    #[test]
    fn scalars_and_maps() {
        let mut m = std::collections::BTreeMap::new();
        m.insert("k".to_string(), vec![1u32, 2]);
        assert_eq!(to_json(&m).expect("serializes"), r#"{"k":[1,2]}"#);
        assert_eq!(to_json(&-5i32).expect("serializes"), "-5");
        assert_eq!(to_json("x").expect("serializes"), "\"x\"");
        assert_eq!(to_json(&f64::NAN).expect("serializes"), "null");
        assert_eq!(to_json(&1.5f64).expect("serializes"), "1.5");
    }

    #[test]
    fn non_string_map_keys_are_quoted() {
        let mut m = std::collections::BTreeMap::new();
        m.insert(7u32, "seven");
        assert_eq!(to_json(&m).expect("serializes"), r#"{"7":"seven"}"#);
    }

    #[test]
    fn empty_containers_stay_tight_in_pretty_mode() {
        let empty: Vec<u32> = vec![];
        assert_eq!(to_json_pretty(&empty).expect("serializes"), "[]");
    }

    #[test]
    fn control_chars_are_escaped() {
        assert_eq!(to_json("\u{1}").expect("serializes"), "\"\\u0001\"");
    }
}
