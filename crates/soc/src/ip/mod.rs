//! IP core generators: every block emits self-contained Verilog consumed
//! by the `soccar-rtl` frontend.

pub mod axi;
pub mod crypto;
pub mod dma;
pub mod dsp;
pub mod periph;
pub mod riscv;
pub mod sram;
pub mod wishbone;
