//! Binding the composed AR_CFG onto an elaborated [`Design`].
//!
//! The extractor works at module/AST granularity (as in the paper's
//! Algorithm 1); the concolic engine executes the elaborated design. This
//! module connects the two: every reset-governed event is resolved to the
//! runtime [`ProcessId`] it lives in, the [`BranchSiteId`] of its governing
//! conditional (for explicit governors), and the [`NetId`]s of its local
//! reset and domain source, so coverage and path constraints can be
//! tracked during co-simulation.

use soccar_rtl::design::{BranchSiteId, Design, NetId, ProcessId, RStmt, SiteKind};

use crate::compose::SocArCfg;
use crate::extract::{EventArm, HardwareEvent};

/// One AR_CFG event bound to runtime entities.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundEvent {
    /// Hierarchical instance path.
    pub instance: String,
    /// The extracted event (cloned for self-containedness).
    pub event: HardwareEvent,
    /// The process implementing the event's `always` block.
    pub process: ProcessId,
    /// The branch site of the governing conditional; `None` for
    /// whole-block (implicit-governor) events.
    pub site: Option<BranchSiteId>,
    /// Whether the reset arm is the *taken* direction of the site
    /// (`if (!rst_n) <reset arm> else ...` → `true`).
    pub reset_arm_taken: bool,
    /// The instance-local reset net.
    pub reset_net: NetId,
    /// The domain source net, when the domain source is a design net
    /// (always the case for top-level domains).
    pub domain_net: Option<NetId>,
    /// Domain source name (see [`crate::compose::ResetDomain::source`]).
    pub domain_source: String,
    /// `true` if the domain source is a top-level input.
    pub domain_top_level: bool,
    /// Assertion polarity of the domain source.
    pub domain_active_low: bool,
}

/// Errors from binding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BindError {
    /// No process matched (instance path, module, always index).
    ProcessNotFound {
        /// The offending instance path.
        instance: String,
        /// Always-block index that failed to resolve.
        always_index: u32,
    },
    /// The reset net does not exist in the design.
    ResetNetNotFound {
        /// The offending hierarchical net name.
        name: String,
    },
}

impl std::fmt::Display for BindError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BindError::ProcessNotFound {
                instance,
                always_index,
            } => write!(
                f,
                "no process for always-block {always_index} of `{instance}`"
            ),
            BindError::ResetNetNotFound { name } => {
                write!(f, "reset net `{name}` not found in design")
            }
        }
    }
}

impl std::error::Error for BindError {}

/// Binds every reset-governed event of `soc` onto `design`.
///
/// # Errors
///
/// Returns a [`BindError`] if the AR_CFG and the elaborated design
/// disagree (which would indicate the extractor and elaborator saw
/// different sources).
pub fn bind_events(design: &Design, soc: &SocArCfg) -> Result<Vec<BoundEvent>, BindError> {
    bind_events_traced(design, soc, &soccar_obs::Recorder::disabled())
}

/// Like [`bind_events`] under an observability recorder: the resolution
/// walk gets a `cfg.bind` span and the number of successfully bound
/// events lands in the `cfg.bound_events` counter.
///
/// # Errors
///
/// As [`bind_events`].
pub fn bind_events_traced(
    design: &Design,
    soc: &SocArCfg,
    recorder: &soccar_obs::Recorder,
) -> Result<Vec<BoundEvent>, BindError> {
    let mut span = soccar_obs::span!(recorder, "cfg.bind", instances = soc.instances.len());
    let mut out = Vec::new();
    for inst in &soc.instances {
        for ev in &inst.cfg.events {
            let Some(governor) = &ev.governor else {
                continue;
            };
            // Locate the process: same instance path + always index.
            let process = design
                .processes()
                .iter()
                .enumerate()
                .find(|(_, p)| {
                    p.origin.always_index == Some(ev.always_index)
                        && design.instance(p.instance).name == inst.path
                })
                .map(|(i, _)| ProcessId(i as u32))
                .ok_or_else(|| BindError::ProcessNotFound {
                    instance: inst.path.clone(),
                    always_index: ev.always_index,
                })?;
            // Governing site: for explicit governors, the leading `if` of
            // the process body (the first If site).
            let site = if ev.arm == EventArm::ResetArm {
                first_if_site(design, process)
            } else {
                None
            };
            let reset_name = format!("{}.{}", inst.path, governor.reset);
            let reset_net = design
                .find_net(&reset_name)
                .ok_or(BindError::ResetNetNotFound { name: reset_name })?;
            let domain = soc.domain_of(&inst.path, &governor.reset);
            let (domain_source, domain_top_level, domain_active_low, domain_net) = match domain {
                Some(d) => (
                    d.source.clone(),
                    d.top_level,
                    d.active_low,
                    design.find_net(&d.source),
                ),
                None => (
                    format!("{}.{}", inst.path, governor.reset),
                    false,
                    governor.active_low,
                    Some(reset_net),
                ),
            };
            out.push(BoundEvent {
                instance: inst.path.clone(),
                event: ev.clone(),
                process,
                site,
                reset_arm_taken: true,
                reset_net,
                domain_net,
                domain_source,
                domain_top_level,
                domain_active_low,
            });
        }
    }
    recorder.counter_add("cfg.bound_events", out.len() as u64);
    span.record("bound_events", out.len());
    drop(span);
    Ok(out)
}

/// The site of the first `if` in the process body (descending through
/// leading blocks), which for the classic reset template is the governing
/// conditional.
fn first_if_site(design: &Design, process: ProcessId) -> Option<BranchSiteId> {
    fn walk(stmt: &RStmt) -> Option<BranchSiteId> {
        match stmt {
            RStmt::Block(stmts) => stmts.first().and_then(walk),
            RStmt::If { site, .. } => Some(*site),
            _ => None,
        }
    }
    let site = walk(&design.process(process).body)?;
    debug_assert_eq!(design.site(site).kind, SiteKind::If);
    Some(site)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compose::compose_soc;
    use crate::extract::GovernorAnalysis;
    use crate::reset_id::ResetNaming;
    use soccar_rtl::elaborate::elaborate;
    use soccar_rtl::parser::parse;
    use soccar_rtl::span::FileId;

    const SRC: &str = "
        module ip(input clk, input rst_n, input [3:0] d, output reg [3:0] q);
          always @(posedge clk or negedge rst_n)
            if (!rst_n) q <= 4'd0; else q <= d;
        endmodule
        module top(input clk, input sys_rst_n, input [3:0] d, output [3:0] q);
          ip u_a (.clk(clk), .rst_n(sys_rst_n), .d(d), .q(q));
          ip u_b (.clk(clk), .rst_n(sys_rst_n), .d(d), .q());
        endmodule";

    #[test]
    fn binds_all_events_with_sites_and_nets() {
        let unit = parse(FileId(0), SRC).expect("parse");
        let design = elaborate(&unit, "top").expect("elaborate");
        let soc = compose_soc(
            &unit,
            "top",
            &ResetNaming::new(),
            GovernorAnalysis::Explicit,
        )
        .expect("compose");
        let bound = bind_events(&design, &soc).expect("bind");
        assert_eq!(bound.len(), 2);
        for b in &bound {
            assert!(b.site.is_some(), "explicit governor has a site");
            assert!(b.domain_net.is_some());
            assert_eq!(b.domain_source, "top.sys_rst_n");
            assert!(b.domain_top_level);
            assert!(b.domain_active_low);
            // The reset net is the instance-local rst_n.
            assert!(design.net(b.reset_net).name.ends_with(".rst_n"));
        }
        // The two events live in different processes.
        assert_ne!(bound[0].process, bound[1].process);
    }

    #[test]
    fn implicit_event_binds_without_site() {
        let src = "
            module sha(input clk, input sec_rst_n, input [7:0] pt, output reg [7:0] ct);
              always @(negedge sec_rst_n)
                if (clk) ct <= pt;
            endmodule
            module top(input clk, input sec_rst_n, input [7:0] pt, output [7:0] ct);
              sha u (.clk(clk), .sec_rst_n(sec_rst_n), .pt(pt), .ct(ct));
            endmodule";
        let unit = parse(FileId(0), src).expect("parse");
        let design = elaborate(&unit, "top").expect("elaborate");
        // Refined analysis sees the implicit governor.
        let soc = compose_soc(&unit, "top", &ResetNaming::new(), GovernorAnalysis::Refined)
            .expect("compose");
        let bound = bind_events(&design, &soc).expect("bind");
        assert_eq!(bound.len(), 1);
        assert_eq!(bound[0].site, None);
        assert_eq!(bound[0].event.arm, EventArm::WholeBlock);
        // Explicit analysis binds nothing (the documented miss).
        let soc = compose_soc(
            &unit,
            "top",
            &ResetNaming::new(),
            GovernorAnalysis::Explicit,
        )
        .expect("compose");
        assert!(bind_events(&design, &soc).expect("bind").is_empty());
    }
}
