//! DSP cores: FIR, DFT, IDFT and IIR.
//!
//! Streaming datapaths with real coefficient/delay-line state. They carry
//! no security assets in the paper's bug taxonomy (Table II covers Memory,
//! Processor and Crypto classes), but they contribute realistic area,
//! reset-domain membership and bus traffic to both SoCs.

/// FIR filter with `TAPS` delay taps and constant coefficients.
#[must_use]
pub fn fir() -> String {
    "module fir_filter #(parameter TAPS = 8)(
  input clk,
  input rst_n,
  input in_valid,
  input [15:0] in_sample,
  output reg [31:0] out_sample,
  output reg out_valid
);
  reg [15:0] delay [0:TAPS-1];
  reg [31:0] acc;
  integer i;

  always @(posedge clk or negedge rst_n)
    if (!rst_n) begin
      out_sample <= 32'd0;
      out_valid <= 1'b0;
      acc <= 32'd0;
      for (i = 0; i < TAPS; i = i + 1) delay[i] <= 16'd0;
    end else begin
      out_valid <= 1'b0;
      if (in_valid) begin
        for (i = TAPS - 1; i > 0; i = i - 1) delay[i] <= delay[i - 1];
        delay[0] <= in_sample;
        acc = 32'd0;
        for (i = 0; i < TAPS; i = i + 1)
          acc = acc + ({16'd0, delay[i]} * (i + 1));
        out_sample <= acc;
        out_valid <= 1'b1;
      end
    end
endmodule
"
    .to_owned()
}

/// DFT: an `N`-bin accumulating transform with rotating phase weights.
#[must_use]
pub fn dft() -> String {
    transform("dft_core", "+")
}

/// IDFT: the inverse transform (conjugate phase direction).
#[must_use]
pub fn idft() -> String {
    transform("idft_core", "-")
}

fn transform(name: &str, sign: &str) -> String {
    format!(
        "module {name} #(parameter BINS = 8)(
  input clk,
  input rst_n,
  input in_valid,
  input [15:0] in_sample,
  output reg [31:0] out_sample,
  output reg [2:0] bin_index,
  output reg out_valid
);
  reg [31:0] bins [0:BINS-1];
  reg [2:0] phase;
  integer i;

  always @(posedge clk or negedge rst_n)
    if (!rst_n) begin
      out_sample <= 32'd0;
      bin_index <= 3'd0;
      out_valid <= 1'b0;
      phase <= 3'd0;
      for (i = 0; i < BINS; i = i + 1) bins[i] <= 32'd0;
    end else begin
      out_valid <= 1'b0;
      if (in_valid) begin
        for (i = 0; i < BINS; i = i + 1)
          bins[i] <= bins[i] {sign} ({{16'd0, in_sample}} <<
                     ((phase + i[2:0]) & 3'd3));
        phase <= phase + 3'd1;
        out_sample <= bins[phase];
        bin_index <= phase;
        out_valid <= 1'b1;
      end
    end
endmodule
"
    )
}

/// IIR biquad with feedback state (AutoSoC DSP subsystem extension).
#[must_use]
pub fn iir() -> String {
    "module iir_filter(
  input clk,
  input rst_n,
  input in_valid,
  input [15:0] in_sample,
  output reg [31:0] out_sample,
  output reg out_valid
);
  reg [31:0] y1;
  reg [31:0] y2;
  reg [15:0] x1;
  reg [15:0] x2;
  wire [31:0] next_y;
  assign next_y = ({16'd0, in_sample} + ({16'd0, x1} << 1) + {16'd0, x2})
                + (y1 >> 1) - (y2 >> 2);

  always @(posedge clk or negedge rst_n)
    if (!rst_n) begin
      y1 <= 32'd0;
      y2 <= 32'd0;
      x1 <= 16'd0;
      x2 <= 16'd0;
      out_sample <= 32'd0;
      out_valid <= 1'b0;
    end else begin
      out_valid <= 1'b0;
      if (in_valid) begin
        y2 <= y1;
        y1 <= next_y;
        x2 <= x1;
        x1 <= in_sample;
        out_sample <= next_y;
        out_valid <= 1'b1;
      end
    end
endmodule
"
    .to_owned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use soccar_rtl::value::LogicVec;
    use soccar_sim::{InitPolicy, Simulator};

    fn feed(src: &str, top: &str, samples: &[u64]) -> Vec<u64> {
        let d = soccar_rtl::compile("dsp.v", src, top)
            .unwrap_or_else(|e| panic!("{top}: {e}"))
            .0;
        let mut sim = Simulator::concrete(&d, InitPolicy::Ones);
        let n = |s: &str| d.find_net(&format!("{top}.{s}")).expect("net");
        let clk = n("clk");
        sim.write_input(clk, LogicVec::from_u64(1, 0)).expect("clk");
        sim.write_input(n("in_valid"), LogicVec::from_u64(1, 0))
            .expect("v");
        sim.write_input(n("in_sample"), LogicVec::zeros(16))
            .expect("s");
        sim.write_input(n("rst_n"), LogicVec::from_u64(1, 0))
            .expect("rst");
        sim.settle().expect("settle");
        sim.write_input(n("rst_n"), LogicVec::from_u64(1, 1))
            .expect("rst");
        sim.write_input(n("in_valid"), LogicVec::from_u64(1, 1))
            .expect("v");
        let mut out = Vec::new();
        for s in samples {
            sim.write_input(n("in_sample"), LogicVec::from_u64(16, *s))
                .expect("s");
            sim.settle().expect("settle");
            sim.tick(clk).expect("tick");
            out.push(sim.net_logic(n("out_sample")).to_u64().expect("out"));
        }
        out
    }

    #[test]
    fn fir_convolves() {
        // Impulse response: the sample reaches tap i after i+1 ticks and
        // is weighted by coefficient i+1 (taps are sampled pre-shift).
        let out = feed(&fir(), "fir_filter", &[100, 0, 0, 0]);
        assert_eq!(out[0], 0); // taps still empty when sampled
        assert_eq!(out[1], 100); // 100 * coeff 1
        assert_eq!(out[2], 200); // 100 * coeff 2
        assert_eq!(out[3], 300);
    }

    #[test]
    fn dft_and_idft_accumulate_differently() {
        let a = feed(&dft(), "dft_core", &[10, 10, 10]);
        let b = feed(&idft(), "idft_core", &[10, 10, 10]);
        assert_ne!(a, b, "forward and inverse phases must differ");
    }

    #[test]
    fn iir_has_feedback_memory() {
        let out = feed(&iir(), "iir_filter", &[100, 0, 0, 0]);
        // The impulse keeps echoing through y1/y2 feedback.
        assert_eq!(out[0], 100);
        assert!(out[1] > 0, "feedback echo: {out:?}");
        assert_ne!(out[1], out[2]);
    }

    #[test]
    fn reset_clears_dsp_state() {
        let d = soccar_rtl::compile("dsp.v", &fir(), "fir_filter")
            .expect("compile")
            .0;
        let mut sim = Simulator::concrete(&d, InitPolicy::Ones);
        let rst = d.find_net("fir_filter.rst_n").expect("rst");
        sim.write_input(rst, LogicVec::from_u64(1, 0)).expect("rst");
        sim.settle().expect("settle");
        let mem = d.find_memory("fir_filter.delay").expect("delay");
        for a in 0..8 {
            assert!(sim.mem_logic(mem, a).is_all_zero(), "tap {a} cleared");
        }
    }
}
