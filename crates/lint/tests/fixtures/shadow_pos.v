// Positive: rst_count matches the reset naming convention but is plain
// data — never edge-qualified, never leading-tested, never forwarded to a
// child reset port. It shadows name-based reset identification.
module ctr(input clk, input [3:0] d, output reg [3:0] rst_count);
  always @(posedge clk)
    rst_count <= rst_count + 4'd1;
endmodule
